// serve_chaos — chaos soak harness for `prefcover serve --port`.
//
// Launches the server as a child process with PREFCOVER_FAILPOINTS armed
// (socket faults: injected read/write/accept errors, delays, connection
// kills), drives it from several ResilientClient threads, optionally
// SIGKILLs it mid-stream and restarts it, and asserts the reliability
// invariants the stack promises:
//
//   1. every idempotent request eventually succeeds exactly once, and
//      identical requests get identical responses across the whole run
//      (restarts and hot reloads included);
//   2. the client-observed failure rate stays under --max_error_rate;
//   3. the scraped `metrics` exposition stays lint-clean and
//      serve_requests is monotone within each server incarnation;
//   4. when a kill/restart is induced, the circuit breaker opens during
//      the outage and is closed again by the end of the run;
//   5. (optional) p99 latency over the final quarter of successes is
//      back under --recovered_p99_ms once the breakers re-close.
//
// Exit code 0 iff every invariant held. POSIX-only, like the transport.

#include <cstdio>
#include <string>

#include "util/flags.h"

#if !defined(__unix__) && !defined(__APPLE__)

int main() {
  std::fprintf(stderr, "serve_chaos requires a POSIX host\n");
  return 0;
}

#else

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/exposition.h"
#include "serve/client.h"
#include "serve/transport.h"
#include "util/string_util.h"

namespace {

using prefcover::FlagParser;
using prefcover::Status;
using prefcover::serve::ClientCounters;
using prefcover::serve::ConnectTcp;
using prefcover::serve::ResilientClient;
using prefcover::serve::ResilientClientOptions;

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ChaosConfig {
  std::string server_bin;
  std::string index;
  std::string failpoints;
  int port = 0;
  int clients = 4;
  int requests = 200;
  int max_node = 512;
  int pace_ms = 0;
  int kill_after_ms = 0;
  int restart_after_ms = 500;
  bool reload_mid_run = false;
  int breaker_threshold = 3;
  int breaker_cooldown_ms = 100;
  int max_attempts = 4;
  int request_timeout_ms = 2000;
  uint64_t seed = 1;
  int64_t soak_deadline_ms = 120000;
  double max_error_rate = 0.75;
  double recovered_p99_ms = 0.0;
};

pid_t LaunchServer(const ChaosConfig& config) {
  pid_t pid = ::fork();
  if (pid != 0) return pid;
  if (!config.failpoints.empty()) {
    ::setenv("PREFCOVER_FAILPOINTS", config.failpoints.c_str(), 1);
  }
  const std::string index_flag = "--index=" + config.index;
  const std::string port_flag = "--port=" + std::to_string(config.port);
  ::execl(config.server_bin.c_str(), config.server_bin.c_str(), "serve",
          index_flag.c_str(), port_flag.c_str(),
          static_cast<char*>(nullptr));
  std::fprintf(stderr, "exec %s failed\n", config.server_bin.c_str());
  ::_exit(127);
}

// The kernel completes the TCP handshake into the backlog before the
// server accept()s, so a successful connect means the listener is up —
// even with net.accept faults armed.
bool WaitReady(const ChaosConfig& config, int64_t timeout_ms) {
  const int64_t deadline = NowMs() + timeout_ms;
  while (NowMs() < deadline) {
    auto fd = ConnectTcp("127.0.0.1",
                         static_cast<uint16_t>(config.port), 200);
    if (fd.ok()) {
      ::close(*fd);
      return true;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

ResilientClientOptions ClientOptions(const ChaosConfig& config,
                                     uint64_t salt) {
  ResilientClientOptions options;
  options.port = static_cast<uint16_t>(config.port);
  options.request_timeout_ms = config.request_timeout_ms;
  options.max_attempts = config.max_attempts;
  options.breaker_threshold = config.breaker_threshold;
  options.breaker_cooldown_ms = config.breaker_cooldown_ms;
  options.jitter_seed = config.seed * 1000003ull + salt;
  return options;
}

std::string RequestFor(const ChaosConfig& config, int client, int i) {
  const int node =
      static_cast<int>((client * 7919 + i * 31) % config.max_node);
  if (i % 3 == 0) return "covered " + std::to_string(node);
  return "subs " + std::to_string(node) + " 4";
}

struct SharedState {
  std::mutex mu;
  // Per-request-line canonical response: identical requests must get
  // identical answers across clients, restarts and reloads.
  std::map<std::string, std::string> canonical;
  std::vector<std::pair<int64_t, double>> successes;  // (ms, latency ms)
  int incarnation = 1;
  int metric_resets = 0;
  int lint_failures = 0;
  int mismatches = 0;
  uint64_t total_successes = 0;
  std::atomic<bool> clients_done{false};
  std::atomic<bool> aborted{false};
};

void ClientThread(const ChaosConfig& config, int id, SharedState* shared,
                  ClientCounters* out_counters, bool* breaker_reclosed) {
  ResilientClient client(
      ClientOptions(config, 17u + static_cast<uint64_t>(id)));
  const int64_t soak_deadline = NowMs() + config.soak_deadline_ms;
  for (int i = 0; i < config.requests; ++i) {
    if (config.pace_ms > 0 && i > 0) {
      // Pacing stretches the stream so an induced mid-run outage lands
      // on in-flight traffic instead of after the last request.
      std::this_thread::sleep_for(
          std::chrono::milliseconds(config.pace_ms));
    }
    const std::string request = RequestFor(config, id, i);
    bool done = false;
    while (!done && NowMs() < soak_deadline &&
           !shared->aborted.load(std::memory_order_relaxed)) {
      const int64_t start = NowMs();
      auto response = client.Call(request);
      if (response.ok()) {
        const int64_t end = NowMs();
        std::lock_guard<std::mutex> lock(shared->mu);
        ++shared->total_successes;
        shared->successes.emplace_back(end,
                                       static_cast<double>(end - start));
        auto [it, inserted] =
            shared->canonical.emplace(request, *response);
        if (!inserted && it->second != *response) {
          ++shared->mismatches;
          std::fprintf(stderr,
                       "[chaos] response mismatch for '%s':\n  first: "
                       "%s\n  now:   %s\n",
                       request.c_str(), it->second.c_str(),
                       response->c_str());
        }
        done = true;
      } else {
        // Breaker fast-fails return instantly; pause so the cooldown can
        // elapse instead of spinning.
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
    }
    if (!done) {
      shared->aborted.store(true, std::memory_order_relaxed);
      std::fprintf(stderr,
                   "[chaos] client %d gave up on '%s' (soak deadline)\n",
                   id, request.c_str());
      break;
    }
  }
  *out_counters = client.counters();
  *breaker_reclosed = !client.breaker_open();
}

void ScraperThread(const ChaosConfig& config, SharedState* shared) {
  ResilientClient client(ClientOptions(config, 999));
  double last_requests = -1.0;
  int last_incarnation = 0;
  while (!shared->clients_done.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    auto text = client.Call("metrics");
    if (!text.ok()) continue;  // outage window; clients cover retries
    auto lint = prefcover::obs::LintPrometheusText(*text);
    double requests = 0.0;
    const bool found = prefcover::obs::FindPrometheusValue(
        *text, "serve_requests", &requests);
    std::lock_guard<std::mutex> lock(shared->mu);
    if (!lint.ok) {
      ++shared->lint_failures;
      std::fprintf(stderr, "[chaos] metrics lint: %s\n",
                   lint.message.c_str());
    }
    if (found) {
      if (requests < last_requests &&
          shared->incarnation == last_incarnation) {
        ++shared->metric_resets;
        std::fprintf(
            stderr,
            "[chaos] serve_requests went backwards (%.0f -> %.0f) "
            "within incarnation %d\n",
            last_requests, requests, shared->incarnation);
      }
      last_requests = requests;
      last_incarnation = shared->incarnation;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "serve_chaos: fault-injected soak of prefcover serve --port; exits "
      "0 iff every reliability invariant held (see file header)");
  flags.AddString("server_bin", "", "path to the prefcover binary");
  flags.AddString("index", "", "PCSIDX01 index file to serve");
  flags.AddString("failpoints", "",
                  "PREFCOVER_FAILPOINTS spec exported to the server, "
                  "e.g. net.read=error(0.02,7);net.write=error(0.02,11)");
  flags.AddInt("port", 0, "TCP port; 0 derives one from the pid");
  flags.AddInt("clients", 4, "client threads");
  flags.AddInt("requests", 200, "requests per client");
  flags.AddInt("max_node", 512, "request node ids are drawn mod this");
  flags.AddInt("pace_ms", 0,
               "sleep between a client's requests, stretching the soak "
               "across the induced outage; 0 = closed loop");
  flags.AddInt("kill_after_ms", 0,
               "SIGKILL the server this long into the run; 0 = never");
  flags.AddInt("restart_after_ms", 500,
               "restart delay after the induced kill");
  flags.AddBool("reload_mid_run", false,
                "issue a hot `reload <index>` between kill and the end");
  flags.AddInt("breaker_threshold", 3,
               "client breaker threshold (consecutive failures)");
  flags.AddInt("breaker_cooldown_ms", 100, "client breaker cooldown");
  flags.AddInt("max_attempts", 4, "client attempts per Call");
  flags.AddInt("request_timeout_ms", 2000, "client per-request timeout");
  flags.AddInt("seed", 1, "base jitter seed (runs replay per seed)");
  flags.AddInt("soak_deadline_ms", 120000,
               "give up (and fail) if the soak runs longer than this");
  flags.AddDouble("max_error_rate", 0.75,
                  "max fraction of Call() invocations that may fail");
  flags.AddDouble("recovered_p99_ms", 0.0,
                  "p99 bound over the final quarter of successes; 0 = "
                  "skip the check");
  Status parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    return parsed.code() == prefcover::StatusCode::kOutOfRange ? 0 : 1;
  }

  ChaosConfig config;
  config.server_bin = flags.GetString("server_bin");
  config.index = flags.GetString("index");
  config.failpoints = flags.GetString("failpoints");
  config.port = static_cast<int>(flags.GetInt("port"));
  config.clients = static_cast<int>(flags.GetInt("clients"));
  config.requests = static_cast<int>(flags.GetInt("requests"));
  config.max_node = static_cast<int>(flags.GetInt("max_node"));
  config.pace_ms = static_cast<int>(flags.GetInt("pace_ms"));
  config.kill_after_ms = static_cast<int>(flags.GetInt("kill_after_ms"));
  config.restart_after_ms =
      static_cast<int>(flags.GetInt("restart_after_ms"));
  config.reload_mid_run = flags.GetBool("reload_mid_run");
  config.breaker_threshold =
      static_cast<int>(flags.GetInt("breaker_threshold"));
  config.breaker_cooldown_ms =
      static_cast<int>(flags.GetInt("breaker_cooldown_ms"));
  config.max_attempts = static_cast<int>(flags.GetInt("max_attempts"));
  config.request_timeout_ms =
      static_cast<int>(flags.GetInt("request_timeout_ms"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.soak_deadline_ms = flags.GetInt("soak_deadline_ms");
  config.max_error_rate = flags.GetDouble("max_error_rate");
  config.recovered_p99_ms = flags.GetDouble("recovered_p99_ms");
  if (config.server_bin.empty() || config.index.empty()) {
    std::fprintf(stderr, "--server_bin and --index are required\n");
    return 1;
  }
  if (config.port == 0) {
    config.port = 20000 + static_cast<int>(::getpid() % 10000);
  }

  pid_t server = LaunchServer(config);
  if (server < 0) {
    std::fprintf(stderr, "fork failed\n");
    return 1;
  }
  if (!WaitReady(config, 15000)) {
    std::fprintf(stderr, "server never became ready on port %d\n",
                 config.port);
    ::kill(server, SIGKILL);
    ::waitpid(server, nullptr, 0);
    return 1;
  }
  std::fprintf(stderr,
               "[chaos] server pid %d on port %d, faults='%s', "
               "%d clients x %d requests, kill_after=%dms\n",
               static_cast<int>(server), config.port,
               config.failpoints.c_str(), config.clients, config.requests,
               config.kill_after_ms);

  SharedState shared;
  const size_t n_clients = static_cast<size_t>(config.clients);
  std::vector<ClientCounters> counters(n_clients);
  std::vector<char> reclosed(n_clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(n_clients);
  for (size_t c = 0; c < n_clients; ++c) {
    threads.emplace_back([&, c] {
      bool closed = false;
      ClientThread(config, static_cast<int>(c), &shared, &counters[c],
                   &closed);
      reclosed[c] = closed ? 1 : 0;
    });
  }
  std::thread scraper([&] { ScraperThread(config, &shared); });

  // Supervisor: the induced outage and optional hot reload.
  bool killed = false;
  if (config.kill_after_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.kill_after_ms));
    std::fprintf(stderr, "[chaos] SIGKILL server pid %d\n",
                 static_cast<int>(server));
    ::kill(server, SIGKILL);
    ::waitpid(server, nullptr, 0);
    killed = true;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config.restart_after_ms));
    server = LaunchServer(config);
    if (server < 0 || !WaitReady(config, 15000)) {
      std::fprintf(stderr, "[chaos] restart failed\n");
      shared.aborted.store(true, std::memory_order_relaxed);
    } else {
      std::lock_guard<std::mutex> lock(shared.mu);
      ++shared.incarnation;
      std::fprintf(stderr, "[chaos] server restarted, pid %d\n",
                   static_cast<int>(server));
    }
  }
  if (config.reload_mid_run &&
      !shared.aborted.load(std::memory_order_relaxed)) {
    // `reload` is not retried by the client (non-idempotent verb), but
    // re-issuing a reload of the SAME file is safe, so the harness may
    // outer-retry it through injected faults.
    ResilientClient control(ClientOptions(config, 424242));
    const std::string reload_line = "reload " + config.index;
    const int64_t deadline = NowMs() + 10000;
    while (NowMs() < deadline) {
      auto response = control.Call(reload_line);
      if (response.ok() && response->rfind("OK reload", 0) == 0) {
        std::fprintf(stderr, "[chaos] hot reload applied: %s\n",
                     response->c_str());
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }

  for (auto& thread : threads) thread.join();
  shared.clients_done.store(true, std::memory_order_relaxed);
  scraper.join();

  // Clean shutdown; best-effort (the run's invariants are already
  // decided).
  {
    ResilientClient control(ClientOptions(config, 31337));
    (void)control.Call("shutdown");
  }
  int status = 0;
  if (::waitpid(server, &status, WNOHANG) == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(500));
    if (::waitpid(server, &status, WNOHANG) == 0) {
      ::kill(server, SIGKILL);
      ::waitpid(server, &status, 0);
    }
  }

  // ---- Verdict ----------------------------------------------------
  ClientCounters total;
  for (const auto& c : counters) {
    total.requests += c.requests;
    total.attempts += c.attempts;
    total.retries += c.retries;
    total.reconnects += c.reconnects;
    total.timeouts += c.timeouts;
    total.failures += c.failures;
    total.breaker_opens += c.breaker_opens;
    total.breaker_probes += c.breaker_probes;
    total.breaker_fastfails += c.breaker_fastfails;
  }
  const uint64_t expected = static_cast<uint64_t>(config.clients) *
                            static_cast<uint64_t>(config.requests);
  const double error_rate =
      total.requests == 0
          ? 0.0
          : static_cast<double>(total.failures) /
                static_cast<double>(total.requests);

  double recovery_gap_ms = 0.0;
  double final_p99_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(shared.mu);
    std::sort(shared.successes.begin(), shared.successes.end());
    for (size_t i = 1; i < shared.successes.size(); ++i) {
      recovery_gap_ms = std::max(
          recovery_gap_ms, static_cast<double>(shared.successes[i].first -
                                               shared.successes[i - 1].first));
    }
    const size_t n = shared.successes.size();
    if (n >= 8) {
      std::vector<double> tail;
      for (size_t i = n - n / 4; i < n; ++i) {
        tail.push_back(shared.successes[i].second);
      }
      std::sort(tail.begin(), tail.end());
      final_p99_ms = tail[static_cast<size_t>(
          static_cast<double>(tail.size() - 1) * 0.99)];
    }
  }

  std::fprintf(
      stderr,
      "[chaos] successes=%llu/%llu calls=%llu attempts=%llu retries=%llu "
      "reconnects=%llu timeouts=%llu failures=%llu breaker_opens=%llu "
      "probes=%llu fastfails=%llu error_rate=%.3f max_success_gap=%.0fms "
      "final_p99=%.1fms\n",
      static_cast<unsigned long long>(shared.total_successes),
      static_cast<unsigned long long>(expected),
      static_cast<unsigned long long>(total.requests),
      static_cast<unsigned long long>(total.attempts),
      static_cast<unsigned long long>(total.retries),
      static_cast<unsigned long long>(total.reconnects),
      static_cast<unsigned long long>(total.timeouts),
      static_cast<unsigned long long>(total.failures),
      static_cast<unsigned long long>(total.breaker_opens),
      static_cast<unsigned long long>(total.breaker_probes),
      static_cast<unsigned long long>(total.breaker_fastfails),
      error_rate, recovery_gap_ms, final_p99_ms);

  int verdict = 0;
  auto fail = [&verdict](const char* what) {
    std::fprintf(stderr, "[chaos] FAIL: %s\n", what);
    verdict = 1;
  };
  if (shared.aborted.load(std::memory_order_relaxed)) {
    fail("soak aborted before completing");
  }
  if (shared.total_successes != expected) {
    fail("not every request completed exactly once");
  }
  if (shared.mismatches != 0) fail("inconsistent responses");
  if (shared.lint_failures != 0) fail("metrics exposition lint");
  if (shared.metric_resets != 0) {
    fail("serve_requests not monotone within an incarnation");
  }
  if (error_rate > config.max_error_rate) fail("error rate bound");
  if (killed) {
    if (total.breaker_opens == 0) {
      fail("induced outage never opened a breaker");
    }
    for (size_t c = 0; c < reclosed.size(); ++c) {
      if (!reclosed[c]) {
        fail("a client breaker was still open at the end");
        break;
      }
    }
  }
  if (config.recovered_p99_ms > 0.0 && final_p99_ms > 0.0 &&
      final_p99_ms > config.recovered_p99_ms) {
    fail("final-quarter p99 above the recovery bound");
  }
  std::fprintf(stderr, "[chaos] %s\n", verdict == 0 ? "PASS" : "FAIL");
  return verdict;
}

#endif  // POSIX
