// trace_validate — structural validator for Chrome trace-event JSON files
// produced by `prefcover solve --trace_out` (and any other obs::Tracing
// export). Used by the nightly perf workflow to gate the traced-solve
// artifact, and convenient locally before loading a trace into Perfetto.
//
// Checks:
//   - the document is {"displayTimeUnit":"ms","traceEvents":[...]};
//   - every event carries the required keys (name, cat, ph, ts, dur, pid,
//     tid) with the right types, ph == "X", and non-negative ts/dur;
//   - per thread, ts is monotonically non-decreasing (the exporter sorts
//     by (tid, start), so a violation means a broken exporter);
//   - every event carries the same pid (traces come from one process; a
//     second pid means concatenated or corrupted files);
//   - optional: --require_categories=a,b,... each have >= 1 event, and
//     the file holds at least --min_events events;
//   - optional: --metrics=FILE cross-checks a metrics snapshot JSON
//     (solve/serve --metrics_out) against the trace — each counter named
//     in --require_counter=a,b,... must be present with value >=
//     --counter_min.
//
// Exit codes: 0 = valid, 1 = invalid, 2 = usage/IO error.

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench/json.h"
#include "util/flags.h"
#include "util/string_util.h"

using namespace prefcover;

namespace {

int Usage(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 2;
}

int Invalid(const std::string& message) {
  std::fprintf(stderr, "invalid trace: %s\n", message.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags(
      "trace_validate: check a Chrome trace-event JSON file\n"
      "usage: trace_validate --input=trace.json [flags]");
  flags.AddString("input", "", "trace JSON path (required)");
  flags.AddString("require_categories", "",
                  "comma-separated categories that must each appear in at "
                  "least one event");
  flags.AddInt("min_events", 1, "minimum number of events required");
  flags.AddString("metrics", "",
                  "metrics snapshot JSON (from --metrics_out) to "
                  "cross-check alongside the trace");
  flags.AddString("require_counter", "",
                  "comma-separated counter names that must be present in "
                  "--metrics with value >= --counter_min");
  flags.AddInt("counter_min", 1,
               "minimum value for each --require_counter counter");
  Status st = flags.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;  // --help
  if (!st.ok()) return Usage(st.ToString());
  if (flags.GetString("input").empty()) {
    return Usage("--input is required");
  }

  std::ifstream in(flags.GetString("input"));
  if (!in) return Usage("cannot open " + flags.GetString("input"));
  std::ostringstream buffer;
  buffer << in.rdbuf();

  auto doc = JsonValue::Parse(buffer.str());
  if (!doc.ok()) return Invalid(doc.status().ToString());
  if (!doc->is_object()) return Invalid("document must be an object");

  const JsonValue* unit = doc->Find("displayTimeUnit");
  if (unit == nullptr || !unit->is_string() ||
      unit->string_value() != "ms") {
    return Invalid("displayTimeUnit must be the string \"ms\"");
  }
  const JsonValue* events = doc->Find("traceEvents");
  if (events == nullptr || !events->is_array()) {
    return Invalid("traceEvents must be an array");
  }

  std::map<std::string, uint64_t> category_counts;
  std::map<double, double> last_ts_by_tid;
  double first_pid = 0.0;
  for (size_t i = 0; i < events->size(); ++i) {
    const std::string at = "traceEvents[" + std::to_string(i) + "]";
    const JsonValue& e = events->at(i);
    if (!e.is_object()) return Invalid(at + " is not an object");
    for (const char* key : {"name", "cat", "ph"}) {
      const JsonValue* v = e.Find(key);
      if (v == nullptr || !v->is_string()) {
        return Invalid(at + "." + key + " missing or not a string");
      }
    }
    for (const char* key : {"ts", "dur", "pid", "tid"}) {
      const JsonValue* v = e.Find(key);
      if (v == nullptr || !v->is_number()) {
        return Invalid(at + "." + key + " missing or not a number");
      }
    }
    if (e.Find("ph")->string_value() != "X") {
      return Invalid(at + ".ph must be \"X\" (complete event)");
    }
    if (e.Find("name")->string_value().empty()) {
      return Invalid(at + ".name is empty");
    }
    const double ts = e.Find("ts")->number_value();
    const double dur = e.Find("dur")->number_value();
    if (ts < 0.0 || dur < 0.0) {
      return Invalid(at + " has a negative ts or dur");
    }
    const JsonValue* args = e.Find("args");
    if (args != nullptr && !args->is_object()) {
      return Invalid(at + ".args is not an object");
    }

    const double tid = e.Find("tid")->number_value();
    auto [it, inserted] = last_ts_by_tid.try_emplace(tid, ts);
    if (!inserted) {
      if (ts < it->second) {
        return Invalid(at + ": ts goes backwards on tid " +
                       FormatJsonNumber(tid));
      }
      it->second = ts;
    }
    const double pid = e.Find("pid")->number_value();
    if (i == 0) {
      first_pid = pid;
    } else if (pid != first_pid) {
      return Invalid(at + ": pid " + FormatJsonNumber(pid) +
                     " differs from the file's pid " +
                     FormatJsonNumber(first_pid) +
                     " (concatenated traces?)");
    }
    ++category_counts[e.Find("cat")->string_value()];
  }

  if (events->size() <
      static_cast<uint64_t>(flags.GetInt("min_events"))) {
    return Invalid("only " + std::to_string(events->size()) +
                   " event(s); --min_events=" +
                   std::to_string(flags.GetInt("min_events")));
  }
  for (const std::string& category :
       SplitString(flags.GetString("require_categories"), ',')) {
    if (category.empty()) continue;
    if (category_counts.find(category) == category_counts.end()) {
      return Invalid("no events in required category '" + category + "'");
    }
  }

  // Metrics cross-check: the trace says *where* time went; the counters
  // say *how much* work happened. Requiring both from the same run
  // catches a solve that traced nothing or counted nothing.
  const std::string& metrics_path = flags.GetString("metrics");
  const std::vector<std::string> required_counters =
      SplitString(flags.GetString("require_counter"), ',');
  if (metrics_path.empty()) {
    for (const std::string& name : required_counters) {
      if (!name.empty()) {
        return Usage("--require_counter needs --metrics");
      }
    }
  } else {
    std::ifstream metrics_in(metrics_path);
    if (!metrics_in) return Usage("cannot open " + metrics_path);
    std::ostringstream metrics_buffer;
    metrics_buffer << metrics_in.rdbuf();
    auto metrics_doc = JsonValue::Parse(metrics_buffer.str());
    if (!metrics_doc.ok()) {
      return Invalid("metrics: " + metrics_doc.status().ToString());
    }
    const JsonValue* counters = metrics_doc->is_object()
                                    ? metrics_doc->Find("counters")
                                    : nullptr;
    if (counters == nullptr || !counters->is_object()) {
      return Invalid("metrics: missing \"counters\" object");
    }
    const double counter_min =
        static_cast<double>(flags.GetInt("counter_min"));
    for (const std::string& name : required_counters) {
      if (name.empty()) continue;
      const JsonValue* value = counters->Find(name);
      if (value == nullptr || !value->is_number()) {
        return Invalid("metrics: required counter '" + name +
                       "' is absent");
      }
      if (value->number_value() < counter_min) {
        return Invalid("metrics: counter '" + name + "' = " +
                       FormatJsonNumber(value->number_value()) +
                       " below --counter_min=" +
                       FormatJsonNumber(counter_min));
      }
    }
  }

  std::printf("valid: %zu event(s) on %zu thread(s)", events->size(),
              last_ts_by_tid.size());
  for (const auto& [category, count] : category_counts) {
    std::printf(" %s=%llu", category.c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("\n");
  return 0;
}
