// Figure 4d: scalability of Greedy for n in {10K, 100K, 500K, 1M} with
// k = 5K, on PE-shaped graphs (the paper carves subsets of its largest
// private dataset). Graph construction is excluded from the timings, as
// in the paper ("the graph construction is considered to be an offline
// phase").
//
// The default run exercises the paper's exact sizes with the lazy (CELF)
// execution of Algorithm 1, which returns the identical solution; pass
// --plain to also time the literal O(nkD) scan at the sizes where it is
// feasible.
//
// Usage: fig4d_scalability [--csv] [--plain] [--threads=N]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Figure 4d: scalability of Greedy on PE subsets");
  env.flags.AddBool("plain", false,
                    "also run the literal per-iteration scan (parallel "
                    "plain greedy) where feasible");
  env.flags.AddInt("k", 5000, "retained-set budget (paper: 5K)");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const size_t k = static_cast<size_t>(env.flags.GetInt("k"));
  const bool plain = env.flags.GetBool("plain");
  PrintExperimentHeader(env, "Figure 4d",
                        "Greedy runtime vs n (k=" + FormatCount(k) + ")");

  std::vector<uint32_t> sizes = {10'000, 100'000, 500'000, 1'000'000};
  if (env.scale > 0.0 && env.scale < 1.0) {
    for (auto& n : sizes) {
      n = static_cast<uint32_t>(static_cast<double>(n) * env.scale);
    }
  }

  TablePrinter table({"n", "edges", "gen time", "Greedy(lazy) time",
                      "cover", plain ? "Greedy(plain,parallel) time"
                                     : "-"});
  for (uint32_t n : sizes) {
    if (n < k) continue;
    Stopwatch gen_timer;
    auto graph = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n,
                                               env.seed);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    double gen_seconds = gen_timer.ElapsedSeconds();

    auto lazy = SolveGreedyLazy(*graph, k);
    if (!lazy.ok()) {
      std::fprintf(stderr, "%s\n", lazy.status().ToString().c_str());
      return 1;
    }

    std::string plain_cell = "-";
    if (plain && static_cast<uint64_t>(n) * k <= 2'000'000'000ULL) {
      ThreadPool pool(env.threads == 1 ? ThreadPool::DefaultThreadCount()
                                       : env.threads);
      auto scan = SolveGreedyParallel(*graph, k, &pool);
      if (!scan.ok()) {
        std::fprintf(stderr, "%s\n", scan.status().ToString().c_str());
        return 1;
      }
      plain_cell = FormatDuration(scan->solve_seconds);
    }
    table.AddRow({FormatCount(n), FormatCount(graph->NumEdges()),
                  FormatDuration(gen_seconds),
                  FormatDuration(lazy->solve_seconds),
                  TablePrinter::Percent(lazy->cover, 2), plain_cell});
  }
  env.Emit(table, "Scalability (solver time only, as in the paper)");
  return 0;
}
