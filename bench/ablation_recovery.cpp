// Ablation: data efficiency of the Data Adaptation Engine.
//
// Generates sessions from a known ground-truth preference model, rebuilds
// the graph from growing session counts, and measures (a) reconstruction
// error on well-observed edges and (b) — what actually matters — the cover
// achieved ON THE TRUE GRAPH by the solution computed on the reconstructed
// one. The paper could not run this experiment: with private production
// data there is no ground truth to compare against.
//
// Usage: ablation_recovery [--csv] [--items=400] [--k-share=0.1]

#include <cmath>
#include <cstdio>
#include <iostream>

#include "clickstream/graph_construction.h"
#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/session_generator.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Ablation: construction accuracy vs session volume");
  env.flags.AddInt("items", 400, "catalog size");
  env.flags.AddDouble("k-share", 0.1, "retained share for the quality test");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t items = static_cast<uint32_t>(env.flags.GetInt("items"));
  PrintExperimentHeader(env, "Ablation A5",
                        "Data Adaptation Engine data efficiency");

  Rng rng(env.seed);
  CatalogParams cparams;
  cparams.num_items = items;
  cparams.num_categories = std::max(1u, items / 40);
  auto catalog = Catalog::Generate(cparams, &rng);
  if (!catalog.ok()) {
    std::fprintf(stderr, "%s\n", catalog.status().ToString().c_str());
    return 1;
  }
  PreferenceModelParams mparams;
  mparams.popularity_skew = 0.7;  // flatter: every item gets observations
  auto model = PreferenceModel::Build(&*catalog, mparams, &rng);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 1;
  }
  const PreferenceGraph& truth = model->graph();
  const size_t k = static_cast<size_t>(env.flags.GetDouble("k-share") *
                                       static_cast<double>(items));
  auto truth_solution = SolveGreedyLazy(truth, k);
  if (!truth_solution.ok()) return 1;

  TablePrinter table({"sessions", "observed edges", "edge MAE",
                      "cover on truth (recon. solution)",
                      "cover on truth (true solution)", "quality ratio"});
  for (uint64_t sessions :
       {2'000ULL, 10'000ULL, 50'000ULL, 250'000ULL, 1'000'000ULL}) {
    Rng srng(env.seed + sessions);
    SessionGeneratorParams sparams;
    sparams.num_sessions = sessions;
    auto cs = GenerateSessions(*model, sparams, &srng);
    if (!cs.ok()) {
      std::fprintf(stderr, "%s\n", cs.status().ToString().c_str());
      return 1;
    }
    auto recon = BuildPreferenceGraph(*cs);
    if (!recon.ok()) {
      std::fprintf(stderr, "%s\n", recon.status().ToString().c_str());
      return 1;
    }

    // Mean absolute error over true edges of well-observed items.
    double error_sum = 0.0;
    size_t error_n = 0;
    for (NodeId v = 0; v < truth.NumNodes(); ++v) {
      if (truth.NodeWeight(v) <
          1.0 / static_cast<double>(truth.NumNodes())) {
        continue;
      }
      AdjacencyView out = truth.OutNeighbors(v);
      for (size_t i = 0; i < out.size(); ++i) {
        error_sum += std::fabs(out.weights[i] -
                               recon->EdgeWeight(v, out.nodes[i]));
        ++error_n;
      }
    }

    auto recon_solution = SolveGreedyLazy(*recon, k);
    if (!recon_solution.ok()) return 1;
    auto cross = EvaluateCover(truth, recon_solution->items,
                               Variant::kIndependent);
    if (!cross.ok()) return 1;

    table.AddRow(
        {FormatCount(sessions), FormatCount(recon->NumEdges()),
         TablePrinter::Fixed(
             error_n > 0 ? error_sum / static_cast<double>(error_n) : 0.0,
             4),
         TablePrinter::Percent(*cross, 2),
         TablePrinter::Percent(truth_solution->cover, 2),
         TablePrinter::Fixed(*cross / truth_solution->cover, 4)});
  }
  env.Emit(table,
           "Reconstruction quality as the clickstream grows (ground truth "
           "has " +
               FormatCount(truth.NumEdges()) + " edges)");
  return 0;
}
