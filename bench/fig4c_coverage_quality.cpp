// Figure 4c: coverage quality of all competitors on the YC dataset
// (Independent variant) for k in {0.1n, 0.3n, ..., 0.9n}. Expected shape:
// Greedy on top at every k, TopK-C and TopK-W lagging (they ignore cover
// overlaps / alternatives respectively), Random far below.
//
// Usage: fig4c_coverage_quality [--csv] [--scale=0.1] [--profile=YC]

#include <cstdio>
#include <iostream>

#include "eval/experiment.h"
#include "eval/runner.h"
#include "synth/dataset_profiles.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Figure 4c: coverage quality of all competitors");
  env.flags.AddString("profile", "YC", "dataset profile: PE|PF|PM|YC");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto profile = ParseProfileName(env.flags.GetString("profile"));
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  const ProfileSpec& spec = GetProfileSpec(*profile);
  const Variant variant = spec.natural_variant;
  const double scale = env.ScaleOr(0.1);

  auto graph = GenerateProfileGraph(*profile, scale, env.seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  PrintExperimentHeader(
      env, "Figure 4c",
      std::string("coverage of all competitors, ") + spec.name + " (n=" +
          FormatCount(graph->NumNodes()) + "), variant=" +
          std::string(VariantName(variant)));

  TablePrinter table(
      {"k/n", "k", "Greedy", "TopK-C", "TopK-W", "Random(best of 10)"});
  Rng rng(env.seed + 1);
  for (double fraction : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    size_t k = static_cast<size_t>(fraction *
                                   static_cast<double>(graph->NumNodes()));
    auto entries = RunSuite(
        {Algorithm::kGreedyLazy, Algorithm::kTopKCoverage,
         Algorithm::kTopKWeight, Algorithm::kRandom},
        *graph, k, variant, &rng);
    if (!entries.ok()) {
      std::fprintf(stderr, "%s\n", entries.status().ToString().c_str());
      return 1;
    }
    table.AddRow({TablePrinter::Fixed(fraction, 1), std::to_string(k),
                  TablePrinter::Percent((*entries)[0].solution.cover, 2),
                  TablePrinter::Percent((*entries)[1].solution.cover, 2),
                  TablePrinter::Percent((*entries)[2].solution.cover, 2),
                  TablePrinter::Percent((*entries)[3].solution.cover, 2)});
  }
  env.Emit(table, "Coverage quality (higher is better)");
  return 0;
}
