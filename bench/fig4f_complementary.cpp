// Figure 4f: the complementary minimization problem on the YC dataset
// (Independent variant). For thresholds {0.5, ..., 0.9}, report the size
// of the smallest retained set each algorithm produces. Expected shape:
// Greedy needs the fewest items at every threshold, with the gap widening
// as the threshold grows.
//
// Usage: fig4f_complementary [--csv] [--scale=0.1] [--profile=YC]

#include <cstdio>
#include <iostream>

#include "core/complementary_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Figure 4f: smallest set reaching a coverage threshold");
  env.flags.AddString("profile", "YC", "dataset profile: PE|PF|PM|YC");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto profile = ParseProfileName(env.flags.GetString("profile"));
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }
  const Variant variant = GetProfileSpec(*profile).natural_variant;
  auto graph = GenerateProfileGraph(*profile, env.ScaleOr(0.1), env.seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  PrintExperimentHeader(
      env, "Figure 4f",
      std::string("complementary problem on ") +
          GetProfileSpec(*profile).name + " (n=" +
          FormatCount(graph->NumNodes()) + "), variant=" +
          std::string(VariantName(variant)));

  TablePrinter table({"threshold", "Greedy size", "TopK-C size",
                      "TopK-W size", "Greedy saving vs TopK-W"});
  for (double threshold : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    size_t sizes[3] = {0, 0, 0};
    const ThresholdAlgorithm algorithms[3] = {
        ThresholdAlgorithm::kGreedy, ThresholdAlgorithm::kTopKCoverage,
        ThresholdAlgorithm::kTopKWeight};
    for (int i = 0; i < 3; ++i) {
      auto result =
          SolveCoverageThreshold(*graph, threshold, variant, algorithms[i]);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      sizes[i] = result->reached ? result->set_size
                                 : graph->NumNodes() + 1;
    }
    double saving =
        sizes[2] > 0 ? 1.0 - static_cast<double>(sizes[0]) /
                                 static_cast<double>(sizes[2])
                     : 0.0;
    table.AddRow({TablePrinter::Fixed(threshold, 1),
                  FormatCount(sizes[0]), FormatCount(sizes[1]),
                  FormatCount(sizes[2]), TablePrinter::Percent(saving, 1)});
  }
  env.Emit(table, "Smallest qualifying set per algorithm (lower is better)");
  return 0;
}
