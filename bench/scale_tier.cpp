// Scale-tier benchmark: the pinned large-instance suite behind the
// nightly perf-smoke job. Generates the tier's Zipf-skewed PE-shaped
// graph (S=20K, M=200K, L=1M, XL=10M nodes) and times graph generation
// plus the batched-CELF lazy-parallel solve at the tier's pinned budget
// (k=100), emitting the machine-readable BENCH_core.json trajectory
// record.
//
// --dist_workers=N additionally times the distributed sharded greedy
// (SolveGreedyDistributed) against N in-process dist-worker servers on
// loopback TCP — real wire, real protocol, one process so the nightly
// ratio gate is immune to runner speed — plus the single-threaded lazy
// solve as the gate's single-process baseline. The XL tier is
// distributed-only: a single process is not the intended execution at
// 10M nodes, so --dist_workers >= 1 is required and the single-process
// solve cases are skipped (see DISTRIBUTED.md).
//
// Usage: scale_tier [--tier=S|M|L|XL] [--threads=N] [--seed=S]
//                   [--dist_workers=N]
//                   [--reps=R] [--warmup=W] [--json=PATH] [--csv]

#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_runner.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>

#include <string>
#include <vector>

#include "dist/distributed_solver.h"
#include "dist/worker.h"
#include "serve/server.h"
#include "serve/transport.h"
#endif

using namespace prefcover;

namespace {

#if defined(__unix__) || defined(__APPLE__)

// One in-process dist-worker server: a listener on an ephemeral loopback
// port with a serial accept loop on a thread — the CLI's dist-worker
// topology without the process-spawn noise.
class WorkerServer {
 public:
  explicit WorkerServer(const PreferenceGraph* graph) : worker_(graph) {
    serve::IgnoreSigpipe();
    auto listener = serve::ListenTcp(0);
    if (!listener.ok()) return;
    listener_ = *listener;
    auto port = serve::LocalPort(listener_);
    if (!port.ok()) return;
    port_ = *port;
    thread_ = std::thread([this] {
      bool keep_serving = true;
      while (keep_serving) {
        auto client = serve::AcceptClient(listener_);
        if (!client.ok()) break;
        keep_serving = serve::ServeLineSessionLoop(
            *client,
            [this](const std::string& line, bool* stop_session,
                   bool* stop_server) {
              return worker_.HandleLine(line, stop_session, stop_server);
            });
      }
    });
  }

  ~WorkerServer() {
    if (port_ != 0) {
      auto fd = serve::ConnectTcp("127.0.0.1", port_, 1000);
      if (fd.ok()) {
        static const char kShutdown[] = "shutdown\n";
        (void)serve::WriteFully(*fd, kShutdown, sizeof(kShutdown) - 1);
        char buffer[64];
        (void)serve::ReadSome(*fd, buffer, sizeof(buffer));
        ::close(*fd);
      }
    }
    if (thread_.joinable()) thread_.join();
    if (listener_ >= 0) ::close(listener_);
  }

  uint16_t port() const { return port_; }

 private:
  dist::DistWorker worker_;
  int listener_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

#endif  // __unix__ || __APPLE__

}  // namespace

int main(int argc, char** argv) {
  ExperimentEnv env("Scale-tier benchmark: perf-smoke instance suite");
  env.flags.AddString("tier", "S", "instance tier: S (20K), M (200K), "
                                   "L (1M) or XL (10M nodes)");
  env.flags.AddInt("dist_workers", 0,
                   "also time the distributed sharded solve against this "
                   "many in-process dist-worker servers (0 = skip; the XL "
                   "tier requires >= 1 and runs distributed-only)");
  env.flags.AddBool(
      "full_seed", false,
      "run the solve/lazy and solve/dist* cases with an exhaustive CELF "
      "seed (seed_heap_capacity = n, the classic exact first pass) "
      "instead of the bound-ordered capped default — the configuration "
      "the nightly distributed perf gate compares under, where seeding "
      "work dominates and sharding it across workers pays");
  AddBenchFlags(&env.flags, /*default_reps=*/3, /*default_warmup=*/1);
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  auto tier = ParseScaleTierName(env.flags.GetString("tier"));
  if (!tier.ok()) {
    std::fprintf(stderr, "%s\n", tier.status().ToString().c_str());
    return 1;
  }
  const ScaleTierSpec& spec = GetScaleTierSpec(*tier);
  const bool xl = *tier == ScaleTier::kXL;
  const int64_t dist_workers = env.flags.GetInt("dist_workers");
  if (dist_workers < 0) {
    std::fprintf(stderr, "--dist_workers must be >= 0\n");
    return 1;
  }
  if (xl && dist_workers < 1) {
    std::fprintf(stderr,
                 "tier XL is distributed-only: pass --dist_workers>=1\n");
    return 1;
  }
  size_t threads = env.threads > 1
                       ? env.threads
                       : std::max(1u, std::thread::hardware_concurrency());

  auto config =
      BenchConfigFromFlags(env.flags, "scale_tier", env.seed);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  BenchRunner runner(*config);

  PrintExperimentHeader(
      env, "scale_tier",
      std::string("tier ") + spec.name + " (n=" + FormatCount(spec.num_nodes) +
          ", k=" + FormatCount(spec.solve_k) + ", " +
          std::to_string(threads) + " worker thread(s)" +
          (dist_workers > 0
               ? ", " + std::to_string(dist_workers) + " dist worker(s)"
               : "") +
          ")");

  // The solve cases reuse one generated graph; the generate case rebuilds
  // per repetition because construction is exactly what it measures.
  std::unique_ptr<PreferenceGraph> graph;

  BenchCase generate;
  generate.name = std::string("generate/") + spec.name;
  generate.profile = "PE";
  generate.solver = "synth";
  generate.n = spec.num_nodes;
  generate.run = [&](BenchRecorder* recorder) -> Status {
    auto g = GenerateScaleTierGraph(*tier, env.seed);
    if (!g.ok()) return g.status();
    recorder->Record("edges", static_cast<double>(g->NumEdges()));
    recorder->Record("max_in_degree",
                     static_cast<double>(g->MaxInDegree()));
    graph = std::make_unique<PreferenceGraph>(std::move(*g));
    return Status::OK();
  };
  st = runner.Run(generate);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  ThreadPool pool(threads);
  if (!xl) {
    BenchCase solve;
    solve.name = std::string("solve/lazy_parallel/") + spec.name;
    solve.profile = "PE";
    solve.variant = "independent";
    solve.solver = "lazy_parallel";
    solve.n = spec.num_nodes;
    solve.k = spec.solve_k;
    solve.threads = threads;
    solve.run = [&](BenchRecorder* recorder) -> Status {
      auto sol = SolveGreedyLazyParallel(*graph, spec.solve_k, &pool);
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->cover);
      recorder->Record("gain_evaluations",
                       static_cast<double>(sol->stats.gain_evaluations));
      recorder->Record("heap_pops",
                       static_cast<double>(sol->stats.heap_pops));
      recorder->Record("stale_refreshes",
                       static_cast<double>(sol->stats.stale_refreshes));
      return Status::OK();
    };
    st = runner.Run(solve);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
  }

  if (dist_workers > 0) {
#if defined(__unix__) || defined(__APPLE__)
    GreedyOptions solve_options;
    if (env.flags.GetBool("full_seed")) {
      solve_options.seed_heap_capacity = spec.num_nodes;
    }
    if (!xl) {
      // The perf gate's single-process baseline: one thread, same kernel
      // tier as the distributed case below (both inherit any
      // PREFCOVER_SIMD_LEVEL pin), so the nightly ratio isolates the
      // sharding + wire overhead against exactly one process's work.
      BenchCase lazy;
      lazy.name = std::string("solve/lazy/") + spec.name;
      lazy.profile = "PE";
      lazy.variant = "independent";
      lazy.solver = "lazy";
      lazy.n = spec.num_nodes;
      lazy.k = spec.solve_k;
      lazy.threads = 1;
      lazy.run = [&](BenchRecorder* recorder) -> Status {
        auto sol = SolveGreedyLazy(*graph, spec.solve_k, solve_options);
        if (!sol.ok()) return sol.status();
        recorder->Record("cover", sol->cover);
        recorder->Record("gain_evaluations",
                         static_cast<double>(sol->stats.gain_evaluations));
        return Status::OK();
      };
      st = runner.Run(lazy);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }

    // Workers persist across repetitions (state-per-process, like the
    // real fleet); every repetition re-seats a fresh solve via `init`.
    std::vector<std::unique_ptr<WorkerServer>> servers;
    dist::DistSolveOptions dist_options;
    for (int64_t i = 0; i < dist_workers; ++i) {
      servers.push_back(std::make_unique<WorkerServer>(graph.get()));
      if (servers.back()->port() == 0) {
        std::fprintf(stderr, "failed to start in-process dist worker\n");
        return 1;
      }
      dist::DistWorkerEndpoint endpoint;
      endpoint.port = servers.back()->port();
      dist_options.workers.push_back(endpoint);
    }
    // Long init replays never happen here (fresh solves), but the XL
    // init builds a 10M-entry CoverState per worker — give it room.
    dist_options.client.request_timeout_ms = 60'000;
    ThreadPool fan_out(static_cast<size_t>(dist_workers));
    dist_options.pool = &fan_out;

    BenchCase dist;
    dist.name = std::string("solve/dist") + std::to_string(dist_workers) +
                "/" + spec.name;
    dist.profile = "PE";
    dist.variant = "independent";
    dist.solver = "dist";
    dist.n = spec.num_nodes;
    dist.k = spec.solve_k;
    dist.threads = static_cast<size_t>(dist_workers);
    dist.run = [&](BenchRecorder* recorder) -> Status {
      auto sol = dist::SolveGreedyDistributed(
          *graph, spec.solve_k, solve_options, dist_options);
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->cover);
      return Status::OK();
    };
    st = runner.Run(dist);
    if (!st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
#else
    std::fprintf(stderr,
                 "--dist_workers requires a POSIX platform (serve "
                 "transport)\n");
    return 1;
#endif
  }

  env.Emit(runner.SummaryTable(),
           std::string("Scale tier ") + spec.name);
  st = MaybeWriteBenchJson(runner, env.flags);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
