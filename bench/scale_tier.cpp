// Scale-tier benchmark: the pinned large-instance suite behind the
// nightly perf-smoke job. Generates the tier's Zipf-skewed PE-shaped
// graph (S=20K, M=200K, L=1M nodes) and times graph generation plus the
// batched-CELF lazy-parallel solve at the tier's pinned budget (k=100),
// emitting the machine-readable BENCH_core.json trajectory record.
//
// Usage: scale_tier [--tier=S|M|L] [--threads=N] [--seed=S]
//                   [--reps=R] [--warmup=W] [--json=PATH] [--csv]

#include <cstdio>
#include <memory>
#include <thread>

#include "bench/bench_runner.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Scale-tier benchmark: perf-smoke instance suite");
  env.flags.AddString("tier", "S", "instance tier: S (20K), M (200K) or "
                                   "L (1M nodes)");
  AddBenchFlags(&env.flags, /*default_reps=*/3, /*default_warmup=*/1);
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  auto tier = ParseScaleTierName(env.flags.GetString("tier"));
  if (!tier.ok()) {
    std::fprintf(stderr, "%s\n", tier.status().ToString().c_str());
    return 1;
  }
  const ScaleTierSpec& spec = GetScaleTierSpec(*tier);
  size_t threads = env.threads > 1
                       ? env.threads
                       : std::max(1u, std::thread::hardware_concurrency());

  auto config =
      BenchConfigFromFlags(env.flags, "scale_tier", env.seed);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  BenchRunner runner(*config);

  PrintExperimentHeader(
      env, "scale_tier",
      std::string("tier ") + spec.name + " (n=" + FormatCount(spec.num_nodes) +
          ", k=" + FormatCount(spec.solve_k) + ", " +
          std::to_string(threads) + " worker thread(s))");

  // The solve cases reuse one generated graph; the generate case rebuilds
  // per repetition because construction is exactly what it measures.
  std::unique_ptr<PreferenceGraph> graph;

  BenchCase generate;
  generate.name = std::string("generate/") + spec.name;
  generate.profile = "PE";
  generate.solver = "synth";
  generate.n = spec.num_nodes;
  generate.run = [&](BenchRecorder* recorder) -> Status {
    auto g = GenerateScaleTierGraph(*tier, env.seed);
    if (!g.ok()) return g.status();
    recorder->Record("edges", static_cast<double>(g->NumEdges()));
    recorder->Record("max_in_degree",
                     static_cast<double>(g->MaxInDegree()));
    graph = std::make_unique<PreferenceGraph>(std::move(*g));
    return Status::OK();
  };
  st = runner.Run(generate);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  ThreadPool pool(threads);
  BenchCase solve;
  solve.name = std::string("solve/lazy_parallel/") + spec.name;
  solve.profile = "PE";
  solve.variant = "independent";
  solve.solver = "lazy_parallel";
  solve.n = spec.num_nodes;
  solve.k = spec.solve_k;
  solve.threads = threads;
  solve.run = [&](BenchRecorder* recorder) -> Status {
    auto sol = SolveGreedyLazyParallel(*graph, spec.solve_k, &pool);
    if (!sol.ok()) return sol.status();
    recorder->Record("cover", sol->cover);
    recorder->Record("gain_evaluations",
                     static_cast<double>(sol->stats.gain_evaluations));
    recorder->Record("heap_pops",
                     static_cast<double>(sol->stats.heap_pops));
    recorder->Record("stale_refreshes",
                     static_cast<double>(sol->stats.stale_refreshes));
    return Status::OK();
  };
  st = runner.Run(solve);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }

  env.Emit(runner.SummaryTable(),
           std::string("Scale tier ") + spec.name);
  st = MaybeWriteBenchJson(runner, env.flags);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
