// Table 1: approximation ratios of the greedy algorithm for VC_k (and thus
// NPC_k) across k/n ranges, plus the best-known SDP/LP bounds the paper
// cites for context. The second part measures the ratios greedy actually
// achieves against the brute-force optimum on small random instances —
// the empirical counterpart the paper reports as "very close to optimal".
//
// Usage: table1_approx_ratios [--csv] [--seed=N] [--n=14] [--trials=5]

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>

#include "core/brute_force_solver.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "graph/graph_generators.h"
#include "util/random.h"

using namespace prefcover;

namespace {

// Best-known approximation factors from Table 1 of the paper (SDP-based,
// not implemented here — the paper argues they do not scale; shown for
// reference).
double BestKnownFactor(double ratio) {
  if (ratio < 0.39) return 0.92;   // [19]; o(1) range has 0.75+eps [11]
  if (ratio < 0.72) return 0.92;   // [19]
  if (ratio < 0.74) return 0.93;   // [17]
  double r = 1.0 - (1.0 - ratio) * (1.0 - ratio);
  return r;  // greedy itself is best known for k/n >= 0.74 [11]
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentEnv env("Table 1: greedy approximation guarantees for NPC_k");
  env.flags.AddInt("n", 14, "instance size for the empirical part");
  env.flags.AddInt("trials", 5, "random instances per k");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  PrintExperimentHeader(env, "Table 1",
                        "greedy approximation ratios by k/n range");

  {
    TablePrinter table({"k/n", "Greedy guarantee (NPC_k)",
                        "Greedy guarantee (IPC_k)", "Best known (NPC_k)"});
    for (double ratio : {0.05, 0.2, 0.39, 0.5, 0.6, 0.72, 0.74, 0.8, 0.9}) {
      size_t n = 10000;
      size_t k = static_cast<size_t>(ratio * static_cast<double>(n));
      table.AddRow({TablePrinter::Fixed(ratio, 2),
                    TablePrinter::Fixed(GreedyApproximationGuarantee(
                                            Variant::kNormalized, k, n),
                                        4),
                    TablePrinter::Fixed(GreedyApproximationGuarantee(
                                            Variant::kIndependent, k, n),
                                        4),
                    TablePrinter::Fixed(BestKnownFactor(ratio), 4)});
    }
    env.Emit(table, "Theoretical guarantees (paper Table 1)");
  }

  {
    const uint32_t n = static_cast<uint32_t>(env.flags.GetInt("n"));
    const int trials = static_cast<int>(env.flags.GetInt("trials"));
    TablePrinter table({"variant", "k", "k/n", "worst ratio", "mean ratio",
                        "guarantee"});
    Rng rng(env.seed);
    for (Variant variant : {Variant::kNormalized, Variant::kIndependent}) {
      for (size_t k = 2; k < n; k += std::max<size_t>(1, n / 5)) {
        double worst = 1.0, sum = 0.0;
        for (int t = 0; t < trials; ++t) {
          UniformGraphParams params;
          params.num_nodes = n;
          params.out_degree = 3;
          params.normalized_out_weights = variant == Variant::kNormalized;
          auto g = GenerateUniformGraph(params, &rng);
          if (!g.ok()) {
            std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
            return 1;
          }
          GreedyOptions greedy_options;
          greedy_options.variant = variant;
          auto greedy = SolveGreedy(*g, k, greedy_options);
          BruteForceOptions bf_options;
          bf_options.variant = variant;
          auto optimal = SolveBruteForce(*g, k, bf_options);
          if (!greedy.ok() || !optimal.ok()) {
            std::fprintf(stderr, "solver failure\n");
            return 1;
          }
          double ratio = optimal->cover > 0.0
                             ? greedy->cover / optimal->cover
                             : 1.0;
          worst = std::min(worst, ratio);
          sum += ratio;
        }
        double ratio_kn = static_cast<double>(k) / static_cast<double>(n);
        table.AddRow(
            {std::string(VariantName(variant)), std::to_string(k),
             TablePrinter::Fixed(ratio_kn, 2),
             TablePrinter::Fixed(worst, 4),
             TablePrinter::Fixed(sum / trials, 4),
             TablePrinter::Fixed(
                 GreedyApproximationGuarantee(variant, k, n), 4)});
      }
    }
    env.Emit(table,
             "Empirical greedy/optimal ratios on random instances (n=" +
                 std::to_string(n) + ")");
  }
  return 0;
}
