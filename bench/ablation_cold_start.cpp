// Ablation: cold-start value of the similarity prior (paper footnote 4).
//
// At each clickstream volume, solve on (a) the behavioral graph alone,
// (b) the attribute-similarity prior alone, and (c) their blend, and score
// every solution on the ground-truth graph.
//
// Measured finding (see EXPERIMENTS.md): even a few hundred sessions give
// the behavioral graph accurate node weights, which dominate solution
// quality; the attribute prior's uninformed acceptance guesses cost more
// than its extra edge coverage buys. This quantifies why the paper treats
// semantic similarity as a possible refinement rather than a primary
// source (footnote 4) — the prior is a fallback for items with *zero*
// behavioral signal, not a substitute for behavioral data.
//
// Usage: ablation_cold_start [--csv] [--items=300] [--alpha=0.5]

#include <cstdio>
#include <iostream>

#include "clickstream/graph_construction.h"
#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/session_generator.h"
#include "synth/similarity_graph.h"
#include "util/timer.h"

using namespace prefcover;

namespace {

Result<double> SolutionQualityOnTruth(const PreferenceGraph& solve_on,
                                      const PreferenceGraph& truth,
                                      size_t k) {
  PREFCOVER_ASSIGN_OR_RETURN(Solution sol, SolveGreedyLazy(solve_on, k));
  return EvaluateCover(truth, sol.items, Variant::kIndependent);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentEnv env("Ablation: similarity prior at cold start");
  env.flags.AddInt("items", 300, "catalog size");
  env.flags.AddDouble("alpha", 0.5, "blend weight of the behavioral graph");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t items = static_cast<uint32_t>(env.flags.GetInt("items"));
  const double alpha = env.flags.GetDouble("alpha");
  PrintExperimentHeader(env, "Ablation A6",
                        "behavioral vs similarity-prior vs blended graphs");

  Rng rng(env.seed);
  CatalogParams cparams;
  cparams.num_items = items;
  cparams.num_categories = std::max(1u, items / 30);
  auto catalog = Catalog::Generate(cparams, &rng);
  if (!catalog.ok()) return 1;
  PreferenceModelParams mparams;
  mparams.popularity_skew = 0.7;
  auto model = PreferenceModel::Build(&*catalog, mparams, &rng);
  if (!model.ok()) return 1;
  const PreferenceGraph& truth = model->graph();
  const size_t k = items / 10;
  auto ceiling = SolveGreedyLazy(truth, k);
  if (!ceiling.ok()) return 1;

  TablePrinter table({"sessions", "behavioral only", "prior only",
                      "blended", "truth ceiling"});
  for (uint64_t sessions :
       {500ULL, 2'000ULL, 10'000ULL, 50'000ULL, 250'000ULL}) {
    Rng srng(env.seed + sessions);
    SessionGeneratorParams sparams;
    sparams.num_sessions = sessions;
    auto cs = GenerateSessions(*model, sparams, &srng);
    if (!cs.ok()) return 1;
    auto behavioral = BuildPreferenceGraph(*cs);
    if (!behavioral.ok()) return 1;
    std::vector<double> weights(behavioral->NodeWeights().begin(),
                                behavioral->NodeWeights().end());
    auto prior = BuildSimilarityGraph(*catalog, weights);
    if (!prior.ok()) return 1;
    auto blended = BlendPreferenceGraphs(*behavioral, *prior, alpha);
    if (!blended.ok()) return 1;

    auto q_behavioral = SolutionQualityOnTruth(*behavioral, truth, k);
    auto q_prior = SolutionQualityOnTruth(*prior, truth, k);
    auto q_blended = SolutionQualityOnTruth(*blended, truth, k);
    if (!q_behavioral.ok() || !q_prior.ok() || !q_blended.ok()) return 1;
    table.AddRow({FormatCount(sessions),
                  TablePrinter::Percent(*q_behavioral, 2),
                  TablePrinter::Percent(*q_prior, 2),
                  TablePrinter::Percent(*q_blended, 2),
                  TablePrinter::Percent(ceiling->cover, 2)});
  }
  env.Emit(table,
           "Solution quality on the TRUE graph, by graph solved on "
           "(alpha=" + TablePrinter::Fixed(alpha, 2) + ")");
  return 0;
}
