// Ablation: the dwell-time corrective factor (paper Section 5.2: clicks
// overestimate purchase intent; "normalizing the edge weights by a
// corrective factor ... considering the amount of time spent viewing each
// item").
//
// Sweeps the idle-browsing intensity (noise clicks per buying session) and
// compares reconstruction without vs with the correction, measured by (a)
// the weight mass on spurious edges and (b) greedy-solution quality scored
// on the true graph.
//
// Usage: ablation_dwell_correction [--csv] [--items=300] [--sessions=60000]

#include <cstdio>
#include <iostream>

#include "clickstream/graph_construction.h"
#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/session_generator.h"
#include "util/timer.h"

using namespace prefcover;

namespace {

double SpuriousEdgeMass(const PreferenceGraph& reconstructed,
                        const PreferenceGraph& truth) {
  double mass = 0.0;
  for (NodeId v = 0; v < reconstructed.NumNodes(); ++v) {
    AdjacencyView out = reconstructed.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      if (!truth.HasEdge(v, out.nodes[i])) mass += out.weights[i];
    }
  }
  return mass;
}

Result<double> QualityOnTruth(const PreferenceGraph& solve_on,
                              const PreferenceGraph& truth, size_t k) {
  PREFCOVER_ASSIGN_OR_RETURN(Solution sol, SolveGreedyLazy(solve_on, k));
  return EvaluateCover(truth, sol.items, Variant::kIndependent);
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentEnv env("Ablation: dwell-time corrective factor");
  env.flags.AddInt("items", 300, "catalog size");
  env.flags.AddInt("sessions", 60000, "buying sessions");
  env.flags.AddDouble("saturation", 10.0,
                      "dwell saturation tau (click counts min(1, d/tau))");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t items = static_cast<uint32_t>(env.flags.GetInt("items"));
  PrintExperimentHeader(env, "Ablation A7",
                        "click-only vs dwell-corrected construction");

  Rng rng(env.seed);
  CatalogParams cparams;
  cparams.num_items = items;
  cparams.num_categories = std::max(1u, items / 30);
  auto catalog = Catalog::Generate(cparams, &rng);
  if (!catalog.ok()) return 1;
  PreferenceModelParams mparams;
  mparams.popularity_skew = 0.7;
  auto model = PreferenceModel::Build(&*catalog, mparams, &rng);
  if (!model.ok()) return 1;
  const PreferenceGraph& truth = model->graph();
  const size_t k = items / 10;

  TablePrinter table({"noise clicks/session", "spurious mass (plain)",
                      "spurious mass (dwell)", "quality on truth (plain)",
                      "quality on truth (dwell)"});
  for (double noise : {0.0, 1.0, 2.0, 4.0, 8.0}) {
    Rng srng(env.seed + static_cast<uint64_t>(noise * 10));
    SessionGeneratorParams sparams;
    sparams.num_sessions =
        static_cast<uint64_t>(env.flags.GetInt("sessions"));
    sparams.emit_dwell_times = true;
    sparams.noise_clicks_mean = noise;
    auto cs = GenerateSessions(*model, sparams, &srng);
    if (!cs.ok()) return 1;

    GraphConstructionOptions plain_options;
    GraphConstructionOptions dwell_options;
    dwell_options.dwell_saturation_seconds =
        env.flags.GetDouble("saturation");
    auto g_plain = BuildPreferenceGraph(*cs, plain_options);
    auto g_dwell = BuildPreferenceGraph(*cs, dwell_options);
    if (!g_plain.ok() || !g_dwell.ok()) return 1;

    auto q_plain = QualityOnTruth(*g_plain, truth, k);
    auto q_dwell = QualityOnTruth(*g_dwell, truth, k);
    if (!q_plain.ok() || !q_dwell.ok()) return 1;

    table.AddRow({TablePrinter::Fixed(noise, 1),
                  TablePrinter::Fixed(SpuriousEdgeMass(*g_plain, truth), 2),
                  TablePrinter::Fixed(SpuriousEdgeMass(*g_dwell, truth), 2),
                  TablePrinter::Percent(*q_plain, 2),
                  TablePrinter::Percent(*q_dwell, 2)});
  }
  env.Emit(table,
           "Noise robustness of construction (tau=" +
               TablePrinter::Fixed(env.flags.GetDouble("saturation"), 0) +
               "s)");
  return 0;
}
