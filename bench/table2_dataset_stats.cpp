// Table 2: the evaluation datasets. Generates the four synthetic profiles
// (PE, PF, PM, YC) at --scale and reports their session / purchase / item
// / edge counts next to the paper's full-scale targets, plus the
// variant-fit diagnostics of Section 5.2 (the >= 90% single-alternative
// rule and the < 0.1 NMI independence rule) that drive variant selection.
//
// Usage: table2_dataset_stats [--csv] [--scale=0.005] [--seed=N]

#include <cstdio>
#include <iostream>

#include "clickstream/graph_construction.h"
#include "clickstream/variant_selection.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Table 2: dataset statistics and variant fit");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const double scale = env.ScaleOr(0.005);
  PrintExperimentHeader(env, "Table 2",
                        "synthetic dataset profiles at scale " +
                            TablePrinter::Fixed(scale, 4));

  TablePrinter table({"DS", "Sessions", "Purchases", "Items", "Edges",
                      "paper Items@1.0", "paper Edges@1.0", "<=1-alt share",
                      "NMI", "variant"});
  for (DatasetProfile profile :
       {DatasetProfile::kPE, DatasetProfile::kPF, DatasetProfile::kPM,
        DatasetProfile::kYC}) {
    const ProfileSpec& spec = GetProfileSpec(profile);
    auto cs = GenerateProfileClickstream(profile, scale, env.seed);
    if (!cs.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name,
                   cs.status().ToString().c_str());
      return 1;
    }
    ClickstreamStats stats = cs->ComputeStats();
    VariantRecommendation rec = RecommendVariant(*cs);

    GraphConstructionOptions gopt;
    gopt.variant = rec.variant;
    auto graph = BuildPreferenceGraph(*cs, gopt);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s: %s\n", spec.name,
                   graph.status().ToString().c_str());
      return 1;
    }
    table.AddRow({spec.name, FormatCount(stats.num_sessions),
                  FormatCount(stats.num_purchases),
                  FormatCount(stats.num_items),
                  FormatCount(graph->NumEdges()), FormatCount(spec.items),
                  FormatCount(spec.edges),
                  TablePrinter::Percent(stats.at_most_one_alternative_share),
                  TablePrinter::Fixed(rec.independence, 3),
                  std::string(VariantName(rec.variant))});
  }
  env.Emit(table, "Datasets (synthetic stand-ins for paper Table 2)");
  if (!env.csv) {
    std::printf(
        "\nExpected per the paper: PE/PF/YC fit the Independent variant "
        "(NMI < 0.1);\nPM fits the Normalized variant (>= 90%% of sessions "
        "imply at most one\nalternative).\n");
  }
  return 0;
}
