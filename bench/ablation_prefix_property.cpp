// Ablation: the incremental-prefix property of Section 3.2 — one run with
// k = n answers every budget k' and every coverage threshold at once.
// Compares (a) solving each budget from scratch vs reading prefixes of a
// single full run, asserting identical answers, and (b) the direct
// threshold solver vs binary-search-style re-solving.
//
// Usage: ablation_prefix_property [--csv] [--scale=0.02]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/complementary_solver.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Ablation: ordered-prefix reuse vs re-solving");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  PrintExperimentHeader(env, "Ablation A3",
                        "one k=n run answers all budgets");

  auto graph = GenerateProfileGraph(DatasetProfile::kYC, env.ScaleOr(0.05),
                                    env.seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const size_t n = graph->NumNodes();
  std::vector<size_t> budgets;
  for (double f : {0.02, 0.05, 0.1, 0.2, 0.3, 0.5}) {
    budgets.push_back(static_cast<size_t>(f * static_cast<double>(n)));
  }

  // One full ordered run.
  Stopwatch full_timer;
  auto full = SolveGreedyLazy(*graph, n);
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }
  double full_seconds = full_timer.ElapsedSeconds();

  // Re-solving each budget from scratch.
  Stopwatch rerun_timer;
  bool all_equal = true;
  for (size_t k : budgets) {
    auto sol = SolveGreedyLazy(*graph, k);
    if (!sol.ok()) {
      std::fprintf(stderr, "%s\n", sol.status().ToString().c_str());
      return 1;
    }
    if (sol->items != full->PrefixItems(k)) all_equal = false;
  }
  double rerun_seconds = rerun_timer.ElapsedSeconds();

  TablePrinter table({"strategy", "budgets answered", "time",
                      "answers identical"});
  table.AddRow({"one k=n run, read prefixes",
                std::to_string(budgets.size()),
                FormatDuration(full_seconds), "-"});
  table.AddRow({"re-solve per budget", std::to_string(budgets.size()),
                FormatDuration(rerun_seconds), all_equal ? "yes" : "NO"});
  env.Emit(table, "Budget sweep strategies");
  if (!all_equal) {
    std::fprintf(stderr, "FATAL: prefix property violated — bug\n");
    return 1;
  }

  // Threshold side: direct early-stop vs prefix lookup.
  TablePrinter tt({"threshold", "direct size", "prefix size", "equal"});
  for (double threshold : {0.5, 0.7, 0.9}) {
    auto direct = SolveCoverageThreshold(
        *graph, threshold, Variant::kIndependent,
        ThresholdAlgorithm::kGreedy);
    if (!direct.ok()) {
      std::fprintf(stderr, "%s\n", direct.status().ToString().c_str());
      return 1;
    }
    size_t via_prefix = full->SmallestPrefixReaching(threshold);
    tt.AddRow({TablePrinter::Fixed(threshold, 1),
               std::to_string(direct->set_size),
               std::to_string(via_prefix),
               direct->set_size == via_prefix ? "yes" : "NO"});
  }
  env.Emit(tt, "Threshold answers from the same ordered run");
  return 0;
}
