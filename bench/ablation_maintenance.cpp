// Ablation: incremental maintenance policies under catalog churn.
//
// Replays the same churn trace against three policies and reports the
// cost/quality trade-off:
//   always-resolve — full greedy re-solve on every change (quality
//                    ceiling, maximum cost);
//   drift-2%       — the maintainer's default: evaluate, repair, re-solve
//                    only past the tolerance;
//   never-resolve  — repairs only (cost floor, quality decays).
//
// Usage: ablation_maintenance [--csv] [--items=1500] [--k=150] [--steps=80]

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/greedy_solver.h"
#include "core/inventory_maintainer.h"
#include "eval/experiment.h"
#include "util/random.h"
#include "util/timer.h"

using namespace prefcover;

namespace {

// One churn event; the same trace is replayed for every policy.
struct ChurnEvent {
  enum class Kind { kWeight, kEdge, kRemove } kind;
  StableId a = 0, b = 0;
  double value = 0.0;
};

DynamicPreferenceGraph BuildCatalog(uint32_t items, Rng* rng,
                                    std::vector<StableId>* ids) {
  DynamicPreferenceGraph g;
  for (uint32_t i = 0; i < items; ++i) {
    ids->push_back(g.AddItem(rng->NextDouble(0.05, 5.0)));
  }
  for (uint32_t i = 0; i < items; ++i) {
    uint32_t degree = 2 + static_cast<uint32_t>(rng->NextBounded(5));
    for (uint32_t d = 0; d < degree; ++d) {
      StableId to = (*ids)[rng->NextBounded(items)];
      if (to == (*ids)[i]) continue;
      (void)g.UpsertEdge((*ids)[i], to, rng->NextDouble(0.1, 0.9));
    }
  }
  return g;
}

std::vector<ChurnEvent> MakeTrace(uint32_t items, int steps, Rng* rng) {
  std::vector<ChurnEvent> trace;
  for (int s = 0; s < steps; ++s) {
    ChurnEvent event;
    uint64_t pick = rng->NextBounded(100);
    event.a = static_cast<StableId>(rng->NextBounded(items));
    if (pick < 70) {
      event.kind = ChurnEvent::Kind::kWeight;
      event.value = rng->NextDouble(0.05, 5.0);
    } else if (pick < 92) {
      event.kind = ChurnEvent::Kind::kEdge;
      event.b = static_cast<StableId>(rng->NextBounded(items));
      event.value = rng->NextDouble(0.1, 0.9);
    } else {
      event.kind = ChurnEvent::Kind::kRemove;
    }
    trace.push_back(event);
  }
  return trace;
}

void ApplyEvent(DynamicPreferenceGraph* g, const ChurnEvent& event,
                uint32_t min_items) {
  switch (event.kind) {
    case ChurnEvent::Kind::kWeight:
      if (g->HasItem(event.a)) (void)g->SetItemWeight(event.a, event.value);
      break;
    case ChurnEvent::Kind::kEdge:
      if (g->HasItem(event.a) && g->HasItem(event.b) &&
          event.a != event.b) {
        (void)g->UpsertEdge(event.a, event.b, event.value);
      }
      break;
    case ChurnEvent::Kind::kRemove:
      if (g->HasItem(event.a) && g->NumItems() > min_items) {
        (void)g->RemoveItem(event.a);
      }
      break;
  }
}

double FreshCover(const DynamicPreferenceGraph& g, size_t k) {
  auto snap = g.Snapshot();
  if (!snap.ok()) return 0.0;
  auto sol = SolveGreedyLazy(*snap, std::min(k, snap->NumNodes()));
  return sol.ok() ? sol->cover : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentEnv env("Ablation: maintenance policies under churn");
  env.flags.AddInt("items", 1500, "initial catalog size");
  env.flags.AddInt("k", 150, "retained-set size");
  env.flags.AddInt("steps", 80, "churn events");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const uint32_t items = static_cast<uint32_t>(env.flags.GetInt("items"));
  const size_t k = static_cast<size_t>(env.flags.GetInt("k"));
  const int steps = static_cast<int>(env.flags.GetInt("steps"));
  PrintExperimentHeader(env, "Ablation A4",
                        "maintenance policy trade-off (" +
                            std::to_string(steps) + " churn events)");

  struct Policy {
    const char* name;
    double tolerance;
    uint64_t force_every;
  };
  const Policy policies[] = {
      {"always-resolve", -1.0, 1},  // tolerance < 0 => every change
      {"drift-2%", 0.02, 0},
      {"never-resolve", 2.0, 0},  // tolerance > 1 => never
  };

  TablePrinter table({"policy", "full resolves", "repairs",
                      "final cover", "fresh-solve cover", "gap",
                      "maintenance time"});
  for (const Policy& policy : policies) {
    Rng rng(env.seed);  // identical catalog and trace per policy
    std::vector<StableId> ids;
    DynamicPreferenceGraph catalog = BuildCatalog(items, &rng, &ids);
    std::vector<ChurnEvent> trace = MakeTrace(items, steps, &rng);

    MaintainerOptions options;
    options.k = k;
    options.resolve_drift_tolerance = policy.tolerance;
    options.force_resolve_every = policy.force_every;
    InventoryMaintainer maintainer(&catalog, options);

    Stopwatch timer;
    Status maintain_status = maintainer.Maintain().status();
    for (const ChurnEvent& event : trace) {
      if (!maintain_status.ok()) break;
      ApplyEvent(&catalog, event, items / 2);
      maintain_status = maintainer.Maintain().status();
    }
    double seconds = timer.ElapsedSeconds();
    if (!maintain_status.ok()) {
      std::fprintf(stderr, "%s: %s\n", policy.name,
                   maintain_status.ToString().c_str());
      return 1;
    }
    double fresh = FreshCover(catalog, k);
    table.AddRow({policy.name,
                  std::to_string(maintainer.full_resolves()),
                  std::to_string(maintainer.repairs()),
                  TablePrinter::Percent(maintainer.current_cover(), 3),
                  TablePrinter::Percent(fresh, 3),
                  TablePrinter::Percent(fresh - maintainer.current_cover(),
                                        3),
                  FormatDuration(seconds)});
  }
  env.Emit(table, "Same churn trace, three reaction policies");
  return 0;
}
