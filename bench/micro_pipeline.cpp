// Google-benchmark microbenchmarks for the data pipeline: session
// generation, graph construction, variant-selection measures, clickstream
// CSV I/O and graph serialization.

#include <sstream>

#include <benchmark/benchmark.h>

#include "clickstream/clickstream_io.h"
#include "clickstream/graph_construction.h"
#include "clickstream/variant_selection.h"
#include "graph/graph_io.h"
#include "synth/dataset_profiles.h"
#include "synth/session_generator.h"
#include "util/random.h"

namespace prefcover {
namespace {

// Shared fixtures, built once.
struct PipelineFixture {
  Catalog catalog;
  PreferenceModel model;
  Clickstream clickstream;

  static PipelineFixture& Get() {
    static PipelineFixture* fixture = [] {
      auto* f = new PipelineFixture();
      Rng rng(42);
      CatalogParams cparams;
      cparams.num_items = 2000;
      cparams.num_categories = 50;
      f->catalog = std::move(Catalog::Generate(cparams, &rng)).value();
      PreferenceModelParams mparams;
      f->model = std::move(
          PreferenceModel::Build(&f->catalog, mparams, &rng)).value();
      SessionGeneratorParams sparams;
      sparams.num_sessions = 100'000;
      f->clickstream =
          std::move(GenerateSessions(f->model, sparams, &rng)).value();
      return f;
    }();
    return *fixture;
  }
};

void BM_SessionGeneration(benchmark::State& state) {
  PipelineFixture& fixture = PipelineFixture::Get();
  Rng rng(7);
  SessionGeneratorParams params;
  params.num_sessions = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    auto cs = GenerateSessions(fixture.model, params, &rng);
    PREFCOVER_CHECK(cs.ok());
    benchmark::DoNotOptimize(cs->NumSessions());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SessionGeneration)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_GraphConstruction(benchmark::State& state) {
  PipelineFixture& fixture = PipelineFixture::Get();
  for (auto _ : state) {
    auto graph = BuildPreferenceGraph(fixture.clickstream);
    PREFCOVER_CHECK(graph.ok());
    benchmark::DoNotOptimize(graph->NumEdges());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<int64_t>(fixture.clickstream.NumSessions()));
}
BENCHMARK(BM_GraphConstruction)->Unit(benchmark::kMillisecond);

void BM_NormalizedFitShare(benchmark::State& state) {
  PipelineFixture& fixture = PipelineFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(NormalizedFitShare(fixture.clickstream));
  }
}
BENCHMARK(BM_NormalizedFitShare)->Unit(benchmark::kMillisecond);

void BM_IndependenceMeasure(benchmark::State& state) {
  PipelineFixture& fixture = PipelineFixture::Get();
  for (auto _ : state) {
    benchmark::DoNotOptimize(IndependenceMeasure(fixture.clickstream));
  }
}
BENCHMARK(BM_IndependenceMeasure)->Unit(benchmark::kMillisecond);

void BM_ClickstreamCsvWrite(benchmark::State& state) {
  PipelineFixture& fixture = PipelineFixture::Get();
  for (auto _ : state) {
    std::ostringstream out;
    PREFCOVER_CHECK(WriteClickstreamCsv(fixture.clickstream, &out).ok());
    benchmark::DoNotOptimize(out.str().size());
  }
}
BENCHMARK(BM_ClickstreamCsvWrite)->Unit(benchmark::kMillisecond);

void BM_ClickstreamCsvRead(benchmark::State& state) {
  PipelineFixture& fixture = PipelineFixture::Get();
  std::ostringstream out;
  PREFCOVER_CHECK(WriteClickstreamCsv(fixture.clickstream, &out).ok());
  std::string payload = out.str();
  for (auto _ : state) {
    std::istringstream in(payload);
    auto cs = ReadClickstreamCsv(&in);
    PREFCOVER_CHECK(cs.ok());
    benchmark::DoNotOptimize(cs->NumSessions());
  }
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(payload.size()));
}
BENCHMARK(BM_ClickstreamCsvRead)->Unit(benchmark::kMillisecond);

void BM_GraphBinaryRoundTrip(benchmark::State& state) {
  auto graph = GenerateProfileGraphWithNodes(
      DatasetProfile::kPE, static_cast<uint32_t>(state.range(0)), 42);
  PREFCOVER_CHECK(graph.ok());
  for (auto _ : state) {
    std::stringstream buf;
    PREFCOVER_CHECK(WriteGraphBinary(*graph, &buf).ok());
    auto read = ReadGraphBinary(&buf);
    PREFCOVER_CHECK(read.ok());
    benchmark::DoNotOptimize(read->NumEdges());
  }
}
BENCHMARK(BM_GraphBinaryRoundTrip)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefcover

BENCHMARK_MAIN();
