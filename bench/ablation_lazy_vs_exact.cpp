// Ablation: the three executions of Algorithm 1 — plain scan, parallel
// scan, lazy (CELF) — produce identical solutions (asserted here at
// runtime); what differs is wall time. This quantifies the design choice
// DESIGN.md calls out: CELF is what makes paper-scale n feasible on
// modest hardware.
//
// Usage: ablation_lazy_vs_exact [--csv] [--threads=N]

#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Ablation: plain vs parallel vs lazy greedy");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  PrintExperimentHeader(env, "Ablation A1",
                        "identical output, different wall time");

  TablePrinter table({"n", "k", "plain", "parallel", "lazy",
                      "lazy speedup", "outputs equal"});
  struct Case {
    uint32_t n;
    size_t k;
  };
  for (Case c : {Case{2000, 100}, Case{10000, 500}, Case{40000, 1000}}) {
    auto graph = GenerateProfileGraphWithNodes(DatasetProfile::kPE, c.n,
                                               env.seed);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    auto plain = SolveGreedy(*graph, c.k);
    ThreadPool pool(env.threads == 1 ? ThreadPool::DefaultThreadCount()
                                     : env.threads);
    auto parallel = SolveGreedyParallel(*graph, c.k, &pool);
    auto lazy = SolveGreedyLazy(*graph, c.k);
    if (!plain.ok() || !parallel.ok() || !lazy.ok()) {
      std::fprintf(stderr, "solver failure at n=%u\n", c.n);
      return 1;
    }
    bool equal =
        plain->items == parallel->items && plain->items == lazy->items;
    if (!equal) {
      std::fprintf(stderr,
                   "FATAL: executions disagree at n=%u — this is a bug\n",
                   c.n);
      return 1;
    }
    table.AddRow({FormatCount(c.n), FormatCount(c.k),
                  FormatDuration(plain->solve_seconds),
                  FormatDuration(parallel->solve_seconds),
                  FormatDuration(lazy->solve_seconds),
                  TablePrinter::Fixed(
                      lazy->solve_seconds > 0
                          ? plain->solve_seconds / lazy->solve_seconds
                          : 0.0,
                      1),
                  equal ? "yes" : "NO"});
  }
  env.Emit(table, "Execution strategies of Algorithm 1");
  return 0;
}
