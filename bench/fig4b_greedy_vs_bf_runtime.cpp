// Figure 4b: running time of Greedy vs BF (log scale in the paper),
// Normalized variant, k = n/2 — demonstrating that brute force explodes
// combinatorially while greedy stays in microseconds, i.e. approximation
// is necessary.
//
// Default sweep stops at n=24 (~2.7M subsets); --full extends toward the
// paper's n=30 (hours of CPU — the point of the figure).
//
// Usage: fig4b_greedy_vs_bf_runtime [--csv] [--full]

#include <cstdio>
#include <iostream>

#include "core/brute_force_solver.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "graph/graph_transforms.h"
#include "synth/dataset_profiles.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env(
      "Figure 4b: Greedy vs BF running time (Normalized variant)");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  const size_t max_n = env.scale == 1.0 ? 30 : 24;
  PrintExperimentHeader(env, "Figure 4b",
                        "runtime of Greedy vs BF, k = n/2, Normalized");

  auto full = GenerateProfileGraph(DatasetProfile::kYC, 0.01, env.seed);
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"n", "k", "subsets", "BF time", "Greedy time",
                      "BF/Greedy"});
  for (size_t n = 16; n <= max_n; n += 2) {
    auto subgraph = TopWeightSubgraph(*full, n);
    if (!subgraph.ok()) {
      std::fprintf(stderr, "%s\n", subgraph.status().ToString().c_str());
      return 1;
    }
    // Clamp out-weight sums to 1: YC is Independent-shaped and this
    // experiment runs the Normalized variant.
    auto graph = ClampOutWeights(*subgraph);
    if (!graph.ok()) {
      std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
      return 1;
    }
    const size_t k = n / 2;
    BruteForceOptions bf_options;
    bf_options.variant = Variant::kNormalized;
    bf_options.max_subsets = 0;  // the runtime is the experiment
    auto optimal = SolveBruteForce(*graph, k, bf_options);
    GreedyOptions greedy_options;
    greedy_options.variant = Variant::kNormalized;
    auto greedy = SolveGreedy(*graph, k, greedy_options);
    if (!optimal.ok() || !greedy.ok()) {
      std::fprintf(stderr, "solver failure at n=%zu\n", n);
      return 1;
    }
    table.AddRow(
        {std::to_string(n), std::to_string(k),
         FormatCount(BinomialCoefficient(n, k)),
         FormatDuration(optimal->solve_seconds),
         FormatDuration(greedy->solve_seconds),
         TablePrinter::Scientific(
             greedy->solve_seconds > 0
                 ? optimal->solve_seconds / greedy->solve_seconds
                 : 0.0,
             1)});
  }
  env.Emit(table, "Runtime comparison (paper shows this in log scale)");
  return 0;
}
