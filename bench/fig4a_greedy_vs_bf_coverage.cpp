// Figure 4a: coverage of Greedy vs the brute-force optimum on a small
// subset of the YC dataset (the paper reduces YC to 30 products; brute
// force is only feasible at that scale). Expectation: greedy is visually
// indistinguishable from optimal across k.
//
// Default n is 20 so the full k sweep stays fast on one core; --full uses
// the paper's n=30 (with the k sweep capped where C(n,k) explodes).
//
// Usage: fig4a_greedy_vs_bf_coverage [--csv] [--n=20] [--full]

#include <cstdio>
#include <iostream>

#include "core/brute_force_solver.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "graph/graph_transforms.h"
#include "synth/dataset_profiles.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Figure 4a: Greedy vs BF coverage on a small YC subset");
  env.flags.AddInt("n", 20, "subset size (paper: 30)");
  env.flags.AddInt("max-subsets", 50'000'000,
                   "skip k values whose C(n,k) exceeds this");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  size_t n = static_cast<size_t>(env.flags.GetInt("n"));
  if (env.scale == 1.0) n = 30;  // --full: the paper's subset size
  const uint64_t max_subsets =
      static_cast<uint64_t>(env.flags.GetInt("max-subsets"));

  PrintExperimentHeader(
      env, "Figure 4a",
      "coverage of Greedy vs optimal (BF), YC subset n=" +
          std::to_string(n));

  // The paper reduces YC to its 30 most relevant products; we mirror that
  // by taking the top-weight subgraph of a YC-profile graph.
  auto full = GenerateProfileGraph(DatasetProfile::kYC, 0.01, env.seed);
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }
  auto subgraph = TopWeightSubgraph(*full, n);
  if (!subgraph.ok()) {
    std::fprintf(stderr, "%s\n", subgraph.status().ToString().c_str());
    return 1;
  }
  // YC is an Independent-variant dataset; its out-weight sums can exceed
  // 1, which the Normalized cover semantics forbids, so the Normalized
  // runs use the proportionally clamped graph.
  auto clamped = ClampOutWeights(*subgraph);
  if (!clamped.ok()) {
    std::fprintf(stderr, "%s\n", clamped.status().ToString().c_str());
    return 1;
  }

  for (Variant variant : {Variant::kNormalized, Variant::kIndependent}) {
    const PreferenceGraph* graph =
        variant == Variant::kNormalized ? &*clamped : &*subgraph;
    TablePrinter table({"k", "BF (optimal)", "Greedy", "ratio"});
    for (size_t k = 2; k < n; k += 2) {
      if (BinomialCoefficient(n, k) > max_subsets) continue;
      BruteForceOptions bf_options;
      bf_options.variant = variant;
      bf_options.max_subsets = max_subsets;
      auto optimal = SolveBruteForce(*graph, k, bf_options);
      GreedyOptions greedy_options;
      greedy_options.variant = variant;
      auto greedy = SolveGreedy(*graph, k, greedy_options);
      if (!optimal.ok() || !greedy.ok()) {
        std::fprintf(stderr, "solver failure at k=%zu\n", k);
        return 1;
      }
      table.AddRow({std::to_string(k),
                    TablePrinter::Percent(optimal->cover, 2),
                    TablePrinter::Percent(greedy->cover, 2),
                    TablePrinter::Fixed(
                        optimal->cover > 0
                            ? greedy->cover / optimal->cover
                            : 1.0,
                        4)});
    }
    env.Emit(table, std::string("Variant: ") +
                        std::string(VariantName(variant)));
  }
  return 0;
}
