// Figure 4e: parallelizability of Greedy — wall time of the per-iteration
// candidate scan on a fixed PE-shaped graph as the worker count sweeps
// {1, 4, 8, 16, 32}. The paper reports ~20x at 32 cores on its server.
//
// NOTE: speedup is bounded by the machine's physical cores; on a 1-core
// host every row measures the same serial execution plus pool overhead
// (recorded as such in EXPERIMENTS.md). The sweep still exercises the
// partitioning and reduction logic at every width.
//
// Usage: fig4e_parallel_speedup [--csv] [--n=20000] [--k=500]

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>

#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Figure 4e: parallel speedup of Greedy");
  env.flags.AddInt("n", 20000, "graph size");
  env.flags.AddInt("k", 500, "budget");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  uint32_t n = static_cast<uint32_t>(env.flags.GetInt("n"));
  size_t k = static_cast<size_t>(env.flags.GetInt("k"));
  if (env.scale == 1.0) {
    n = 100'000;  // --full: a heavier fixed instance
    k = 2'000;
  }
  PrintExperimentHeader(
      env, "Figure 4e",
      "parallel greedy wall time vs worker count (n=" + FormatCount(n) +
          ", k=" + FormatCount(k) + "); this host has " +
          std::to_string(std::thread::hardware_concurrency()) +
          " hardware thread(s)");

  auto graph = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n,
                                             env.seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  // Both parallel executions at every width, with the solver telemetry
  // that makes the lazy pruning visible: the lazy-parallel path must
  // evaluate strictly fewer gains than the exhaustive parallel scan.
  TablePrinter table({"algorithm", "workers", "time", "speedup vs 1",
                      "cover", "gain evals", "stale %", "pool util %"});
  double parallel_base = 0.0, lazy_base = 0.0;
  uint64_t parallel_gain_evals = 0, lazy_parallel_gain_evals = 0;
  for (size_t workers : {1u, 4u, 8u, 16u, 32u}) {
    ThreadPool pool(workers);
    auto parallel = SolveGreedyParallel(*graph, k, &pool);
    auto lazy_parallel = SolveGreedyLazyParallel(*graph, k, &pool);
    if (!parallel.ok() || !lazy_parallel.ok()) {
      std::fprintf(stderr, "%s\n",
                   (!parallel.ok() ? parallel : lazy_parallel)
                       .status()
                       .ToString()
                       .c_str());
      return 1;
    }
    if (workers == 1) {
      parallel_base = parallel->solve_seconds;
      lazy_base = lazy_parallel->solve_seconds;
    }
    parallel_gain_evals = parallel->stats.gain_evaluations;
    lazy_parallel_gain_evals = lazy_parallel->stats.gain_evaluations;
    for (const Solution* sol : {&*parallel, &*lazy_parallel}) {
      double base =
          sol == &*parallel ? parallel_base : lazy_base;
      table.AddRow({sol->algorithm, std::to_string(workers),
                    FormatDuration(sol->solve_seconds),
                    TablePrinter::Fixed(
                        sol->solve_seconds > 0
                            ? base / sol->solve_seconds
                            : 0.0,
                        2),
                    TablePrinter::Percent(sol->cover, 2),
                    FormatCount(sol->stats.gain_evaluations),
                    TablePrinter::Percent(sol->stats.StaleRatio(), 1),
                    TablePrinter::Percent(sol->stats.PoolUtilization(), 0)});
    }
  }
  env.Emit(table, "Parallel scan speedup");
  std::printf("\nlazy pruning: %s gain evaluations vs %s for the "
              "exhaustive parallel scan (%.1fx fewer)\n",
              FormatCount(lazy_parallel_gain_evals).c_str(),
              FormatCount(parallel_gain_evals).c_str(),
              lazy_parallel_gain_evals > 0
                  ? static_cast<double>(parallel_gain_evals) /
                        static_cast<double>(lazy_parallel_gain_evals)
                  : 0.0);
  return 0;
}
