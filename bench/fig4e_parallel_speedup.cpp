// Figure 4e: parallelizability of Greedy — wall time of the per-iteration
// candidate scan on a fixed PE-shaped graph as the worker count sweeps
// {1, 4, 8, 16, 32}. The paper reports ~20x at 32 cores on its server.
//
// NOTE: speedup is bounded by the machine's physical cores; on a 1-core
// host every row measures the same serial execution plus pool overhead
// (recorded as such in EXPERIMENTS.md). The sweep still exercises the
// partitioning and reduction logic at every width.
//
// Usage: fig4e_parallel_speedup [--csv] [--n=20000] [--k=500]

#include <cstdio>
#include <iostream>
#include <thread>

#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Figure 4e: parallel speedup of Greedy");
  env.flags.AddInt("n", 20000, "graph size");
  env.flags.AddInt("k", 500, "budget");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  uint32_t n = static_cast<uint32_t>(env.flags.GetInt("n"));
  size_t k = static_cast<size_t>(env.flags.GetInt("k"));
  if (env.scale == 1.0) {
    n = 100'000;  // --full: a heavier fixed instance
    k = 2'000;
  }
  PrintExperimentHeader(
      env, "Figure 4e",
      "parallel greedy wall time vs worker count (n=" + FormatCount(n) +
          ", k=" + FormatCount(k) + "); this host has " +
          std::to_string(std::thread::hardware_concurrency()) +
          " hardware thread(s)");

  auto graph = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n,
                                             env.seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"workers", "time", "speedup vs 1", "cover"});
  double base_seconds = 0.0;
  for (size_t workers : {1u, 4u, 8u, 16u, 32u}) {
    ThreadPool pool(workers);
    auto sol = SolveGreedyParallel(*graph, k, &pool);
    if (!sol.ok()) {
      std::fprintf(stderr, "%s\n", sol.status().ToString().c_str());
      return 1;
    }
    if (workers == 1) base_seconds = sol->solve_seconds;
    table.AddRow({std::to_string(workers),
                  FormatDuration(sol->solve_seconds),
                  TablePrinter::Fixed(
                      sol->solve_seconds > 0
                          ? base_seconds / sol->solve_seconds
                          : 0.0,
                      2),
                  TablePrinter::Percent(sol->cover, 2)});
  }
  env.Emit(table, "Parallel scan speedup");
  return 0;
}
