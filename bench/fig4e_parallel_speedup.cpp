// Figure 4e: parallelizability of Greedy — wall time of the per-iteration
// candidate scan on a fixed PE-shaped graph as the worker count sweeps
// {1, 4, 8, 16, 32}. The paper reports ~20x at 32 cores on its server.
//
// NOTE: speedup is bounded by the machine's physical cores; on a 1-core
// host every row measures the same serial execution plus pool overhead
// (recorded as such in EXPERIMENTS.md). The sweep still exercises the
// partitioning and reduction logic at every width.
//
// Runs on the BenchRunner harness: every (algorithm, width) pair is a
// BenchCase, so --json emits the machine-readable BENCH_core.json record
// that bench_compare diffs across commits.
//
// Usage: fig4e_parallel_speedup [--csv] [--n=20000] [--k=500]
//                               [--reps=R] [--warmup=W] [--json=PATH]

#include <cstdint>
#include <cstdio>
#include <iostream>
#include <thread>

#include "bench/bench_runner.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "synth/dataset_profiles.h"
#include "util/thread_pool.h"
#include "util/timer.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Figure 4e: parallel speedup of Greedy");
  env.flags.AddInt("n", 20000, "graph size");
  env.flags.AddInt("k", 500, "budget");
  AddBenchFlags(&env.flags, /*default_reps=*/2, /*default_warmup=*/0);
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  uint32_t n = static_cast<uint32_t>(env.flags.GetInt("n"));
  size_t k = static_cast<size_t>(env.flags.GetInt("k"));
  if (env.scale == 1.0) {
    n = 100'000;  // --full: a heavier fixed instance
    k = 2'000;
  }
  PrintExperimentHeader(
      env, "Figure 4e",
      "parallel greedy wall time vs worker count (n=" + FormatCount(n) +
          ", k=" + FormatCount(k) + "); this host has " +
          std::to_string(std::thread::hardware_concurrency()) +
          " hardware thread(s)");

  auto graph = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n,
                                             env.seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  auto config =
      BenchConfigFromFlags(env.flags, "fig4e_parallel_speedup", env.seed);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  BenchRunner runner(*config);

  // Both parallel executions at every width, with the solver telemetry
  // that makes the lazy pruning visible: the lazy-parallel path must
  // evaluate strictly fewer gains than the exhaustive parallel scan.
  struct Algo {
    const char* id;
    Result<Solution> (*solve)(const PreferenceGraph&, size_t, ThreadPool*,
                              const GreedyOptions&);
  };
  const Algo algos[] = {{"parallel", &SolveGreedyParallel},
                        {"lazy_parallel", &SolveGreedyLazyParallel}};
  for (size_t workers : {1u, 4u, 8u, 16u, 32u}) {
    ThreadPool pool(workers);
    for (const Algo& algo : algos) {
      BenchCase bench_case;
      bench_case.name =
          std::string("solve/") + algo.id + "/w" + std::to_string(workers);
      bench_case.profile = "PE";
      bench_case.variant = "independent";
      bench_case.solver = algo.id;
      bench_case.n = n;
      bench_case.k = k;
      bench_case.threads = workers;
      bench_case.run = [&graph, &pool, &algo,
                        k](BenchRecorder* recorder) -> Status {
        auto sol = algo.solve(*graph, k, &pool, GreedyOptions());
        if (!sol.ok()) return sol.status();
        recorder->Record("cover", sol->cover);
        recorder->Record("gain_evaluations",
                         static_cast<double>(sol->stats.gain_evaluations));
        recorder->Record("stale_ratio", sol->stats.StaleRatio());
        recorder->Record("pool_utilization", sol->stats.PoolUtilization());
        return Status::OK();
      };
      st = runner.Run(bench_case);
      if (!st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
    }
  }

  // Paper-style table, rendered from the harness percentiles so the text
  // output and the JSON record never disagree.
  auto counter = [](const BenchResult& r, const char* name) {
    for (const auto& [key, value] : r.counters) {
      if (key == name) return value;
    }
    return 0.0;
  };
  TablePrinter table({"algorithm", "workers", "p50 time", "speedup vs 1",
                      "cover", "gain evals", "stale %", "pool util %"});
  double base_p50[2] = {0.0, 0.0};
  uint64_t gain_evals[2] = {0, 0};
  for (const BenchResult& r : runner.results()) {
    size_t algo_index = r.solver == "parallel" ? 0 : 1;
    if (r.threads == 1) base_p50[algo_index] = r.wall.p50_ms;
    gain_evals[algo_index] =
        static_cast<uint64_t>(counter(r, "gain_evaluations"));
    table.AddRow(
        {r.solver, std::to_string(r.threads),
         FormatDuration(r.wall.p50_ms * 1e-3),
         TablePrinter::Fixed(
             r.wall.p50_ms > 0 ? base_p50[algo_index] / r.wall.p50_ms : 0.0,
             2),
         TablePrinter::Percent(counter(r, "cover"), 2),
         FormatCount(static_cast<uint64_t>(counter(r, "gain_evaluations"))),
         TablePrinter::Percent(counter(r, "stale_ratio"), 1),
         TablePrinter::Percent(counter(r, "pool_utilization"), 0)});
  }
  env.Emit(table, "Parallel scan speedup");
  std::printf("\nlazy pruning: %s gain evaluations vs %s for the "
              "exhaustive parallel scan (%.1fx fewer)\n",
              FormatCount(gain_evals[1]).c_str(),
              FormatCount(gain_evals[0]).c_str(),
              gain_evals[1] > 0 ? static_cast<double>(gain_evals[0]) /
                                      static_cast<double>(gain_evals[1])
                                : 0.0);
  st = MaybeWriteBenchJson(runner, env.flags);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
