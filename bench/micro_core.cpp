// Microbenchmarks for the hot paths: gain evaluation, node insertion,
// exact cover evaluation, graph finalization, and the full greedy family,
// across graph sizes — on the BenchRunner harness, so `--json` emits the
// machine-readable BENCH_core.json record the perf trajectory tracks.
//
// Sub-millisecond operations run a fixed internal batch per repetition;
// the batch size is recorded in the "items" counter so per-op cost is
// derivable (p50_ms / items).
//
// Usage: micro_core [--csv] [--seed=S] [--reps=R] [--warmup=W]
//                   [--json=PATH]

#include <cstdint>
#include <cstdio>
#include <memory>
#include <tuple>
#include <vector>

#include "bench/bench_runner.h"
#include "core/constrained_solver.h"
#include "core/cover_function.h"
#include "core/cover_state.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/query_engine.h"
#include "serve/serving_index.h"
#include "synth/dataset_profiles.h"
#include "util/cancellation.h"
#include "util/random.h"
#include "util/thread_pool.h"

using namespace prefcover;

namespace {

PreferenceGraph MakeGraph(uint32_t n, bool normalized, uint64_t seed) {
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = n;
  params.out_degree = 5;
  params.normalized_out_weights = normalized;
  auto g = GenerateUniformGraph(params, &rng);
  PREFCOVER_CHECK(g.ok());
  return std::move(g).value();
}

// Repeated single-gain probes against a partially-covered state.
BenchCase GainCase(const PreferenceGraph& g, Variant variant,
                   std::shared_ptr<CoverState> state, uint32_t n) {
  constexpr uint64_t kProbes = 1'000'000;
  BenchCase bench_case;
  bench_case.name = std::string("gain/") + std::string(VariantName(variant)) +
                    "/n" + std::to_string(n);
  bench_case.profile = "uniform";
  bench_case.variant = VariantName(variant);
  bench_case.solver = "gain_of";
  bench_case.n = n;
  bench_case.run = [&g, state](BenchRecorder* recorder) -> Status {
    NodeId probe = static_cast<NodeId>(g.NumNodes() - 1);
    double sink = 0.0;
    for (uint64_t i = 0; i < kProbes; ++i) sink += state->GainOf(probe);
    recorder->Record("items", static_cast<double>(kProbes));
    recorder->Record("gain_sum", sink);
    return Status::OK();
  };
  return bench_case;
}

}  // namespace

int main(int argc, char** argv) {
  ExperimentEnv env("micro_core: hot-path microbenchmarks");
  AddBenchFlags(&env.flags, /*default_reps=*/3, /*default_warmup=*/1);
  env.flags.AddDouble(
      "sample_metrics_s", 0.0,
      "run a background metrics sampler at this interval while the cases "
      "execute (0 = off); used by CI to bound sampler overhead");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  auto config = BenchConfigFromFlags(env.flags, "micro_core", env.seed);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  BenchRunner runner(*config);
  PrintExperimentHeader(env, "micro_core", "hot-path microbenchmarks");

  // Optional live sampler: the perf gates run with this on to prove that
  // a 1 Hz snapshot loop does not perturb the hot paths.
  std::unique_ptr<obs::MetricsSampler> sampler;
  const double sample_interval_s = env.flags.GetDouble("sample_metrics_s");
  if (sample_interval_s > 0.0) {
    obs::TimeseriesOptions sampler_options;
    sampler_options.interval_s = sample_interval_s;
    sampler = std::make_unique<obs::MetricsSampler>(
        &obs::MetricsRegistry::Global(), sampler_options);
    sampler->Start();
  }

  auto run_or_die = [&runner](const BenchCase& bench_case) {
    Status run_status = runner.Run(bench_case);
    if (!run_status.ok()) {
      std::fprintf(stderr, "%s\n", run_status.ToString().c_str());
      std::exit(1);
    }
  };

  // Gain evaluation, both variants, small and large graphs. The graphs and
  // cover states outlive the cases; the shared_ptr keeps the lambda valid.
  std::vector<PreferenceGraph> graphs;
  graphs.reserve(4);
  for (uint32_t n : {1'000u, 100'000u}) {
    for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
      graphs.push_back(
          MakeGraph(n, variant == Variant::kNormalized, env.seed));
      const PreferenceGraph& g = graphs.back();
      auto state = std::make_shared<CoverState>(&g, variant);
      for (NodeId v = 0; v < g.NumNodes() / 10; ++v) state->AddNode(v);
      run_or_die(GainCase(g, variant, state, n));
    }
  }

  // Kernel-level dispatch comparison: the same gain probe and AddNode
  // sweep pinned to each SimdLevel this process supports (scalar is the
  // oracle; word/avx2 are the overhauled paths). The per-level case
  // names make bench_compare surface the kernel speedup directly.
  {
    std::vector<SimdLevel> levels = {SimdLevel::kScalar, SimdLevel::kWord};
    if (MaxSupportedSimdLevel() == SimdLevel::kAvx2) {
      levels.push_back(SimdLevel::kAvx2);
    }
    const uint32_t n = 100'000;
    for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
      auto graph = std::make_shared<PreferenceGraph>(
          MakeGraph(n, variant == Variant::kNormalized, env.seed));
      for (SimdLevel level : levels) {
        auto state =
            std::make_shared<CoverState>(graph.get(), variant, level);
        for (NodeId v = 0; v < graph->NumNodes() / 10; ++v) {
          state->AddNode(v);
        }
        constexpr uint64_t kProbes = 1'000'000;
        BenchCase bench_case;
        bench_case.name = std::string("gain_kernel/") +
                          std::string(VariantName(variant)) + "/" +
                          std::string(SimdLevelName(level)) + "/n" +
                          std::to_string(n);
        bench_case.profile = "uniform";
        bench_case.variant = VariantName(variant);
        bench_case.solver = "gain_kernel";
        bench_case.n = n;
        bench_case.run = [graph, state](BenchRecorder* recorder) -> Status {
          NodeId probe = static_cast<NodeId>(graph->NumNodes() - 1);
          double sink = 0.0;
          for (uint64_t i = 0; i < kProbes; ++i) {
            sink += state->GainOf(probe);
          }
          recorder->Record("items", static_cast<double>(kProbes));
          recorder->Record("gain_sum", sink);
          return Status::OK();
        };
        run_or_die(bench_case);
      }
    }
    for (SimdLevel level : levels) {
      auto graph = std::make_shared<PreferenceGraph>(
          MakeGraph(n, false, env.seed));
      BenchCase bench_case;
      bench_case.name = std::string("add_node_kernel/") +
                        std::string(SimdLevelName(level)) + "/n" +
                        std::to_string(n);
      bench_case.profile = "uniform";
      bench_case.variant = "independent";
      bench_case.solver = "add_node_kernel";
      bench_case.n = n;
      bench_case.run = [graph, level](BenchRecorder* recorder) -> Status {
        CoverState state(graph.get(), Variant::kIndependent, level);
        for (NodeId v = 0; v < graph->NumNodes(); v += 7) {
          state.AddNode(v);
        }
        recorder->Record("items",
                         static_cast<double>(graph->NumNodes() / 7));
        recorder->Record("cover", state.cover());
        return Status::OK();
      };
      run_or_die(bench_case);
    }
  }

  // AddNode sweep: build up a cover state over every 7th node.
  for (uint32_t n : {1'000u, 100'000u}) {
    PreferenceGraph g = MakeGraph(n, false, env.seed);
    BenchCase bench_case;
    bench_case.name = "add_node_sweep/n" + std::to_string(n);
    bench_case.profile = "uniform";
    bench_case.variant = "independent";
    bench_case.solver = "add_node";
    bench_case.n = n;
    auto graph = std::make_shared<PreferenceGraph>(std::move(g));
    bench_case.run = [graph](BenchRecorder* recorder) -> Status {
      CoverState state(graph.get(), Variant::kIndependent);
      for (NodeId v = 0; v < graph->NumNodes(); v += 7) state.AddNode(v);
      recorder->Record("items",
                       static_cast<double>(graph->NumNodes() / 7));
      recorder->Record("cover", state.cover());
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // Exact cover evaluation over a fixed retained set.
  for (uint32_t n : {1'000u, 100'000u}) {
    auto graph =
        std::make_shared<PreferenceGraph>(MakeGraph(n, false, env.seed));
    auto retained = std::make_shared<Bitset>(graph->NumNodes());
    for (NodeId v = 0; v < graph->NumNodes(); v += 3) retained->Set(v);
    BenchCase bench_case;
    bench_case.name = "evaluate_cover_exact/n" + std::to_string(n);
    bench_case.profile = "uniform";
    bench_case.variant = "independent";
    bench_case.solver = "evaluate_cover";
    bench_case.n = n;
    bench_case.run = [graph, retained](BenchRecorder* recorder) -> Status {
      double cover =
          EvaluateCover(*graph, *retained, Variant::kIndependent);
      recorder->Record("cover", cover);
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // CSR finalization from a pre-drawn edge list.
  for (uint32_t n : {10'000u, 100'000u}) {
    auto edges = std::make_shared<
        std::vector<std::tuple<NodeId, NodeId, double>>>();
    Rng rng(env.seed ^ 7);
    for (uint32_t v = 0; v < n; ++v) {
      for (int e = 0; e < 5; ++e) {
        NodeId u = static_cast<NodeId>(rng.NextBounded(n));
        if (u == v) continue;
        edges->emplace_back(v, u, 0.5);
      }
    }
    BenchCase bench_case;
    bench_case.name = "graph_finalize/n" + std::to_string(n);
    bench_case.profile = "uniform";
    bench_case.solver = "finalize";
    bench_case.n = n;
    bench_case.run = [n, edges](BenchRecorder* recorder) -> Status {
      GraphBuilder builder;
      builder.Reserve(n, edges->size());
      builder.AddNodes(n);
      for (uint32_t v = 0; v < n; ++v) {
        PREFCOVER_RETURN_NOT_OK(builder.SetNodeWeight(v, 1.0 / n));
      }
      for (auto& [from, to, w] : *edges) {
        // Duplicate random edges are possible; only the success path is
        // interesting for timing, so tolerate either.
        std::ignore = builder.AddEdge(from, to, w);
      }
      GraphValidationOptions options;
      options.require_normalized_node_weights = false;
      auto g = builder.Finalize(options);
      recorder->Record("items", static_cast<double>(edges->size()));
      recorder->Record("finalize_ok", g.ok() ? 1.0 : 0.0);
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // The greedy family on PE-shaped graphs, k = n/20.
  for (uint32_t n : {10'000u, 50'000u}) {
    auto g = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n, env.seed);
    PREFCOVER_CHECK(g.ok());
    auto graph = std::make_shared<PreferenceGraph>(std::move(*g));
    const size_t k = n / 20;
    BenchCase bench_case;
    bench_case.name = "solve/lazy/n" + std::to_string(n);
    bench_case.profile = "PE";
    bench_case.variant = "independent";
    bench_case.solver = "lazy";
    bench_case.n = n;
    bench_case.k = k;
    bench_case.run = [graph, k](BenchRecorder* recorder) -> Status {
      auto sol = SolveGreedyLazy(*graph, k);
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->cover);
      recorder->Record("gain_evaluations",
                       static_cast<double>(sol->stats.gain_evaluations));
      recorder->Record("heap_pops",
                       static_cast<double>(sol->stats.heap_pops));
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // The constrained cost-ratio greedy at unit costs with no constraints:
  // selection-identical to solve/lazy/n10000, so the runtime ratio
  // between the two cases is the pure overhead of the constraint
  // plumbing (ratio heap entries, admissibility checks, budget
  // accounting). perf.yml gates it at <= 1.05x.
  {
    const uint32_t n = 10'000;
    auto g = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n, env.seed);
    PREFCOVER_CHECK(g.ok());
    auto graph = std::make_shared<PreferenceGraph>(std::move(*g));
    const size_t k = n / 20;
    BenchCase bench_case;
    bench_case.name = "solve/budget_greedy/n" + std::to_string(n);
    bench_case.profile = "PE";
    bench_case.variant = "independent";
    bench_case.solver = "constrained";
    bench_case.n = n;
    bench_case.k = k;
    bench_case.run = [graph, k](BenchRecorder* recorder) -> Status {
      ConstrainedCoverOptions options;
      options.max_items = k;
      auto sol = SolveConstrainedCover(*graph, ConstraintSpec(), options);
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->solution.cover);
      recorder->Record(
          "gain_evaluations",
          static_cast<double>(sol->solution.stats.gain_evaluations));
      recorder->Record("heap_pops",
                       static_cast<double>(sol->solution.stats.heap_pops));
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // The same lazy solve with an armed, never-firing deadline: the delta
  // against solve/lazy/n10000 is the cost of the per-round cancellation
  // check (one relaxed load + one steady_clock read), asserted < 1% in
  // review.
  {
    const uint32_t n = 10'000;
    auto g = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n, env.seed);
    PREFCOVER_CHECK(g.ok());
    auto graph = std::make_shared<PreferenceGraph>(std::move(*g));
    const size_t k = n / 20;
    BenchCase bench_case;
    bench_case.name = "solve/lazy_deadline/n" + std::to_string(n);
    bench_case.profile = "PE";
    bench_case.variant = "independent";
    bench_case.solver = "lazy_deadline";
    bench_case.n = n;
    bench_case.k = k;
    bench_case.run = [graph, k](BenchRecorder* recorder) -> Status {
      CancelToken cancel;
      cancel.SetTimeout(3600.0);  // armed but never fires
      GreedyOptions options;
      options.cancel = &cancel;
      auto sol = SolveGreedyLazy(*graph, k, options);
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->cover);
      recorder->Record("truncated", sol->stats.truncated ? 1.0 : 0.0);
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // Batched CELF across pool widths and batch sizes; the telemetry
  // counters expose how much work the pruning saves vs. the full O(nk)
  // scan.
  {
    struct ParallelConfig {
      uint32_t n;
      size_t workers;
      size_t batch;
    };
    for (const ParallelConfig& pc :
         {ParallelConfig{10'000, 1, 0}, ParallelConfig{10'000, 4, 0},
          ParallelConfig{10'000, 4, 4}, ParallelConfig{10'000, 4, 64},
          ParallelConfig{50'000, 4, 0}}) {
      auto g = GenerateProfileGraphWithNodes(DatasetProfile::kPE, pc.n,
                                             env.seed);
      PREFCOVER_CHECK(g.ok());
      auto graph = std::make_shared<PreferenceGraph>(std::move(*g));
      auto pool = std::make_shared<ThreadPool>(pc.workers);
      const size_t k = pc.n / 20;
      BenchCase bench_case;
      bench_case.name = "solve/lazy_parallel/n" + std::to_string(pc.n) +
                        "/w" + std::to_string(pc.workers) + "/b" +
                        std::to_string(pc.batch);
      bench_case.profile = "PE";
      bench_case.variant = "independent";
      bench_case.solver = "lazy_parallel";
      bench_case.n = pc.n;
      bench_case.k = k;
      bench_case.threads = pc.workers;
      bench_case.run = [graph, pool, k,
                        pc](BenchRecorder* recorder) -> Status {
        GreedyOptions options;
        options.batch_size = pc.batch;
        auto sol =
            SolveGreedyLazyParallel(*graph, k, pool.get(), options);
        if (!sol.ok()) return sol.status();
        recorder->Record("cover", sol->cover);
        recorder->Record("gain_evaluations",
                         static_cast<double>(sol->stats.gain_evaluations));
        recorder->Record("stale_ratio", sol->stats.StaleRatio());
        recorder->Record("pool_utilization",
                         sol->stats.PoolUtilization());
        return Status::OK();
      };
      run_or_die(bench_case);
    }
  }

  // Observability overhead. span_disabled measures the cost every
  // uninstrumented-feeling hot path actually pays (one relaxed load per
  // Span); span_enabled measures full recording (two clock reads plus a
  // ring append per span, args formatted). lazy_traced runs a whole solve
  // with tracing armed, to compare against solve/lazy/n10000 above.
  {
    constexpr uint64_t kSpans = 1'000'000;
    BenchCase disabled_case;
    disabled_case.name = "obs/span_disabled";
    disabled_case.profile = "uniform";
    disabled_case.solver = "span";
    disabled_case.run = [](BenchRecorder* recorder) -> Status {
      obs::Tracing::Stop();
      for (uint64_t i = 0; i < kSpans; ++i) {
        obs::Span span("bench.noop", "bench");
        span.Arg("i", i);
      }
      recorder->Record("items", static_cast<double>(kSpans));
      return Status::OK();
    };
    run_or_die(disabled_case);

    BenchCase enabled_case;
    enabled_case.name = "obs/span_enabled";
    enabled_case.profile = "uniform";
    enabled_case.solver = "span";
    enabled_case.run = [](BenchRecorder* recorder) -> Status {
      // A small ring keeps the memory bill flat; overwriting the oldest
      // event costs the same as appending.
      obs::TracingOptions options;
      options.ring_capacity = 4096;
      obs::Tracing::Start(options);
      for (uint64_t i = 0; i < kSpans; ++i) {
        obs::Span span("bench.noop", "bench");
        span.Arg("i", i);
      }
      obs::Tracing::Stop();
      recorder->Record("items", static_cast<double>(kSpans));
      recorder->Record("dropped",
                       static_cast<double>(obs::Tracing::DroppedEvents()));
      return Status::OK();
    };
    run_or_die(enabled_case);
  }

  {
    const uint32_t n = 10'000;
    auto g = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n, env.seed);
    PREFCOVER_CHECK(g.ok());
    auto graph = std::make_shared<PreferenceGraph>(std::move(*g));
    const size_t k = n / 20;
    BenchCase bench_case;
    bench_case.name = "solve/lazy_traced/n" + std::to_string(n);
    bench_case.profile = "PE";
    bench_case.variant = "independent";
    bench_case.solver = "lazy_traced";
    bench_case.n = n;
    bench_case.k = k;
    bench_case.run = [graph, k](BenchRecorder* recorder) -> Status {
      obs::Tracing::Start();
      auto sol = SolveGreedyLazy(*graph, k);
      obs::Tracing::Stop();
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->cover);
      recorder->Record("gain_evaluations",
                       static_cast<double>(sol->stats.gain_evaluations));
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // The literal O(nkD) loop, as the pruning reference point.
  for (uint32_t n : {2'000u, 10'000u}) {
    auto g = GenerateProfileGraphWithNodes(DatasetProfile::kPE, n, env.seed);
    PREFCOVER_CHECK(g.ok());
    auto graph = std::make_shared<PreferenceGraph>(std::move(*g));
    const size_t k = n / 20;
    BenchCase bench_case;
    bench_case.name = "solve/plain/n" + std::to_string(n);
    bench_case.profile = "PE";
    bench_case.variant = "independent";
    bench_case.solver = "plain";
    bench_case.n = n;
    bench_case.k = k;
    bench_case.run = [graph, k](BenchRecorder* recorder) -> Status {
      auto sol = SolveGreedy(*graph, k);
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->cover);
      recorder->Record("gain_evaluations",
                       static_cast<double>(sol->stats.gain_evaluations));
      return Status::OK();
    };
    run_or_die(bench_case);
  }

  // Serving hot path: sequential SubmitAndWait through the full engine
  // (queue, dispatcher, cache) against a prebuilt index. Sequential
  // submission keeps the cache traffic deterministic: misses = distinct
  // subs keys, everything else hits.
  {
    const uint32_t n = 10'000;
    auto graph =
        std::make_shared<PreferenceGraph>(MakeGraph(n, false, env.seed));
    auto sol = SolveGreedyLazy(*graph, n / 20);
    PREFCOVER_CHECK(sol.ok());
    auto built = serve::ServingIndex::Build(*graph, *sol);
    PREFCOVER_CHECK(built.ok());
    auto index =
        std::make_shared<const serve::ServingIndex>(std::move(*built));
    BenchCase bench_case;
    bench_case.name = "serve/query_engine/n" + std::to_string(n);
    bench_case.profile = "uniform";
    bench_case.variant = "independent";
    bench_case.solver = "query_engine";
    bench_case.n = n;
    bench_case.run = [index, n](BenchRecorder* recorder) -> Status {
      constexpr uint64_t kQueries = 10'000;
      serve::QueryEngineOptions options;
      options.batch_window_us = 0;  // latency mode: no fill wait
      serve::QueryEngine engine(index, options);
      uint64_t ok_count = 0;
      for (uint64_t i = 0; i < kQueries; ++i) {
        serve::Request request;
        if (i % 4 == 0) {
          request.type = serve::QueryType::kCovered;
          request.v = static_cast<NodeId>((i * 7) % n);
        } else {
          request.type = serve::QueryType::kSubstitutes;
          request.v = static_cast<NodeId>((i * 13) % 512);  // cacheable set
          request.top_j = 4;
        }
        if (engine.SubmitAndWait(request).status.ok()) ++ok_count;
      }
      serve::QueryEngineStats stats = engine.Stats();
      recorder->Record("items", static_cast<double>(kQueries));
      recorder->Record("ok", static_cast<double>(ok_count));
      recorder->Record("cache_hits", static_cast<double>(stats.cache_hits));
      recorder->Record("cache_misses",
                       static_cast<double>(stats.cache_misses));
      return Status::OK();
    };
    run_or_die(bench_case);

    // Same stream with every fault-tolerance feature ARMED but idle:
    // per-request deadlines (EWMA shed math runs at every admission),
    // brownout watermark set but never reached. perf.yml gates this
    // case against the plain sibling above at <= 1.05x — the price of
    // the robustness rails on a healthy server.
    BenchCase ft_case;
    ft_case.name = "serve/query_engine_ft/n" + std::to_string(n);
    ft_case.profile = "uniform";
    ft_case.variant = "independent";
    ft_case.solver = "query_engine_ft";
    ft_case.n = n;
    ft_case.run = [index, n](BenchRecorder* recorder) -> Status {
      constexpr uint64_t kQueries = 10'000;
      serve::QueryEngineOptions options;
      options.batch_window_us = 0;
      options.default_deadline_us = 10'000'000;  // 10s: armed, never hit
      options.deadline_shed = true;
      options.brownout_watermark = 1'000'000;  // armed, never reached
      serve::QueryEngine engine(index, options);
      uint64_t ok_count = 0;
      for (uint64_t i = 0; i < kQueries; ++i) {
        serve::Request request;
        if (i % 4 == 0) {
          request.type = serve::QueryType::kCovered;
          request.v = static_cast<NodeId>((i * 7) % n);
        } else {
          request.type = serve::QueryType::kSubstitutes;
          request.v = static_cast<NodeId>((i * 13) % 512);
          request.top_j = 4;
        }
        if (engine.SubmitAndWait(request).status.ok()) ++ok_count;
      }
      serve::QueryEngineStats stats = engine.Stats();
      recorder->Record("items", static_cast<double>(kQueries));
      recorder->Record("ok", static_cast<double>(ok_count));
      recorder->Record("deadline_shed",
                       static_cast<double>(stats.deadline_shed));
      recorder->Record("brownouts",
                       static_cast<double>(stats.brownouts));
      return Status::OK();
    };
    run_or_die(ft_case);
  }

  if (sampler != nullptr) {
    sampler->Stop();
    std::fprintf(stderr, "metrics sampler: %zu sample(s) at %.3gs\n",
                 sampler->SampleCount(), sample_interval_s);
  }

  env.Emit(runner.SummaryTable(), "micro_core hot paths");
  st = MaybeWriteBenchJson(runner, env.flags);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
