// Google-benchmark microbenchmarks for the hot paths: gain evaluation,
// node insertion, exact cover evaluation, graph finalization, and the
// full lazy greedy, across graph sizes.

#include <cstdint>

#include <benchmark/benchmark.h>

#include "core/cover_function.h"
#include "core/cover_state.h"
#include "core/greedy_solver.h"
#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "synth/dataset_profiles.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

PreferenceGraph MakeGraph(uint32_t n, bool normalized) {
  Rng rng(42);
  UniformGraphParams params;
  params.num_nodes = n;
  params.out_degree = 5;
  params.normalized_out_weights = normalized;
  auto g = GenerateUniformGraph(params, &rng);
  PREFCOVER_CHECK(g.ok());
  return std::move(g).value();
}

void BM_GainIndependent(benchmark::State& state) {
  PreferenceGraph g =
      MakeGraph(static_cast<uint32_t>(state.range(0)), false);
  CoverState cover_state(&g, Variant::kIndependent);
  for (NodeId v = 0; v < g.NumNodes() / 10; ++v) cover_state.AddNode(v);
  NodeId probe = static_cast<NodeId>(g.NumNodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover_state.GainOf(probe));
  }
}
BENCHMARK(BM_GainIndependent)->Arg(1000)->Arg(100000);

void BM_GainNormalized(benchmark::State& state) {
  PreferenceGraph g = MakeGraph(static_cast<uint32_t>(state.range(0)), true);
  CoverState cover_state(&g, Variant::kNormalized);
  for (NodeId v = 0; v < g.NumNodes() / 10; ++v) cover_state.AddNode(v);
  NodeId probe = static_cast<NodeId>(g.NumNodes() - 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cover_state.GainOf(probe));
  }
}
BENCHMARK(BM_GainNormalized)->Arg(1000)->Arg(100000);

void BM_AddNodeSweep(benchmark::State& state) {
  PreferenceGraph g =
      MakeGraph(static_cast<uint32_t>(state.range(0)), false);
  for (auto _ : state) {
    CoverState cover_state(&g, Variant::kIndependent);
    for (NodeId v = 0; v < g.NumNodes(); v += 7) cover_state.AddNode(v);
    benchmark::DoNotOptimize(cover_state.cover());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(g.NumNodes() / 7));
}
BENCHMARK(BM_AddNodeSweep)->Arg(1000)->Arg(100000);

void BM_EvaluateCoverExact(benchmark::State& state) {
  PreferenceGraph g =
      MakeGraph(static_cast<uint32_t>(state.range(0)), false);
  Bitset retained(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); v += 3) retained.Set(v);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EvaluateCover(g, retained, Variant::kIndependent));
  }
}
BENCHMARK(BM_EvaluateCoverExact)->Arg(1000)->Arg(100000);

void BM_GraphFinalize(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(7);
  // Pre-draw the edge list so only Finalize is measured per iteration.
  std::vector<std::tuple<NodeId, NodeId, double>> edges;
  for (uint32_t v = 0; v < n; ++v) {
    for (int e = 0; e < 5; ++e) {
      NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v) continue;
      edges.emplace_back(v, u, 0.5);
    }
  }
  for (auto _ : state) {
    GraphBuilder builder;
    builder.Reserve(n, edges.size());
    builder.AddNodes(n);
    for (uint32_t v = 0; v < n; ++v) {
      PREFCOVER_CHECK(builder.SetNodeWeight(v, 1.0 / n).ok());
    }
    for (auto& [from, to, w] : edges) {
      benchmark::DoNotOptimize(builder.AddEdge(from, to, w));
    }
    GraphValidationOptions options;
    options.require_normalized_node_weights = false;
    auto g = builder.Finalize(options);
    // Duplicate random edges are possible; only the success path is
    // interesting for timing, so tolerate either.
    benchmark::DoNotOptimize(g.ok());
  }
}
BENCHMARK(BM_GraphFinalize)->Arg(10000)->Arg(100000);

void BM_LazyGreedy(benchmark::State& state) {
  auto g = GenerateProfileGraphWithNodes(
      DatasetProfile::kPE, static_cast<uint32_t>(state.range(0)), 42);
  PREFCOVER_CHECK(g.ok());
  const size_t k = static_cast<size_t>(state.range(0)) / 20;
  uint64_t gain_evals = 0, heap_pops = 0;
  for (auto _ : state) {
    auto sol = SolveGreedyLazy(*g, k);
    PREFCOVER_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->cover);
    gain_evals = sol->stats.gain_evaluations;
    heap_pops = sol->stats.heap_pops;
  }
  state.counters["gain_evals"] = static_cast<double>(gain_evals);
  state.counters["heap_pops"] = static_cast<double>(heap_pops);
}
BENCHMARK(BM_LazyGreedy)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

// Batched CELF across pool widths and batch sizes; the telemetry counters
// expose how much work the pruning saves vs. the full O(nk) scan.
void BM_LazyParallelGreedy(benchmark::State& state) {
  auto g = GenerateProfileGraphWithNodes(
      DatasetProfile::kPE, static_cast<uint32_t>(state.range(0)), 42);
  PREFCOVER_CHECK(g.ok());
  const size_t k = static_cast<size_t>(state.range(0)) / 20;
  ThreadPool pool(static_cast<size_t>(state.range(1)));
  GreedyOptions options;
  options.batch_size = static_cast<size_t>(state.range(2));
  uint64_t gain_evals = 0;
  double stale_ratio = 0.0, utilization = 0.0;
  for (auto _ : state) {
    auto sol = SolveGreedyLazyParallel(*g, k, &pool, options);
    PREFCOVER_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->cover);
    gain_evals = sol->stats.gain_evaluations;
    stale_ratio = sol->stats.StaleRatio();
    utilization = sol->stats.PoolUtilization();
  }
  state.counters["gain_evals"] = static_cast<double>(gain_evals);
  state.counters["stale_ratio"] = stale_ratio;
  state.counters["pool_util"] = utilization;
}
BENCHMARK(BM_LazyParallelGreedy)
    ->Args({10000, 1, 0})
    ->Args({10000, 4, 0})
    ->Args({10000, 4, 4})
    ->Args({10000, 4, 64})
    ->Args({50000, 4, 0})
    ->Unit(benchmark::kMillisecond);

void BM_PlainGreedy(benchmark::State& state) {
  auto g = GenerateProfileGraphWithNodes(
      DatasetProfile::kPE, static_cast<uint32_t>(state.range(0)), 42);
  PREFCOVER_CHECK(g.ok());
  const size_t k = static_cast<size_t>(state.range(0)) / 20;
  for (auto _ : state) {
    auto sol = SolveGreedy(*g, k);
    PREFCOVER_CHECK(sol.ok());
    benchmark::DoNotOptimize(sol->cover);
  }
}
BENCHMARK(BM_PlainGreedy)->Arg(2000)->Arg(10000)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace prefcover

BENCHMARK_MAIN();
