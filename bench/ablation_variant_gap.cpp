// Ablation: how much does the variant choice matter? On the same
// admissible graph, solve under both variants and compare (a) the covers
// each achieves under its own semantics, (b) the overlap of the retained
// sets, and (c) the cost of model mismatch — evaluating the set chosen
// under the wrong variant with the right variant's cover function.
//
// Usage: ablation_variant_gap [--csv] [--scale=0.05]

#include <cstdio>
#include <iostream>

#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "synth/dataset_profiles.h"

using namespace prefcover;

int main(int argc, char** argv) {
  ExperimentEnv env("Ablation: Normalized vs Independent variant gap");
  Status st = env.Parse(argc, argv);
  if (st.IsOutOfRange()) return 0;
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  PrintExperimentHeader(env, "Ablation A2",
                        "variant mismatch cost on a PM-shaped graph");

  // PM graphs are Normalized-admissible, so both cover functions apply.
  auto graph = GenerateProfileGraph(DatasetProfile::kPM, env.ScaleOr(0.02),
                                    env.seed);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }

  TablePrinter table({"k/n", "C_N(S_N)", "C_I(S_I)", "Jaccard(S_N,S_I)",
                      "C_N(S_I)", "mismatch loss"});
  for (double fraction : {0.05, 0.1, 0.2, 0.4}) {
    size_t k = static_cast<size_t>(fraction *
                                   static_cast<double>(graph->NumNodes()));
    GreedyOptions norm_opt;
    norm_opt.variant = Variant::kNormalized;
    GreedyOptions ind_opt;
    ind_opt.variant = Variant::kIndependent;
    auto sol_n = SolveGreedyLazy(*graph, k, norm_opt);
    auto sol_i = SolveGreedyLazy(*graph, k, ind_opt);
    if (!sol_n.ok() || !sol_i.ok()) {
      std::fprintf(stderr, "solver failure\n");
      return 1;
    }
    double jaccard = JaccardSimilarity(sol_n->items, sol_i->items);

    // Evaluate the Independent-chosen set under Normalized semantics: the
    // loss from fitting the wrong dependency model.
    auto cross = EvaluateCover(*graph, sol_i->items, Variant::kNormalized);
    if (!cross.ok()) {
      std::fprintf(stderr, "%s\n", cross.status().ToString().c_str());
      return 1;
    }
    table.AddRow({TablePrinter::Fixed(fraction, 2),
                  TablePrinter::Percent(sol_n->cover, 2),
                  TablePrinter::Percent(sol_i->cover, 2),
                  TablePrinter::Fixed(jaccard, 3),
                  TablePrinter::Percent(*cross, 2),
                  TablePrinter::Percent(sol_n->cover - *cross, 3)});
  }
  env.Emit(table,
           "S_N / S_I: greedy sets under Normalized / Independent; "
           "C_N / C_I: covers under each semantics");
  return 0;
}
