#include "bench/metrics_json.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/json.h"
#include "obs/metrics.h"

namespace prefcover {
namespace {

std::string GoldenPath() {
  return std::string(PREFCOVER_GOLDEN_DIR) + "/metrics_snapshot.json";
}

// A fixed registry whose snapshot exercises every instrument kind; the
// rendered JSON is pinned as a golden file so the metrics subtree schema
// cannot drift silently (bump kMetricsSchemaVersion when it must).
obs::MetricsSnapshot PinnedSnapshot() {
  static obs::MetricsRegistry* registry = [] {
    auto* r = new obs::MetricsRegistry();
    r->GetCounter("solver.gain_evaluations")->Increment(1234);
    r->GetCounter("clickstream.rows")->Increment(98765);
    r->GetGauge("pool.queue_depth")->Set(-2);
    obs::Histogram* h = r->GetHistogram("pool.task_seconds",
                                        {0.001, 0.01, 0.1});
    h->Record(0.0005);
    h->Record(0.05);
    h->Record(2.0);
    return r;
  }();
  return registry->Snapshot();
}

TEST(MetricsJsonTest, ShapeMatchesDocumentedSchema) {
  JsonValue doc = MetricsSnapshotToJson(PinnedSnapshot());
  ASSERT_TRUE(doc.is_object());
  const JsonValue* version = doc.Find("schema_version");
  ASSERT_NE(version, nullptr);
  EXPECT_EQ(version->number_value(), kMetricsSchemaVersion);

  const JsonValue* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_object());
  EXPECT_EQ(counters->Find("solver.gain_evaluations")->number_value(),
            1234.0);
  // Snapshot order is name-sorted: clickstream.* precedes solver.*.
  EXPECT_EQ(counters->members()[0].first, "clickstream.rows");

  const JsonValue* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->Find("pool.queue_depth")->number_value(), -2.0);

  const JsonValue* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const JsonValue* hist = histograms->Find("pool.task_seconds");
  ASSERT_NE(hist, nullptr);
  ASSERT_EQ(hist->Find("bounds")->size(), 3u);
  ASSERT_EQ(hist->Find("counts")->size(), 4u);  // bounds + overflow
  EXPECT_EQ(hist->Find("counts")->at(0).number_value(), 1.0);
  EXPECT_EQ(hist->Find("counts")->at(3).number_value(), 1.0);
  EXPECT_EQ(hist->Find("total_count")->number_value(), 3.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->number_value(), 0.0005 + 0.05 + 2.0);
}

TEST(MetricsJsonTest, SerializationIsByteStable) {
  std::string first = MetricsSnapshotToJson(PinnedSnapshot()).Dump();
  std::string second = MetricsSnapshotToJson(PinnedSnapshot()).Dump();
  EXPECT_EQ(first, second);
}

TEST(MetricsJsonTest, MatchesGoldenDocument) {
  std::string rendered = MetricsSnapshotToJson(PinnedSnapshot()).Dump();

  if (std::getenv("PREFCOVER_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    out << rendered;
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << GoldenPath()
      << " missing; run with PREFCOVER_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), rendered)
      << "metrics JSON schema drifted; if intentional, bump "
         "kMetricsSchemaVersion and regenerate with "
         "PREFCOVER_REGENERATE_GOLDEN=1.";
}

TEST(MetricsJsonTest, EmptySnapshotRendersEmptySections) {
  obs::MetricsRegistry registry;
  JsonValue doc = MetricsSnapshotToJson(registry.Snapshot());
  EXPECT_EQ(doc.Find("counters")->size(), 0u);
  EXPECT_EQ(doc.Find("gauges")->size(), 0u);
  EXPECT_EQ(doc.Find("histograms")->size(), 0u);
  auto reparsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
}

}  // namespace
}  // namespace prefcover
