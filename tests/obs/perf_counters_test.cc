#include "obs/perf_counters.h"

#include <cmath>
#include <cstdlib>

#include <gtest/gtest.h>

namespace prefcover {
namespace obs {
namespace {

// The contract is graceful degradation, so every test must pass on both
// support paths: hosts with a PMU, hosts with only software counters, and
// hosts where perf_event_open fails outright (containers, non-Linux).

TEST(PerfCounterGroupTest, StopAfterStartReturnsConsistentValues) {
  PerfCounterGroup group;
  group.Start();
  // Burn some user-space cycles so supported events count something.
  volatile double sink = 0.0;
  for (int i = 0; i < 100'000; ++i) sink = sink + std::sqrt(double(i));
  PerfCounterValues values = group.Stop();
  if (!group.supported()) {
    EXPECT_FALSE(values.supported);
    EXPECT_FALSE(values.unsupported_reason.empty());
    return;
  }
  // supported() means at least one fd opened; Stop() may still find that
  // an event never scheduled, but the flags must agree with the samples.
  bool any = false;
  for (size_t i = 0; i < kNumPerfEvents; ++i) {
    const auto event = static_cast<PerfEvent>(i);
    if (values.Has(event)) any = true;
  }
  EXPECT_EQ(values.supported, any);
  if (values.Has(PerfEvent::kTaskClockNs)) {
    EXPECT_GT(values.Value(PerfEvent::kTaskClockNs), 0u);
  }
  if (values.Has(PerfEvent::kInstructions)) {
    EXPECT_GT(values.Value(PerfEvent::kInstructions), 0u);
  }
}

TEST(PerfCounterGroupTest, ForceUnsupportedSkipsTheSyscall) {
  PerfCounterOptions options;
  options.force_unsupported = true;
  PerfCounterGroup group(options);
  EXPECT_FALSE(group.supported());
  EXPECT_EQ(group.unsupported_reason(), "disabled by PerfCounterOptions");
  group.Start();  // must be a harmless no-op
  PerfCounterValues values = group.Stop();
  EXPECT_FALSE(values.supported);
  EXPECT_EQ(values.unsupported_reason, "disabled by PerfCounterOptions");
  for (size_t i = 0; i < kNumPerfEvents; ++i) {
    EXPECT_FALSE(values.Has(static_cast<PerfEvent>(i)));
  }
}

TEST(PerfCounterGroupTest, EnvironmentOverrideForcesUnsupported) {
  ASSERT_EQ(setenv("PREFCOVER_NO_PERF", "1", 1), 0);
  PerfCounterGroup group;
  unsetenv("PREFCOVER_NO_PERF");
  EXPECT_FALSE(group.supported());
  EXPECT_EQ(group.unsupported_reason(), "disabled by PREFCOVER_NO_PERF");
}

TEST(PerfCounterValuesTest, DerivedRatiosAreNanWithoutInputs) {
  PerfCounterValues values;
  EXPECT_TRUE(std::isnan(values.Ipc()));
  EXPECT_TRUE(std::isnan(values.BranchMissRate()));
  EXPECT_TRUE(std::isnan(values.CacheMissRate()));
  EXPECT_TRUE(std::isnan(values.CyclesPerNanosecond()));
}

TEST(PerfCounterValuesTest, DerivedRatiosFromMeasuredEvents) {
  PerfCounterValues values;
  auto set = [&values](PerfEvent event, uint64_t v) {
    values.events[static_cast<size_t>(event)] = {true, v};
  };
  set(PerfEvent::kCycles, 1000);
  set(PerfEvent::kInstructions, 2500);
  set(PerfEvent::kBranches, 400);
  set(PerfEvent::kBranchMisses, 40);
  values.supported = true;
  EXPECT_DOUBLE_EQ(values.Ipc(), 2.5);
  EXPECT_DOUBLE_EQ(values.BranchMissRate(), 0.1);
  // Cache events absent -> NaN, not zero.
  EXPECT_TRUE(std::isnan(values.CacheMissRate()));
}

TEST(PerfCounterValuesTest, ZeroDenominatorYieldsNan) {
  PerfCounterValues values;
  values.events[static_cast<size_t>(PerfEvent::kCycles)] = {true, 0};
  values.events[static_cast<size_t>(PerfEvent::kInstructions)] = {true, 7};
  EXPECT_TRUE(std::isnan(values.Ipc()));
}

TEST(PerfCounterValuesTest, AccumulateSumsMatchingEvents) {
  PerfCounterValues a, b;
  a.supported = b.supported = true;
  a.events[0] = {true, 100};
  b.events[0] = {true, 23};
  PerfCounterValues sink;
  sink.Accumulate(a);  // fresh sink adopts a's samples
  sink.Accumulate(b);
  EXPECT_TRUE(sink.supported);
  EXPECT_EQ(sink.Value(static_cast<PerfEvent>(0)), 123u);
}

TEST(PerfCounterValuesTest, AccumulatePoisonsPartiallyMissingEvents) {
  PerfCounterValues a, b;
  a.supported = b.supported = true;
  a.events[0] = {true, 100};
  a.events[1] = {true, 50};
  b.events[0] = {true, 1};  // event 1 missing on b's side
  PerfCounterValues sink;
  sink.Accumulate(a);
  sink.Accumulate(b);
  EXPECT_TRUE(sink.Has(static_cast<PerfEvent>(0)));
  // A total summed over windows with a hole would skew every ratio.
  EXPECT_FALSE(sink.Has(static_cast<PerfEvent>(1)));
}

TEST(PerfCounterValuesTest, AccumulateKeepsUnsupportedReason) {
  PerfCounterValues unsupported;
  unsupported.unsupported_reason = "no PMU";
  PerfCounterValues sink;
  sink.Accumulate(unsupported);
  EXPECT_FALSE(sink.supported);
  EXPECT_EQ(sink.unsupported_reason, "no PMU");
}

TEST(PerfScopeTest, NullTolerant) {
  PerfScope scope(nullptr, nullptr);  // must not crash
  PerfCounterGroup group;
  PerfScope sink_less(&group, nullptr);  // nor this
}

TEST(PerfScopeTest, AccumulatesIntoSink) {
  PerfCounterGroup group;
  PerfCounterValues sink;
  {
    PerfScope scope(&group, &sink);
    volatile int x = 0;
    for (int i = 0; i < 10'000; ++i) x = x + i;
  }
  EXPECT_EQ(sink.supported, group.supported());
}

}  // namespace
}  // namespace obs
}  // namespace prefcover
