#include "obs/timeseries.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

namespace prefcover {
namespace obs {
namespace {

MetricsSnapshot::HistogramValue MakeHistogram(
    std::vector<double> bounds, std::vector<uint64_t> counts, double sum) {
  MetricsSnapshot::HistogramValue h;
  h.name = "test.hist";
  h.bounds = std::move(bounds);
  h.counts = std::move(counts);
  h.total_count = 0;
  for (uint64_t c : h.counts) h.total_count += c;
  h.sum = sum;
  return h;
}

// ---------------------------------------------------------------------
// HistogramQuantile edge cases. These four shapes are the mandated
// contract; the exact values below pin the interpolation rule.

TEST(HistogramQuantileTest, ValueExactlyOnBucketBoundary) {
  // A sample equal to a bound lands in that bound's bucket (le
  // semantics), and q=1 interpolates to exactly the bound.
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("boundary", {1.0, 2.0, 5.0});
  h->Record(2.0);
  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_DOUBLE_EQ(HistogramQuantile(snapshot.histograms[0], 1.0), 2.0);
  // Any quantile of a single sample stays inside the owning bucket.
  EXPECT_GE(HistogramQuantile(snapshot.histograms[0], 0.01), 1.0);
  EXPECT_LE(HistogramQuantile(snapshot.histograms[0], 0.99), 2.0);
}

TEST(HistogramQuantileTest, EverythingInOverflowBucket) {
  // No finite upper bound to interpolate toward: the estimate clamps to
  // the last finite bound, for every quantile.
  auto h = MakeHistogram({1.0, 2.0, 5.0}, {0, 0, 0, 17}, 1e6);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.99), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 5.0);
}

TEST(HistogramQuantileTest, EmptyHistogramIsZero) {
  auto h = MakeHistogram({1.0, 2.0, 5.0}, {0, 0, 0, 0}, 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.99), 0.0);
}

TEST(HistogramQuantileTest, SingleSampleP99InterpolatesItsBucket) {
  // One sample in (2, 5]: p99 = 2 + (5-2) * 0.99.
  auto h = MakeHistogram({1.0, 2.0, 5.0}, {0, 0, 1, 0}, 3.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.99), 2.0 + 3.0 * 0.99);
}

TEST(HistogramQuantileTest, FirstBucketInterpolatesFromZero) {
  auto h = MakeHistogram({10.0, 20.0}, {4, 0, 0}, 12.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 1.0), 10.0);
}

TEST(HistogramQuantileTest, QuantileIsClampedAndShapeChecked) {
  auto h = MakeHistogram({1.0}, {1, 0}, 0.5);
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, -3.0),
                   HistogramQuantile(h, 0.0));
  EXPECT_DOUBLE_EQ(HistogramQuantile(h, 7.0), HistogramQuantile(h, 1.0));
  auto malformed = MakeHistogram({1.0, 2.0}, {1, 0}, 0.5);  // counts short
  EXPECT_DOUBLE_EQ(HistogramQuantile(malformed, 0.5), 0.0);
}

TEST(HistogramDeltaQuantileTest, QuantileOfTheInterval) {
  // Earlier reading: 10 samples in bucket 0. Later: plus 10 in bucket 2.
  auto earlier = MakeHistogram({1.0, 2.0, 5.0}, {10, 0, 0, 0}, 5.0);
  auto later = MakeHistogram({1.0, 2.0, 5.0}, {10, 0, 10, 0}, 45.0);
  // The delta is entirely in (2, 5]; its median interpolates that bucket.
  EXPECT_DOUBLE_EQ(HistogramDeltaQuantile(earlier, later, 0.5), 3.5);
  // Mismatched bounds -> 0.
  auto other = MakeHistogram({1.0, 3.0, 5.0}, {10, 0, 10, 0}, 45.0);
  EXPECT_DOUBLE_EQ(HistogramDeltaQuantile(earlier, other, 0.5), 0.0);
}

// ---------------------------------------------------------------------
// Counter rates.

MetricsSample MakeSample(int64_t steady_ns, uint64_t requests) {
  MetricsSample sample;
  sample.steady_ns = steady_ns;
  sample.unix_ms = steady_ns / 1'000'000;
  sample.snapshot.counters.push_back({"serve.requests", requests});
  return sample;
}

TEST(CounterRateTest, RatePerSecond) {
  MetricsSample a = MakeSample(0, 100);
  MetricsSample b = MakeSample(2'000'000'000, 700);
  EXPECT_DOUBLE_EQ(CounterRatePerSecond(a, b, "serve.requests"), 300.0);
}

TEST(CounterRateTest, DegenerateInputsYieldZero) {
  MetricsSample a = MakeSample(1'000'000'000, 100);
  MetricsSample b = MakeSample(1'000'000'000, 700);
  EXPECT_DOUBLE_EQ(CounterRatePerSecond(a, b, "serve.requests"), 0.0);
  MetricsSample c = MakeSample(2'000'000'000, 50);  // went backwards
  EXPECT_DOUBLE_EQ(CounterRatePerSecond(a, c, "serve.requests"), 0.0);
  EXPECT_DOUBLE_EQ(CounterRatePerSecond(a, c, "absent.counter"), 0.0);
}

// ---------------------------------------------------------------------
// The sampler.

TEST(MetricsSamplerTest, SampleNowWorksWithoutStart) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(5);
  MetricsSampler sampler(&registry);
  EXPECT_FALSE(sampler.running());
  sampler.SampleNow();
  ASSERT_EQ(sampler.SampleCount(), 1u);
  EXPECT_EQ(sampler.Series()[0].snapshot.CounterOr("c"), 5u);
}

TEST(MetricsSamplerTest, StartStopBracketTheRunWithSamples) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("work");
  TimeseriesOptions options;
  options.interval_s = 0.01;
  MetricsSampler sampler(&registry, options);
  sampler.Start();
  EXPECT_TRUE(sampler.running());
  c->Increment(42);
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  sampler.Stop();
  EXPECT_FALSE(sampler.running());
  // At least the immediate first sample and the final one from Stop().
  ASSERT_GE(sampler.SampleCount(), 2u);
  auto series = sampler.Series();
  EXPECT_EQ(series.front().snapshot.CounterOr("work"), 0u);
  EXPECT_EQ(series.back().snapshot.CounterOr("work"), 42u);
  // Monotone steady timestamps, oldest first.
  for (size_t i = 1; i < series.size(); ++i) {
    EXPECT_GE(series[i].steady_ns, series[i - 1].steady_ns);
  }
}

TEST(MetricsSamplerTest, RingIsBounded) {
  MetricsRegistry registry;
  TimeseriesOptions options;
  options.capacity = 3;
  MetricsSampler sampler(&registry, options);
  for (int i = 0; i < 10; ++i) sampler.SampleNow();
  EXPECT_EQ(sampler.SampleCount(), 3u);
}

TEST(MetricsSamplerTest, OnSampleSeesCurrentAndPrevious) {
  MetricsRegistry registry;
  std::atomic<int> calls{0};
  std::atomic<int> with_previous{0};
  TimeseriesOptions options;
  options.interval_s = 0.005;
  options.on_sample = [&](const MetricsSample&,
                          const MetricsSample* previous) {
    calls.fetch_add(1);
    if (previous != nullptr) with_previous.fetch_add(1);
  };
  MetricsSampler sampler(&registry, options);
  sampler.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  sampler.Stop();
  EXPECT_GE(calls.load(), 2);
  // Exactly the first capture lacks a predecessor.
  EXPECT_EQ(with_previous.load(), calls.load() - 1);
}

TEST(MetricsSamplerTest, OptionsAreClamped) {
  MetricsRegistry registry;
  TimeseriesOptions options;
  options.interval_s = -1.0;
  options.capacity = 0;
  MetricsSampler sampler(&registry, options);
  EXPECT_GT(sampler.options().interval_s, 0.0);
  EXPECT_EQ(sampler.options().capacity, 1u);
}

// ---------------------------------------------------------------------
// Export.

std::vector<MetricsSample> TwoSampleSeries() {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("serve.requests");
  registry.GetGauge("depth")->Set(4);
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0, 5.0});
  std::vector<MetricsSample> series;
  MetricsSample first;
  first.steady_ns = 1'000'000'000;
  first.unix_ms = 1000;
  first.snapshot = registry.Snapshot();
  series.push_back(first);
  c->Increment(100);
  h->Record(3.0);
  MetricsSample second;
  second.steady_ns = 2'000'000'000;
  second.unix_ms = 2000;
  second.snapshot = registry.Snapshot();
  series.push_back(second);
  return series;
}

TEST(TimeseriesExportTest, JsonShapeAndRates) {
  std::string json = TimeseriesToJson(TwoSampleSeries());
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"serve.requests\": 100"), std::string::npos);
  // Rate between the two samples: 100 requests over 1s.
  EXPECT_NE(json.find("\"rates\": {\"serve.requests\": 100"),
            std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
}

TEST(TimeseriesExportTest, EmptySeriesJsonIsWellFormed) {
  std::string json = TimeseriesToJson({});
  EXPECT_NE(json.find("\"samples\": []"), std::string::npos);
}

TEST(TimeseriesExportTest, CsvHeaderAndRows) {
  std::string csv = TimeseriesToCsv(TwoSampleSeries());
  std::istringstream lines(csv);
  std::string header, row1, row2;
  ASSERT_TRUE(std::getline(lines, header));
  ASSERT_TRUE(std::getline(lines, row1));
  ASSERT_TRUE(std::getline(lines, row2));
  EXPECT_EQ(header,
            "unix_ms,steady_ns,serve.requests,depth,"
            "lat:count,lat:sum,lat:p50,lat:p95,lat:p99");
  EXPECT_EQ(row1.substr(0, 5), "1000,");
  EXPECT_NE(row2.find(",100,"), std::string::npos);
}

TEST(TimeseriesExportTest, WriteTimeseriesFileRoundTrips) {
  const std::string path =
      testing::TempDir() + "/timeseries_export_test.json";
  std::string error;
  ASSERT_TRUE(WriteTimeseriesFile(path, "{\"x\": 1}\n", &error)) << error;
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "{\"x\": 1}\n");
  std::remove(path.c_str());
  EXPECT_FALSE(
      WriteTimeseriesFile("/nonexistent-dir/x.json", "data", &error));
  EXPECT_FALSE(error.empty());
}

}  // namespace
}  // namespace obs
}  // namespace prefcover
