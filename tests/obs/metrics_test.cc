#include "obs/metrics.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace prefcover {
namespace obs {
namespace {

TEST(CounterTest, IncrementAndValue) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.counter");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
}

TEST(CounterTest, ShardedIncrementsSumAcrossThreads) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("test.concurrent");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c->Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAddValue) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("test.gauge");
  EXPECT_EQ(g->Value(), 0);
  g->Set(10);
  g->Add(-3);
  EXPECT_EQ(g->Value(), 7);
  g->Add(-10);
  EXPECT_EQ(g->Value(), -3);
}

TEST(HistogramTest, BucketAssignmentAndTotals) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("test.hist", {1.0, 10.0, 100.0});
  h->Record(0.5);    // <= 1       -> bucket 0
  h->Record(1.0);    // == bound   -> bucket 0 (bounds are inclusive)
  h->Record(5.0);    // <= 10      -> bucket 1
  h->Record(100.0);  // == bound   -> bucket 2
  h->Record(1e6);    // above last -> overflow
  std::vector<uint64_t> counts = h->Counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h->TotalCount(), 5u);
  EXPECT_DOUBLE_EQ(h->Sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
}

TEST(MetricsRegistryTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.GetCounter("a"), registry.GetCounter("a"));
  EXPECT_EQ(registry.GetGauge("g"), registry.GetGauge("g"));
  EXPECT_EQ(registry.GetHistogram("h", {1.0}),
            registry.GetHistogram("h", {1.0}));
}

TEST(MetricsRegistryDeathTest, KindMismatchAborts) {
  EXPECT_DEATH(
      {
        MetricsRegistry registry;
        registry.GetCounter("same.name");
        registry.GetGauge("same.name");
      },
      "same.name");
  EXPECT_DEATH(
      {
        MetricsRegistry registry;
        registry.GetHistogram("same.hist", {1.0, 2.0});
        registry.GetHistogram("same.hist", {5.0});
      },
      "same.hist");
}

TEST(MetricsRegistryTest, SnapshotIsSortedAndComplete) {
  MetricsRegistry registry;
  registry.GetCounter("z.counter")->Increment(3);
  registry.GetCounter("a.counter")->Increment(1);
  registry.GetGauge("m.gauge")->Set(-5);
  registry.GetHistogram("h.hist", {2.0})->Record(1.0);

  MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].name, "a.counter");
  EXPECT_EQ(snapshot.counters[0].value, 1u);
  EXPECT_EQ(snapshot.counters[1].name, "z.counter");
  EXPECT_EQ(snapshot.counters[1].value, 3u);
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].value, -5);
  ASSERT_EQ(snapshot.histograms.size(), 1u);
  EXPECT_EQ(snapshot.histograms[0].total_count, 1u);
  ASSERT_EQ(snapshot.histograms[0].counts.size(), 2u);
  EXPECT_EQ(snapshot.histograms[0].counts[0], 1u);
}

TEST(MetricsRegistryTest, CounterOrFallsBackWhenAbsent) {
  MetricsRegistry registry;
  registry.GetCounter("present")->Increment(9);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("present"), 9u);
  EXPECT_EQ(snapshot.CounterOr("absent"), 0u);
  EXPECT_EQ(snapshot.CounterOr("absent", 123), 123u);
}

TEST(MetricsRegistryTest, MergeCountersAddsAndCreates) {
  MetricsRegistry run;
  run.GetCounter("shared")->Increment(5);
  run.GetCounter("run.only")->Increment(2);
  run.GetCounter("zero");  // never fired; merge skips zeros

  MetricsRegistry target;
  target.GetCounter("shared")->Increment(10);
  target.MergeCounters(run.Snapshot());

  MetricsSnapshot merged = target.Snapshot();
  EXPECT_EQ(merged.CounterOr("shared"), 15u);
  EXPECT_EQ(merged.CounterOr("run.only"), 2u);
  // The zero-valued counter must not have been created in the target.
  for (const auto& c : merged.counters) EXPECT_NE(c.name, "zero");
}

TEST(MetricsRegistryTest, RunScopedRegistryIsIsolatedFromGlobal) {
  MetricsRegistry run;
  uint64_t global_before =
      MetricsRegistry::Global().Snapshot().CounterOr("isolated.counter");
  run.GetCounter("isolated.counter")->Increment(7);
  EXPECT_EQ(
      MetricsRegistry::Global().Snapshot().CounterOr("isolated.counter"),
      global_before);
  EXPECT_EQ(run.Snapshot().CounterOr("isolated.counter"), 7u);
}

TEST(CurrentThreadIdTest, StablePerThreadAndDistinctAcrossThreads) {
  uint32_t main_id = CurrentThreadId();
  EXPECT_EQ(CurrentThreadId(), main_id);
  uint32_t other_id = main_id;
  std::thread t([&other_id] { other_id = CurrentThreadId(); });
  t.join();
  EXPECT_NE(other_id, main_id);
}

}  // namespace
}  // namespace obs
}  // namespace prefcover
