#include "obs/trace.h"

#include <atomic>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/json.h"
#include "obs/metrics.h"
#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace obs {
namespace {

// Collects drained events verbatim for structural assertions.
struct CollectSink : public TraceSink {
  std::vector<TraceEvent> events;
  void Consume(const TraceEvent& event) override {
    events.push_back(event);
  }
};

uint64_t GlobalDropped() {
  return MetricsRegistry::Global().Snapshot().CounterOr(
      "trace.dropped_events");
}

TEST(TracingTest, DisabledRecordsNothing) {
  ASSERT_TRUE(Tracing::Start());  // reset rings from earlier tests
  Tracing::Stop();
  {
    Span span("test.disabled", "test");
    span.Arg("ignored", uint64_t{1});
  }
  CollectSink sink;
  EXPECT_EQ(Tracing::Flush(&sink), 0u);
  EXPECT_TRUE(sink.events.empty());
}

TEST(TracingTest, SpanThatStartedEnabledRecordsAfterStop) {
  ASSERT_TRUE(Tracing::Start());
  {
    Span span("test.straddle", "test");
    Tracing::Stop();
  }
  CollectSink sink;
  ASSERT_EQ(Tracing::Flush(&sink), 1u);
  EXPECT_STREQ(sink.events[0].name, "test.straddle");
}

TEST(TracingTest, SpanRecordsNameCategoryArgsAndTid) {
  ASSERT_TRUE(Tracing::Start());
  {
    Span span("test.full", "unit");
    span.Arg("count", uint64_t{7});
    span.Arg("label", "abc");
  }
  Tracing::Stop();
  CollectSink sink;
  ASSERT_EQ(Tracing::Flush(&sink), 1u);
  const TraceEvent& e = sink.events[0];
  EXPECT_STREQ(e.name, "test.full");
  EXPECT_STREQ(e.category, "unit");
  EXPECT_EQ(e.tid, CurrentThreadId());
  EXPECT_EQ(std::string(e.args, e.args_len),
            "\"count\":7,\"label\":\"abc\"");
}

TEST(TracingTest, RingOverflowDropsOldestAndCountsDrops) {
  const uint64_t dropped_before = GlobalDropped();
  TracingOptions options;
  options.ring_capacity = 8;
  ASSERT_TRUE(Tracing::Start(options));
  for (uint64_t i = 0; i < 20; ++i) {
    TraceArgs args;
    args.Add("i", i);
    Tracing::RecordComplete("test.overflow", "test", /*start_ns=*/i,
                            /*duration_ns=*/1, args.body());
  }
  Tracing::Stop();
  EXPECT_EQ(Tracing::DroppedEvents(), 12u);
  EXPECT_EQ(GlobalDropped() - dropped_before, 12u);

  CollectSink sink;
  ASSERT_EQ(Tracing::Flush(&sink), 8u);
  // The survivors are the NEWEST eight (i = 12..19), oldest first.
  for (size_t j = 0; j < sink.events.size(); ++j) {
    EXPECT_EQ(sink.events[j].start_ns, 12 + j);
  }
}

TEST(TracingTest, SpansNestUnderParallelForOnDistinctThreads) {
  ASSERT_TRUE(Tracing::Start());
  const uint32_t main_tid = CurrentThreadId();
  {
    ThreadPool pool(2);
    // Both chunk bodies hold at a barrier until the other arrives, which
    // forces the two chunks onto two distinct pool threads (a single
    // worker could never release the barrier).
    std::atomic<int> arrived{0};
    ParallelForChunked(&pool, 0, 2,
                       [&arrived](size_t lo, size_t hi, size_t /*worker*/) {
                         arrived.fetch_add(1);
                         while (arrived.load() < 2) std::this_thread::yield();
                         Span child("test.child", "test");
                         child.Arg("lo", static_cast<uint64_t>(lo));
                         child.Arg("hi", static_cast<uint64_t>(hi));
                       });
  }
  Tracing::Stop();

  CollectSink sink;
  Tracing::Flush(&sink);
  const TraceEvent* dispatch = nullptr;
  std::vector<const TraceEvent*> chunks;
  std::vector<const TraceEvent*> children;
  for (const TraceEvent& e : sink.events) {
    if (std::string(e.name) == "pool.parallel_for") dispatch = &e;
    if (std::string(e.name) == "pool.chunk") chunks.push_back(&e);
    if (std::string(e.name) == "test.child") children.push_back(&e);
  }
  ASSERT_NE(dispatch, nullptr);
  EXPECT_EQ(dispatch->tid, main_tid);
  ASSERT_EQ(chunks.size(), 2u);
  ASSERT_EQ(children.size(), 2u);

  // The two chunks ran on two distinct worker threads, neither of them
  // the dispatching thread.
  EXPECT_NE(chunks[0]->tid, chunks[1]->tid);
  EXPECT_NE(chunks[0]->tid, main_tid);
  EXPECT_NE(chunks[1]->tid, main_tid);

  // Each child span is nested (time-contained, same thread) in exactly
  // one chunk span, and every chunk is contained in the dispatch window.
  for (const TraceEvent* child : children) {
    bool contained = false;
    for (const TraceEvent* chunk : chunks) {
      if (child->tid != chunk->tid) continue;
      contained = child->start_ns >= chunk->start_ns &&
                  child->start_ns + child->duration_ns <=
                      chunk->start_ns + chunk->duration_ns;
    }
    EXPECT_TRUE(contained);
  }
  for (const TraceEvent* chunk : chunks) {
    EXPECT_GE(chunk->start_ns, dispatch->start_ns);
    EXPECT_LE(chunk->start_ns + chunk->duration_ns,
              dispatch->start_ns + dispatch->duration_ns);
  }
}

TEST(TracingTest, FlushOrdersEventsByThreadThenStart) {
  ASSERT_TRUE(Tracing::Start());
  Tracing::RecordComplete("b", "test", /*start_ns=*/100, /*duration_ns=*/1);
  Tracing::RecordComplete("a", "test", /*start_ns=*/50, /*duration_ns=*/1);
  std::thread other([] {
    Tracing::RecordComplete("c", "test", /*start_ns=*/10,
                            /*duration_ns=*/1);
  });
  other.join();
  Tracing::Stop();
  CollectSink sink;
  ASSERT_EQ(Tracing::Flush(&sink), 3u);
  uint32_t last_tid = 0;
  uint64_t last_start = 0;
  for (size_t i = 0; i < sink.events.size(); ++i) {
    const TraceEvent& e = sink.events[i];
    if (i > 0) {
      EXPECT_TRUE(e.tid > last_tid ||
                  (e.tid == last_tid && e.start_ns >= last_start));
    }
    last_tid = e.tid;
    last_start = e.start_ns;
  }
}

TEST(TraceArgsTest, FormatsEveryValueKind) {
  TraceArgs args;
  args.Add("u", uint64_t{42})
      .Add("i", int64_t{-7})
      .Add("d", 1.5)
      .Add("s", "text");
  EXPECT_STREQ(args.body(), "\"u\":42,\"i\":-7,\"d\":1.5,\"s\":\"text\"");
}

TEST(TraceArgsTest, TruncatesAtCapacityWithoutOverflow) {
  TraceArgs args;
  for (int i = 0; i < 100; ++i) args.Add("long_key_name", uint64_t{1});
  EXPECT_LT(args.size(), TraceEvent::kArgsCapacity);
}

TEST(ChromeTraceExportTest, WritesParsableChromeTraceJson) {
  ASSERT_TRUE(Tracing::Start());
  {
    Span outer("test.outer", "export");
    outer.Arg("k", uint64_t{3});
    Span inner("test.inner", "export");
  }
  std::string path = testing::TempDir() + "/trace_test_export.json";
  std::string error;
  ASSERT_TRUE(WriteChromeTraceFile(path, &error)) << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto doc = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* unit = doc->Find("displayTimeUnit");
  ASSERT_NE(unit, nullptr);
  EXPECT_EQ(unit->string_value(), "ms");
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->size(), 2u);
  for (size_t i = 0; i < events->size(); ++i) {
    const JsonValue& e = events->at(i);
    EXPECT_EQ(e.Find("ph")->string_value(), "X");
    EXPECT_EQ(e.Find("pid")->number_value(), 1.0);
    EXPECT_GE(e.Find("dur")->number_value(), 0.0);
  }
  // Same tid + sorted flush: the outer span (earlier start) comes first.
  EXPECT_EQ(events->at(0).Find("name")->string_value(), "test.outer");
  EXPECT_EQ(events->at(1).Find("name")->string_value(), "test.inner");
  const JsonValue* outer_args = events->at(0).Find("args");
  ASSERT_NE(outer_args, nullptr);
  EXPECT_EQ(outer_args->Find("k")->number_value(), 3.0);
}

TEST(ChromeTraceExportTest, EmptySessionStillWritesValidDocument) {
  ASSERT_TRUE(Tracing::Start());
  Tracing::Stop();
  Tracing::Flush(nullptr);  // drain leftovers
  ASSERT_TRUE(Tracing::Start());
  Tracing::Stop();
  std::string path = testing::TempDir() + "/trace_test_empty.json";
  ASSERT_TRUE(WriteChromeTraceFile(path, nullptr));
  std::ifstream in(path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto doc = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("traceEvents")->size(), 0u);
}

}  // namespace
}  // namespace obs
}  // namespace prefcover
