#include "obs/exposition.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace prefcover {
namespace obs {
namespace {

TEST(SanitizeMetricNameTest, MapsIllegalCharacters) {
  EXPECT_EQ(SanitizeMetricName("serve.requests"), "serve_requests");
  EXPECT_EQ(SanitizeMetricName("serve.cache.hit"), "serve_cache_hit");
  EXPECT_EQ(SanitizeMetricName("already_legal:name"),
            "already_legal:name");
  EXPECT_EQ(SanitizeMetricName("has space-and#stuff"),
            "has_space_and_stuff");
  EXPECT_EQ(SanitizeMetricName("9starts_with_digit"),
            "_9starts_with_digit");
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

MetricsSnapshot PopulatedSnapshot() {
  MetricsRegistry registry;
  registry.GetCounter("serve.requests")->Increment(42);
  registry.GetCounter("solver.iterations")->Increment(7);
  registry.GetGauge("serve.qps")->Set(1200);
  Histogram* h =
      registry.GetHistogram("serve.latency_us", {1.0, 10.0, 100.0});
  h->Record(0.5);
  h->Record(50.0);
  h->Record(5000.0);  // overflow bucket
  return registry.Snapshot();
}

TEST(RenderPrometheusTextTest, RendersAllInstrumentKinds) {
  const std::string text = RenderPrometheusText(PopulatedSnapshot());
  EXPECT_NE(text.find("# TYPE serve_requests counter\n"
                      "serve_requests 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_qps gauge\nserve_qps 1200\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_latency_us histogram\n"),
            std::string::npos);
  // Cumulative buckets: 1 sample <= 1, still 1 <= 10 plus one more, and
  // +Inf equals the total count.
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"10\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"100\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_us_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("serve_latency_us_count 3\n"), std::string::npos);
  EXPECT_NE(text.find("serve_latency_us_sum "), std::string::npos);
  // Terminated by the EOF marker, which doubles as protocol framing.
  ASSERT_GE(text.size(), 6u);
  EXPECT_EQ(text.substr(text.size() - 6), "# EOF\n");
}

TEST(RenderPrometheusTextTest, RoundTripsThroughTheLinter) {
  const std::string text = RenderPrometheusText(PopulatedSnapshot());
  LintResult lint = LintPrometheusText(text);
  EXPECT_TRUE(lint.ok) << lint.message;
}

TEST(RenderPrometheusTextTest, EmptySnapshotIsJustEof) {
  MetricsRegistry registry;
  const std::string text = RenderPrometheusText(registry.Snapshot());
  EXPECT_EQ(text, "# EOF\n");
  EXPECT_TRUE(LintPrometheusText(text).ok);
}

TEST(LintPrometheusTextTest, RejectsCorruptedVariants) {
  const std::string good = RenderPrometheusText(PopulatedSnapshot());
  struct Corruption {
    const char* what;
    std::string from;
    std::string to;
  };
  const Corruption corruptions[] = {
      {"missing EOF", "# EOF\n", ""},
      {"sample without TYPE", "# TYPE serve_requests counter\n", ""},
      {"unknown type", "# TYPE serve_qps gauge", "# TYPE serve_qps gouge"},
      {"negative counter", "serve_requests 42", "serve_requests -42"},
      {"non-cumulative buckets", "serve_latency_us_bucket{le=\"100\"} 2",
       "serve_latency_us_bucket{le=\"100\"} 0"},
      {"+Inf != count", "serve_latency_us_bucket{le=\"+Inf\"} 3",
       "serve_latency_us_bucket{le=\"+Inf\"} 2"},
      {"missing _sum", "serve_latency_us_sum ", "serve_latency_us_other "},
      {"illegal name", "serve_qps 1200", "5erve_qps 1200"},
      {"unparseable value", "serve_requests 42", "serve_requests forty"},
  };
  for (const Corruption& corruption : corruptions) {
    std::string bad = good;
    const size_t pos = bad.find(corruption.from);
    ASSERT_NE(pos, std::string::npos) << corruption.what;
    bad.replace(pos, corruption.from.size(), corruption.to);
    EXPECT_FALSE(LintPrometheusText(bad).ok) << corruption.what;
  }
}

TEST(LintPrometheusTextTest, RejectsDuplicateTypeAndTrailingContent) {
  EXPECT_FALSE(LintPrometheusText("# TYPE a counter\n"
                                  "# TYPE a counter\n"
                                  "a 1\n# EOF\n")
                   .ok);
  EXPECT_FALSE(LintPrometheusText("# TYPE a counter\na 1\n"
                                  "# EOF\na 2\n")
                   .ok);
}

TEST(LintPrometheusTextTest, AcceptsHelpCommentsAndPlainSumNames) {
  // _sum/_count-looking names that belong to declared counters are fine.
  EXPECT_TRUE(LintPrometheusText("# HELP odd_sum a counter, not a series\n"
                                 "# TYPE odd_sum counter\n"
                                 "odd_sum 3\n# EOF\n")
                  .ok);
}

TEST(FindPrometheusValueTest, FindsExactSample) {
  const std::string text = RenderPrometheusText(PopulatedSnapshot());
  double value = 0.0;
  ASSERT_TRUE(FindPrometheusValue(text, "serve_requests", &value));
  EXPECT_DOUBLE_EQ(value, 42.0);
  ASSERT_TRUE(FindPrometheusValue(text, "serve_qps", &value));
  EXPECT_DOUBLE_EQ(value, 1200.0);
  // Histogram series are addressable too.
  ASSERT_TRUE(FindPrometheusValue(text, "serve_latency_us_count", &value));
  EXPECT_DOUBLE_EQ(value, 3.0);
  // Prefixes must not match ("serve_request" is not "serve_requests").
  EXPECT_FALSE(FindPrometheusValue(text, "serve_request", &value));
  EXPECT_FALSE(FindPrometheusValue(text, "absent_metric", &value));
}

}  // namespace
}  // namespace obs
}  // namespace prefcover
