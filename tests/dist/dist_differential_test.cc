// The distributed byte-identity contract (ISSUE 10 acceptance): for
// N ∈ {1, 2, 4, 8} worker processes, SolveGreedyDistributed selects the
// same items, the same cover curve and the same I[] — byte-for-byte —
// as the single-process SolveGreedyLazy, across 30 seeded instances of
// both variants with a mixed constraint load, at the dispatch kernel
// tier and (a subset) pinned to scalar. Workers here are in-process
// TCP servers (real sockets, real wire grammar, no fork), which keeps
// the sweep fast enough for ASan CI; the chaos suite covers real
// processes.

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#if defined(__unix__) || defined(__APPLE__)

#include <unistd.h>

#include "core/greedy_solver.h"
#include "dist/distributed_solver.h"
#include "dist/worker.h"
#include "graph/graph_generators.h"
#include "serve/server.h"
#include "serve/transport.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace dist {
namespace {

constexpr size_t kNumSeeds = 30;
constexpr size_t kWorkerCounts[] = {1, 2, 4, 8};

// One in-process dist-worker server: a listener on an ephemeral port
// with a serial accept loop on a thread, exactly the CLI's topology.
class WorkerServer {
 public:
  explicit WorkerServer(const PreferenceGraph* graph) : worker_(graph) {
    serve::IgnoreSigpipe();
    auto listener = serve::ListenTcp(0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = *listener;
    auto port = serve::LocalPort(listener_);
    EXPECT_TRUE(port.ok()) << port.status().ToString();
    port_ = *port;
    thread_ = std::thread([this] {
      bool keep_serving = true;
      while (keep_serving) {
        auto client = serve::AcceptClient(listener_);
        if (!client.ok()) break;  // listener closed: shut down
        keep_serving = serve::ServeLineSessionLoop(
            *client,
            [this](const std::string& line, bool* stop_session,
                   bool* stop_server) {
              return worker_.HandleLine(line, stop_session, stop_server);
            });
      }
    });
  }

  ~WorkerServer() {
    // A `shutdown` verb ends the accept loop cleanly; if the socket path
    // fails (it should not), closing the listener unblocks the thread.
    auto fd = serve::ConnectTcp("127.0.0.1", port_, 1000);
    if (fd.ok()) {
      static const char kShutdown[] = "shutdown\n";
      (void)serve::WriteFully(*fd, kShutdown, sizeof(kShutdown) - 1);
      char buffer[64];
      (void)serve::ReadSome(*fd, buffer, sizeof(buffer));
      ::close(*fd);
    } else {
      ::close(listener_);
      listener_ = -1;
    }
    thread_.join();
    if (listener_ >= 0) ::close(listener_);
  }

  uint16_t port() const { return port_; }

 private:
  DistWorker worker_;
  int listener_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

struct DiffInstance {
  PreferenceGraph graph;
  size_t k = 0;
  GreedyOptions options;
  std::string label;
};

// Deterministic instance mix: graph shape, variant, budget and the
// constraint load all vary with the seed (mirrors the single-process
// equivalence sweep in tests/core/greedy_equivalence_test.cc).
DiffInstance MakeInstance(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 17);
  UniformGraphParams params;
  params.num_nodes = static_cast<uint32_t>(40 + (seed * 13) % 160);
  params.out_degree = static_cast<uint32_t>(3 + seed % 6);
  params.popularity_skew = 0.4 + 0.4 * static_cast<double>(seed % 4);
  const Variant variant =
      seed % 2 == 0 ? Variant::kIndependent : Variant::kNormalized;
  params.normalized_out_weights = variant == Variant::kNormalized;
  auto graph = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();

  DiffInstance instance{std::move(graph).value(), 0, {}, {}};
  const size_t n = instance.graph.NumNodes();
  instance.k = std::max<size_t>(1, n * (5 + (seed * 7) % 40) / 100);
  instance.options.variant = variant;
  instance.label = "seed=" + std::to_string(seed) +
                   " n=" + std::to_string(n) +
                   " k=" + std::to_string(instance.k);

  // Every third instance carries exclusions; every third of those also
  // stops early at a coverage threshold.
  if (seed % 3 == 1) {
    for (NodeId v = 0; v < n; v += static_cast<NodeId>(7 + seed % 5)) {
      instance.options.force_exclude.push_back(v);
    }
    instance.label += " excl=" +
                      std::to_string(instance.options.force_exclude.size());
    if (seed % 9 == 1) {
      instance.options.stop_at_cover =
          0.35 + 0.05 * static_cast<double>(seed % 5);
      instance.label += " stop";
    }
  }
  return instance;
}

void ExpectByteIdentical(const Solution& dist, const Solution& reference,
                         const std::string& label) {
  EXPECT_EQ(dist.items, reference.items) << label;
  EXPECT_EQ(std::memcmp(&dist.cover, &reference.cover, sizeof(double)), 0)
      << label;
  ASSERT_EQ(dist.cover_after_prefix.size(),
            reference.cover_after_prefix.size())
      << label;
  EXPECT_EQ(std::memcmp(dist.cover_after_prefix.data(),
                        reference.cover_after_prefix.data(),
                        dist.cover_after_prefix.size() * sizeof(double)),
            0)
      << label;
  ASSERT_EQ(dist.item_contributions.size(),
            reference.item_contributions.size())
      << label;
  EXPECT_EQ(std::memcmp(dist.item_contributions.data(),
                        reference.item_contributions.data(),
                        dist.item_contributions.size() * sizeof(double)),
            0)
      << label;
}

// Spawns `num_workers` servers on `graph`, solves, compares against the
// single-process reference.
void RunDistAndCompare(const DiffInstance& instance,
                       const Solution& reference, size_t num_workers,
                       const std::string& simd_level = "",
                       ThreadPool* pool = nullptr) {
  std::vector<std::unique_ptr<WorkerServer>> servers;
  DistSolveOptions dist_options;
  for (size_t i = 0; i < num_workers; ++i) {
    servers.push_back(std::make_unique<WorkerServer>(&instance.graph));
    DistWorkerEndpoint endpoint;
    endpoint.port = servers.back()->port();
    dist_options.workers.push_back(endpoint);
  }
  dist_options.simd_level = simd_level;
  dist_options.pool = pool;
  auto dist = SolveGreedyDistributed(instance.graph, instance.k,
                                     instance.options, dist_options);
  const std::string label =
      instance.label + " workers=" + std::to_string(num_workers) +
      (simd_level.empty() ? "" : " simd=" + simd_level);
  ASSERT_TRUE(dist.ok()) << label << ": " << dist.status().ToString();
  EXPECT_EQ(dist->algorithm, "greedy-dist") << label;
  ExpectByteIdentical(*dist, reference, label);
}

TEST(DistDifferentialTest, EveryWorkerCountIsByteIdenticalToLazy) {
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    const DiffInstance instance = MakeInstance(seed);
    auto reference =
        SolveGreedyLazy(instance.graph, instance.k, instance.options);
    ASSERT_TRUE(reference.ok())
        << instance.label << ": " << reference.status().ToString();
    for (size_t num_workers : kWorkerCounts) {
      RunDistAndCompare(instance, *reference, num_workers);
    }
  }
}

TEST(DistDifferentialTest, ScalarPinnedWorkersMatchDispatchReference) {
  // The kernel tiers are bit-identical, so workers pinned to the scalar
  // tier must reproduce the (dispatch-tier) reference bytes too — this
  // is the cross-tier guarantee the perf gate's pinning relies on.
  for (uint64_t seed = 0; seed < 8; ++seed) {
    const DiffInstance instance = MakeInstance(seed);
    auto reference =
        SolveGreedyLazy(instance.graph, instance.k, instance.options);
    ASSERT_TRUE(reference.ok());
    RunDistAndCompare(instance, *reference, 4, "scalar");
  }
}

TEST(DistDifferentialTest, ThreadPoolFanOutMatchesSerialFanOut) {
  // The propose/commit broadcast order must not matter: a pooled
  // fan-out returns the same bytes as the serial loop.
  ThreadPool pool(4);
  for (uint64_t seed = 0; seed < 6; ++seed) {
    const DiffInstance instance = MakeInstance(seed);
    auto reference =
        SolveGreedyLazy(instance.graph, instance.k, instance.options);
    ASSERT_TRUE(reference.ok());
    RunDistAndCompare(instance, *reference, 4, "", &pool);
  }
}

TEST(DistDifferentialTest, MoreWorkersThanCandidatesStillSolves) {
  // 8 workers over a 10-node graph: most shards hold one candidate,
  // integer partitioning must not starve or double-assign any of them.
  Rng rng(99);
  UniformGraphParams params;
  params.num_nodes = 10;
  params.out_degree = 3;
  auto graph = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(graph.ok());
  DiffInstance instance{std::move(graph).value(), 5, {}, "tiny n=10 k=5"};
  auto reference =
      SolveGreedyLazy(instance.graph, instance.k, instance.options);
  ASSERT_TRUE(reference.ok());
  RunDistAndCompare(instance, *reference, 8);
}

TEST(DistDifferentialTest, EvaluatorFactoryComposesWithGenericDriver) {
  // MakeDistributedEvaluatorFactory is the composition seam: the generic
  // driver over the distributed evaluator IS SolveGreedyDistributed.
  const DiffInstance instance = MakeInstance(4);
  auto reference =
      SolveGreedyLazy(instance.graph, instance.k, instance.options);
  ASSERT_TRUE(reference.ok());

  std::vector<std::unique_ptr<WorkerServer>> servers;
  DistSolveOptions dist_options;
  for (size_t i = 0; i < 2; ++i) {
    servers.push_back(std::make_unique<WorkerServer>(&instance.graph));
    DistWorkerEndpoint endpoint;
    endpoint.port = servers.back()->port();
    dist_options.workers.push_back(endpoint);
  }
  auto solution = SolveGreedyWithEvaluator(
      instance.graph, instance.k, instance.options,
      MakeDistributedEvaluatorFactory(dist_options), "greedy-dist");
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ExpectByteIdentical(*solution, *reference, instance.label + " via factory");
}

TEST(DistDifferentialTest, NoWorkersIsInvalidArgument) {
  const DiffInstance instance = MakeInstance(0);
  DistSolveOptions dist_options;  // empty fleet
  auto solution = SolveGreedyDistributed(instance.graph, instance.k,
                                         instance.options, dist_options);
  EXPECT_FALSE(solution.ok());
}

TEST(DistDifferentialTest, UnreachableWorkerFailsTheSolveFast) {
  // A fleet whose only worker never existed: the first seating must
  // fail with a transport error, not hang.
  const DiffInstance instance = MakeInstance(1);
  DistSolveOptions dist_options;
  DistWorkerEndpoint endpoint;
  endpoint.port = 1;  // reserved, nothing listens here
  dist_options.workers.push_back(endpoint);
  dist_options.client.request_timeout_ms = 200;
  dist_options.client.max_attempts = 2;
  auto solution = SolveGreedyDistributed(instance.graph, instance.k,
                                         instance.options, dist_options);
  EXPECT_FALSE(solution.ok());
}

}  // namespace
}  // namespace dist
}  // namespace prefcover

#endif  // __unix__ || __APPLE__
