// Distributed-solve fault tolerance against REAL worker processes
// (`prefcover dist-worker`, spawned from PREFCOVER_CLI_PATH): a worker
// SIGKILLed mid-solve is detected, its shard is re-assigned to the
// survivors (dist.rebalances ticks), and the final solution is still
// byte-identical to the single-process lazy solve. A second run arms
// the net.* failpoints inside the workers so read/write faults hit the
// wire for real — the ResilientClient retry path plus the exactly-once
// commit must absorb them without changing a byte. The solve fails
// (promptly, not by hanging) only when every worker is gone.

#if !defined(__unix__) && !defined(__APPLE__)
// POSIX-only, like the transport under test.
#else

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "dist/distributed_solver.h"
#include "dist/protocol.h"
#include "graph/graph_generators.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "serve/transport.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "util/string_util.h"

#ifndef PREFCOVER_CLI_PATH
#error "PREFCOVER_CLI_PATH must be defined by the build"
#endif

namespace prefcover {
namespace dist {
namespace {

struct WorkerProc {
  pid_t pid = -1;
  uint16_t port = 0;
  bool killed = false;
};

/// Forks one real `prefcover dist-worker` with stdout on a pipe and
/// parses the DIST_WORKER_PORT=<port> line it prints once listening.
/// `failpoints` (may be empty) lands in the worker's environment only —
/// the coordinator side of this test runs fault-free.
WorkerProc SpawnWorker(const std::string& graph_path,
                       const std::string& failpoints) {
  WorkerProc worker;
  int pipe_fds[2];
  EXPECT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  if (pid < 0) {
    ADD_FAILURE() << "fork: " << std::strerror(errno);
    ::close(pipe_fds[0]);
    ::close(pipe_fds[1]);
    return worker;
  }
  if (pid == 0) {
    ::close(pipe_fds[0]);
    ::dup2(pipe_fds[1], STDOUT_FILENO);
    ::close(pipe_fds[1]);
    if (!failpoints.empty()) {
      ::setenv("PREFCOVER_FAILPOINTS", failpoints.c_str(), 1);
    }
    const std::string graph_flag = "--graph=" + graph_path;
    ::execl(PREFCOVER_CLI_PATH, PREFCOVER_CLI_PATH, "dist-worker",
            graph_flag.c_str(), "--port=0", static_cast<char*>(nullptr));
    ::_exit(127);
  }
  ::close(pipe_fds[1]);
  std::string line;
  char ch;
  while (line.size() < 256) {
    const ssize_t got = ::read(pipe_fds[0], &ch, 1);
    if (got <= 0 || ch == '\n') break;
    line.push_back(ch);
  }
  ::close(pipe_fds[0]);
  worker.pid = pid;
  const std::string prefix = "DIST_WORKER_PORT=";
  if (line.rfind(prefix, 0) == 0) {
    auto port = ParseUint32(line.substr(prefix.size()));
    if (port.ok() && *port > 0 && *port <= 65535) {
      worker.port = static_cast<uint16_t>(*port);
      return worker;
    }
  }
  ADD_FAILURE() << "worker did not announce a port (got '" << line << "')";
  ::kill(pid, SIGKILL);
  ::waitpid(pid, nullptr, 0);
  worker.pid = -1;
  return worker;
}

void SendShutdown(uint16_t port) {
  auto fd = serve::ConnectTcp("127.0.0.1", port, 500);
  if (!fd.ok()) return;
  static const char kShutdown[] = "shutdown\n";
  (void)serve::WriteFully(*fd, kShutdown, sizeof(kShutdown) - 1);
  char buffer[64];
  (void)serve::ReadSome(*fd, buffer, sizeof(buffer));
  ::close(*fd);
}

void Reap(std::vector<WorkerProc>* workers) {
  for (WorkerProc& worker : *workers) {
    if (worker.pid <= 0) continue;
    if (!worker.killed) SendShutdown(worker.port);
    for (int i = 0; i < 200; ++i) {
      if (::waitpid(worker.pid, nullptr, WNOHANG) == worker.pid) {
        worker.pid = -1;
        break;
      }
      ::usleep(10 * 1000);
    }
    if (worker.pid > 0) {
      ::kill(worker.pid, SIGKILL);
      ::waitpid(worker.pid, nullptr, 0);
      worker.pid = -1;
    }
  }
}

void ExpectByteIdentical(const Solution& dist, const Solution& reference) {
  EXPECT_EQ(dist.items, reference.items);
  EXPECT_EQ(std::memcmp(&dist.cover, &reference.cover, sizeof(double)), 0);
  ASSERT_EQ(dist.cover_after_prefix.size(),
            reference.cover_after_prefix.size());
  EXPECT_EQ(std::memcmp(dist.cover_after_prefix.data(),
                        reference.cover_after_prefix.data(),
                        dist.cover_after_prefix.size() * sizeof(double)),
            0);
  ASSERT_EQ(dist.item_contributions.size(),
            reference.item_contributions.size());
  EXPECT_EQ(std::memcmp(dist.item_contributions.data(),
                        reference.item_contributions.data(),
                        dist.item_contributions.size() * sizeof(double)),
            0);
}

class DistChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    Rng rng(2024);
    UniformGraphParams params;
    params.num_nodes = 220;
    params.out_degree = 5;
    params.popularity_skew = 0.8;
    auto graph = GenerateUniformGraph(params, &rng);
    ASSERT_TRUE(graph.ok()) << graph.status().ToString();
    graph_ = new PreferenceGraph(std::move(graph).value());
    graph_path_ =
        new std::string(::testing::TempDir() + "/dist_chaos_graph.pcg");
    ASSERT_TRUE(WriteGraphBinaryFile(*graph_, *graph_path_).ok());
    reference_ = new Solution();
    auto solved = SolveGreedyLazy(*graph_, kBudget, GreedyOptions());
    ASSERT_TRUE(solved.ok()) << solved.status().ToString();
    *reference_ = std::move(solved).value();
  }

  static void TearDownTestSuite() {
    delete graph_;
    delete graph_path_;
    delete reference_;
    graph_ = nullptr;
    graph_path_ = nullptr;
    reference_ = nullptr;
  }

  std::vector<WorkerProc> Spawn(size_t count,
                                const std::string& failpoints = "") {
    std::vector<WorkerProc> workers;
    for (size_t i = 0; i < count; ++i) {
      WorkerProc worker = SpawnWorker(*graph_path_, failpoints);
      if (worker.pid > 0) workers.push_back(worker);
    }
    return workers;
  }

  static DistSolveOptions Fleet(const std::vector<WorkerProc>& workers) {
    DistSolveOptions options;
    for (const WorkerProc& worker : workers) {
      DistWorkerEndpoint endpoint;
      endpoint.port = worker.port;
      options.workers.push_back(endpoint);
    }
    // Tight enough that a SIGKILLed worker is declared dead in well
    // under a second of retrying, long enough for a loaded CI machine.
    options.client.request_timeout_ms = 2000;
    options.client.max_attempts = 3;
    options.client.backoff_max_ms = 50;
    return options;
  }

  static constexpr size_t kBudget = 30;
  static PreferenceGraph* graph_;
  static std::string* graph_path_;
  static Solution* reference_;
};

PreferenceGraph* DistChaosTest::graph_ = nullptr;
std::string* DistChaosTest::graph_path_ = nullptr;
Solution* DistChaosTest::reference_ = nullptr;

TEST_F(DistChaosTest, WorkerKilledMidSolveIsRebalancedByteIdentically) {
  std::vector<WorkerProc> workers = Spawn(4);
  ASSERT_EQ(workers.size(), 4u);
  DistSolveOptions options = Fleet(workers);
  // SIGKILL the last worker the moment round 5 starts: its shard must be
  // re-assigned to the survivors and the solve must not lose a byte.
  WorkerProc* victim = &workers.back();
  options.on_round = [victim](size_t committed) {
    if (victim->killed || committed != 5) return;
    ::kill(victim->pid, SIGKILL);
    ::waitpid(victim->pid, nullptr, 0);
    victim->pid = -1;
    victim->killed = true;
  };

  const auto before = obs::MetricsRegistry::Global().Snapshot();
  auto solution =
      SolveGreedyDistributed(*graph_, kBudget, GreedyOptions(), options);
  Reap(&workers);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ASSERT_TRUE(victim->killed) << "solve ended before the kill round";
  ExpectByteIdentical(*solution, *reference_);

  const auto after = obs::MetricsRegistry::Global().Snapshot();
  EXPECT_GE(after.CounterOr(dist_metric::kWorkerFailures),
            before.CounterOr(dist_metric::kWorkerFailures) + 1);
  EXPECT_GE(after.CounterOr(dist_metric::kRebalances),
            before.CounterOr(dist_metric::kRebalances) + 1);
}

TEST_F(DistChaosTest, NetFaultsInsideWorkersAreAbsorbedByteIdentically) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "built with -DPREFCOVER_ENABLE_FAILPOINTS=OFF";
  }
  // Probabilistic read/write faults inside every worker process. The
  // coordinator's ResilientClient must retry/reconnect through them;
  // worker state persists across connections and commits replay
  // exactly-once, so the bytes cannot drift. (Some workers may get
  // declared dead under an unlucky fault burst — that is the rebalance
  // path again, and identity must still hold.)
  std::vector<WorkerProc> workers =
      Spawn(4, "net.read=error(0.04,7);net.write=error(0.03,13)");
  ASSERT_EQ(workers.size(), 4u);
  DistSolveOptions options = Fleet(workers);
  options.client.max_attempts = 5;

  auto solution =
      SolveGreedyDistributed(*graph_, kBudget, GreedyOptions(), options);
  Reap(&workers);
  ASSERT_TRUE(solution.ok()) << solution.status().ToString();
  ExpectByteIdentical(*solution, *reference_);
}

TEST_F(DistChaosTest, SoleWorkerKilledFailsTheSolvePromptly) {
  std::vector<WorkerProc> workers = Spawn(1);
  ASSERT_EQ(workers.size(), 1u);
  DistSolveOptions options = Fleet(workers);
  options.client.request_timeout_ms = 500;
  options.client.max_attempts = 2;
  WorkerProc* victim = &workers.back();
  options.on_round = [victim](size_t committed) {
    if (victim->killed || committed != 2) return;
    ::kill(victim->pid, SIGKILL);
    ::waitpid(victim->pid, nullptr, 0);
    victim->pid = -1;
    victim->killed = true;
  };

  auto solution =
      SolveGreedyDistributed(*graph_, kBudget, GreedyOptions(), options);
  Reap(&workers);
  // No survivors to rebalance onto: the solve reports the outage.
  EXPECT_FALSE(solution.ok());
}

}  // namespace
}  // namespace dist
}  // namespace prefcover

#endif  // __unix__ || __APPLE__
