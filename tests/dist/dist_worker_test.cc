// DistWorker wire grammar, driven by direct HandleLine calls (no
// sockets): init validation — including the graph-digest instance check
// and the bad-init-leaves-state-intact guarantee — the propose/commit
// sequence discipline, exactly-once commit via the one-deep replay
// cache, prefix resume, and the core identity: a full-range worker
// driven verb-by-verb reproduces SolveGreedyLazy byte-for-byte, and two
// half-range workers merged with the canonical tie-break do too.

#include "dist/worker.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/greedy_solver.h"
#include "dist/protocol.h"
#include "graph/graph_generators.h"
#include "util/random.h"
#include "util/simd_dispatch.h"

namespace prefcover {
namespace dist {
namespace {

PreferenceGraph MakeGraph(uint64_t seed, uint32_t num_nodes = 60) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  UniformGraphParams params;
  params.num_nodes = num_nodes;
  params.out_degree = 4;
  params.popularity_skew = 0.7;
  auto graph = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();
  return std::move(graph).value();
}

/// The init line a coordinator would send: full defaults, overridable
/// shard/prefix for the tests that need them.
std::string InitLine(const PreferenceGraph& graph, size_t k,
                     size_t shard_begin, size_t shard_end,
                     const std::vector<NodeId>& prefix = {},
                     const std::vector<NodeId>& exclude = {}) {
  GreedyOptions options;
  return "init shard=" + std::to_string(shard_begin) + ":" +
         std::to_string(shard_end) +
         " variant=independent simd=" +
         std::string(SimdLevelName(ActiveSimdLevel())) +
         " k=" + std::to_string(k) + " seed_cap=1024" +
         " digest=" + std::to_string(GraphDigest(graph)) +
         " opts=" + std::to_string(GreedyOptionsHash(options, k)) +
         " exclude=" + FormatNodeCsv(exclude) +
         " prefix=" + FormatNodeCsv(prefix);
}

/// HandleLine expecting a normal (non-terminating) exchange.
std::string Call(DistWorker* worker, const std::string& line) {
  bool stop_session = false;
  bool stop_server = false;
  std::string reply = worker->HandleLine(line, &stop_session, &stop_server);
  EXPECT_FALSE(stop_session) << line;
  EXPECT_FALSE(stop_server) << line;
  return reply;
}

/// Asserts `reply` is `OK <verb> ...` and returns its key=value args.
KvArgs ReplyKv(const std::string& reply, const std::string& verb) {
  const std::string prefix = "OK " + verb + " ";
  EXPECT_EQ(reply.rfind(prefix, 0), 0u) << reply;
  return KvArgs(reply.size() > prefix.size() ? reply.substr(prefix.size())
                                             : std::string());
}

TEST(DistWorkerTest, HelloAnnouncesVersionAndInstanceSize) {
  PreferenceGraph graph = MakeGraph(1);
  DistWorker worker(&graph);
  EXPECT_EQ(Call(&worker, "hello"),
            "OK hello prefcover-dist v=" + std::to_string(kProtocolVersion) +
                " nodes=" + std::to_string(graph.NumNodes()));
  EXPECT_FALSE(worker.initialized());
}

TEST(DistWorkerTest, UnknownVerbIsInvalidArgument) {
  PreferenceGraph graph = MakeGraph(1);
  DistWorker worker(&graph);
  EXPECT_EQ(Call(&worker, "frobnicate x=1").rfind("ERR InvalidArgument", 0),
            0u);
}

TEST(DistWorkerTest, SolveVerbsRequireInit) {
  PreferenceGraph graph = MakeGraph(1);
  DistWorker worker(&graph);
  for (const char* line :
       {"propose seq=0", "commit seq=0 node=3", "ckpt", "stats"}) {
    EXPECT_EQ(Call(&worker, line).rfind("ERR FailedPrecondition", 0), 0u)
        << line;
  }
}

TEST(DistWorkerTest, InitRejectsMalformedArguments) {
  PreferenceGraph graph = MakeGraph(2);
  DistWorker worker(&graph);
  const size_t n = graph.NumNodes();
  const std::string good = InitLine(graph, 10, 0, n);
  struct Case {
    const char* label;
    std::string line;
  };
  const Case cases[] = {
      {"missing shard", "init variant=independent simd=scalar k=5 "
                        "seed_cap=8 digest=1 opts=1 exclude=- prefix=-"},
      {"shard not b:e",
       "init shard=5 variant=independent simd=scalar k=5 seed_cap=8 "
       "digest=1 opts=1 exclude=- prefix=-"},
      {"shard inverted", InitLine(graph, 10, 4, 2)},
      {"shard past n", InitLine(graph, 10, 0, n + 1)},
      {"bad variant",
       "init shard=0:" + std::to_string(n) +
           " variant=bogus simd=scalar k=5 seed_cap=8 digest=1 opts=1 "
           "exclude=- prefix=-"},
      {"bad simd",
       "init shard=0:" + std::to_string(n) +
           " variant=independent simd=mmx k=5 seed_cap=8 digest=1 opts=1 "
           "exclude=- prefix=-"},
      {"prefix node out of range",
       InitLine(graph, 10, 0, n, {static_cast<NodeId>(n)})},
      {"prefix longer than k", InitLine(graph, 1, 0, n, {0, 1})},
  };
  for (const Case& c : cases) {
    EXPECT_EQ(Call(&worker, c.line).rfind("ERR ", 0), 0u) << c.label;
    EXPECT_FALSE(worker.initialized()) << c.label;
  }
  // Sanity: the template itself seats fine.
  EXPECT_EQ(Call(&worker, good).rfind("OK init", 0), 0u);
}

TEST(DistWorkerTest, InitRejectsWrongInstanceDigest) {
  PreferenceGraph graph = MakeGraph(3);
  DistWorker worker(&graph);
  std::string line = InitLine(graph, 10, 0, graph.NumNodes());
  // A coordinator solving a different instance: flip one digest bit.
  const std::string real = "digest=" + std::to_string(GraphDigest(graph));
  const std::string wrong =
      "digest=" + std::to_string(GraphDigest(graph) ^ 1);
  const size_t at = line.find(real);
  ASSERT_NE(at, std::string::npos);
  line.replace(at, real.size(), wrong);
  const std::string reply = Call(&worker, line);
  EXPECT_EQ(reply.rfind("ERR FailedPrecondition", 0), 0u) << reply;
  EXPECT_NE(reply.find("digest"), std::string::npos) << reply;
  EXPECT_FALSE(worker.initialized());
}

TEST(DistWorkerTest, BadInitLeavesRunningSolveIntact) {
  PreferenceGraph graph = MakeGraph(4);
  DistWorker worker(&graph);
  ASSERT_EQ(Call(&worker, InitLine(graph, 10, 0, graph.NumNodes()))
                .rfind("OK init", 0),
            0u);
  // Advance one round so there is state to lose.
  const KvArgs proposal = ReplyKv(Call(&worker, "propose seq=0"), "propose");
  auto node = proposal.GetU64("node");
  ASSERT_TRUE(node.ok());
  ASSERT_EQ(Call(&worker,
                 "commit seq=0 node=" + std::to_string(*node))
                .rfind("OK commit", 0),
            0u);
  ASSERT_EQ(worker.seq(), 1u);

  // A rejected re-init must not disturb the seated solve.
  EXPECT_EQ(Call(&worker, InitLine(graph, 10, 4, 2)).rfind("ERR ", 0), 0u);
  EXPECT_TRUE(worker.initialized());
  EXPECT_EQ(worker.seq(), 1u);
  const KvArgs ckpt = ReplyKv(Call(&worker, "ckpt"), "ckpt");
  auto prefix = ckpt.GetString("prefix");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(*prefix, std::to_string(*node));
  // And the solve still advances.
  EXPECT_EQ(Call(&worker, "propose seq=1").rfind("OK propose seq=1", 0), 0u);
}

TEST(DistWorkerTest, ProposeDemandsCurrentSequence) {
  PreferenceGraph graph = MakeGraph(5);
  DistWorker worker(&graph);
  ASSERT_EQ(Call(&worker, InitLine(graph, 10, 0, graph.NumNodes()))
                .rfind("OK init", 0),
            0u);
  EXPECT_EQ(Call(&worker, "propose seq=1").rfind("ERR FailedPrecondition", 0),
            0u);
  // Propose is naturally repeatable at the current sequence: same reply.
  const std::string first = Call(&worker, "propose seq=0");
  EXPECT_EQ(first.rfind("OK propose seq=0 found=1", 0), 0u);
  auto node_of = [](const std::string& reply) {
    auto node = KvArgs(reply.substr(sizeof("OK propose ") - 1)).GetU64("node");
    EXPECT_TRUE(node.ok());
    return node.ok() ? *node : 0;
  };
  EXPECT_EQ(node_of(Call(&worker, "propose seq=0")), node_of(first));
}

TEST(DistWorkerTest, CommitIsExactlyOnceViaReplayCache) {
  PreferenceGraph graph = MakeGraph(6);
  DistWorker worker(&graph);
  ASSERT_EQ(Call(&worker, InitLine(graph, 10, 0, graph.NumNodes()))
                .rfind("OK init", 0),
            0u);
  const KvArgs proposal = ReplyKv(Call(&worker, "propose seq=0"), "propose");
  auto node = proposal.GetU64("node");
  ASSERT_TRUE(node.ok());
  const std::string commit_line =
      "commit seq=0 node=" + std::to_string(*node);

  const std::string first = Call(&worker, commit_line);
  EXPECT_EQ(first.rfind("OK commit seq=1", 0), 0u);
  EXPECT_EQ(worker.seq(), 1u);
  // The ResilientClient retry path: same (seq, node) again. Answered
  // byte-identically from the replay cache, applied zero further times.
  EXPECT_EQ(Call(&worker, commit_line), first);
  EXPECT_EQ(worker.seq(), 1u);
  const KvArgs ckpt = ReplyKv(Call(&worker, "ckpt"), "ckpt");
  auto prefix = ckpt.GetString("prefix");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(*prefix, std::to_string(*node));  // once, not twice

  // A replayed seq with a DIFFERENT node is not a retry — it is a
  // desynchronized coordinator, and must be refused.
  const NodeId other = *node == 0 ? 1 : 0;
  EXPECT_EQ(Call(&worker,
                 "commit seq=0 node=" + std::to_string(other))
                .rfind("ERR FailedPrecondition", 0),
            0u);
  // As is a commit from the future.
  EXPECT_EQ(Call(&worker,
                 "commit seq=5 node=" + std::to_string(other))
                .rfind("ERR FailedPrecondition", 0),
            0u);
  // And a re-commit of an already-retained node at the current seq.
  EXPECT_EQ(Call(&worker,
                 "commit seq=1 node=" + std::to_string(*node))
                .rfind("ERR FailedPrecondition", 0),
            0u);
  EXPECT_EQ(worker.seq(), 1u);
}

TEST(DistWorkerTest, InitWithPrefixResumesMidSolve) {
  PreferenceGraph graph = MakeGraph(7);
  const size_t k = 8;
  auto reference = SolveGreedyLazy(graph, k, GreedyOptions());
  ASSERT_TRUE(reference.ok());
  ASSERT_GE(reference->items.size(), 4u);

  // Seat a worker three commits in — the rebalance re-init path.
  const std::vector<NodeId> prefix(reference->items.begin(),
                                   reference->items.begin() + 3);
  DistWorker worker(&graph);
  const KvArgs init = ReplyKv(
      Call(&worker, InitLine(graph, k, 0, graph.NumNodes(), prefix)), "init");
  auto seq = init.GetU64("seq");
  ASSERT_TRUE(seq.ok());
  EXPECT_EQ(*seq, 3u);
  auto cover = init.GetString("cover");
  ASSERT_TRUE(cover.ok());
  // The replayed cover is byte-identical to the single-process curve.
  EXPECT_EQ(*cover, FormatF64(reference->cover_after_prefix[2]));

  // The next proposal is exactly the fourth single-process selection.
  const KvArgs proposal = ReplyKv(Call(&worker, "propose seq=3"), "propose");
  auto node = proposal.GetU64("node");
  ASSERT_TRUE(node.ok());
  EXPECT_EQ(*node, reference->items[3]);
}

TEST(DistWorkerTest, FullRangeWorkerReproducesLazySolveByteForByte) {
  PreferenceGraph graph = MakeGraph(8, 120);
  const size_t k = 15;
  auto reference = SolveGreedyLazy(graph, k, GreedyOptions());
  ASSERT_TRUE(reference.ok());
  ASSERT_EQ(reference->items.size(), k);

  DistWorker worker(&graph);
  ASSERT_EQ(Call(&worker, InitLine(graph, k, 0, graph.NumNodes()))
                .rfind("OK init", 0),
            0u);
  for (size_t round = 0; round < k; ++round) {
    const KvArgs proposal = ReplyKv(
        Call(&worker, "propose seq=" + std::to_string(round)), "propose");
    auto found = proposal.GetU64("found");
    ASSERT_TRUE(found.ok());
    ASSERT_EQ(*found, 1u) << "round " << round;
    auto node = proposal.GetU64("node");
    auto gain = proposal.GetF64("gain");
    ASSERT_TRUE(node.ok());
    // The gain travels as %.17g so the coordinator's merge compares the
    // exact binary64 the worker computed (the selection and cover
    // assertions below are the byte-identity contract; the gain's own
    // bytes are covered by the tie-break reproducing the reference).
    ASSERT_TRUE(gain.ok());
    EXPECT_GT(*gain, 0.0) << "round " << round;
    EXPECT_EQ(*node, reference->items[round]) << "round " << round;

    const KvArgs commit = ReplyKv(
        Call(&worker, "commit seq=" + std::to_string(round) +
                          " node=" + std::to_string(*node)),
        "commit");
    auto cover = commit.GetString("cover");
    ASSERT_TRUE(cover.ok());
    EXPECT_EQ(*cover, FormatF64(reference->cover_after_prefix[round]))
        << "round " << round;
  }
  // Exhausted budget: the worker no longer finds a candidate only if the
  // shard is spent; either way the prefix is the full solution.
  const KvArgs ckpt = ReplyKv(Call(&worker, "ckpt"), "ckpt");
  auto prefix = ckpt.GetString("prefix");
  ASSERT_TRUE(prefix.ok());
  EXPECT_EQ(*prefix, FormatNodeCsv(reference->items));
}

TEST(DistWorkerTest, TwoShardsMergeToTheGlobalArgmax) {
  PreferenceGraph graph = MakeGraph(9, 150);
  const size_t n = graph.NumNodes();
  const size_t k = 12;
  auto reference = SolveGreedyLazy(graph, k, GreedyOptions());
  ASSERT_TRUE(reference.ok());

  // The GreeDIMM decomposition at the wire level: two workers on
  // complementary shards, coordinator-side merge with the canonical
  // tie-break (max gain, then smaller node id).
  DistWorker left(&graph);
  DistWorker right(&graph);
  ASSERT_EQ(Call(&left, InitLine(graph, k, 0, n / 2)).rfind("OK init", 0),
            0u);
  ASSERT_EQ(Call(&right, InitLine(graph, k, n / 2, n)).rfind("OK init", 0),
            0u);

  std::vector<NodeId> selected;
  for (size_t round = 0; round < k; ++round) {
    bool have_best = false;
    double best_gain = 0.0;
    uint64_t best_node = 0;
    for (DistWorker* worker : {&left, &right}) {
      const KvArgs proposal = ReplyKv(
          Call(worker, "propose seq=" + std::to_string(round)), "propose");
      auto found = proposal.GetU64("found");
      ASSERT_TRUE(found.ok());
      if (*found == 0) continue;
      auto node = proposal.GetU64("node");
      auto gain = proposal.GetF64("gain");
      ASSERT_TRUE(node.ok());
      ASSERT_TRUE(gain.ok());
      if (!have_best || *gain > best_gain ||
          (*gain == best_gain && *node < best_node)) {
        have_best = true;
        best_gain = *gain;
        best_node = *node;
      }
    }
    ASSERT_TRUE(have_best) << "round " << round;
    EXPECT_EQ(best_node, reference->items[round]) << "round " << round;
    for (DistWorker* worker : {&left, &right}) {
      const KvArgs commit = ReplyKv(
          Call(worker, "commit seq=" + std::to_string(round) +
                           " node=" + std::to_string(best_node)),
          "commit");
      auto cover = commit.GetString("cover");
      ASSERT_TRUE(cover.ok());
      // Both workers track the identical full-graph residual state.
      EXPECT_EQ(*cover, FormatF64(reference->cover_after_prefix[round]));
    }
    selected.push_back(static_cast<NodeId>(best_node));
  }
  EXPECT_EQ(selected, reference->items);
}

TEST(DistWorkerTest, ExcludedNodesAreNeverProposed) {
  PreferenceGraph graph = MakeGraph(10, 100);
  const size_t k = 10;
  GreedyOptions options;
  auto unconstrained = SolveGreedyLazy(graph, k, options);
  ASSERT_TRUE(unconstrained.ok());
  // Exclude the unconstrained winner; the worker must route around it.
  const NodeId banned = unconstrained->items[0];
  options.force_exclude = {banned};
  auto reference = SolveGreedyLazy(graph, k, options);
  ASSERT_TRUE(reference.ok());

  DistWorker worker(&graph);
  ASSERT_EQ(Call(&worker,
                 InitLine(graph, k, 0, graph.NumNodes(), {}, {banned}))
                .rfind("OK init", 0),
            0u);
  for (size_t round = 0; round < reference->items.size(); ++round) {
    const KvArgs proposal = ReplyKv(
        Call(&worker, "propose seq=" + std::to_string(round)), "propose");
    auto node = proposal.GetU64("node");
    ASSERT_TRUE(node.ok());
    EXPECT_NE(*node, banned);
    EXPECT_EQ(*node, reference->items[round]) << "round " << round;
    ASSERT_EQ(Call(&worker, "commit seq=" + std::to_string(round) +
                                " node=" + std::to_string(*node))
                  .rfind("OK commit", 0),
              0u);
  }
}

TEST(DistWorkerTest, StatsAccumulateAndCkptReportsPrefix) {
  PreferenceGraph graph = MakeGraph(11);
  DistWorker worker(&graph);
  ASSERT_EQ(Call(&worker, InitLine(graph, 5, 0, graph.NumNodes()))
                .rfind("OK init", 0),
            0u);
  const KvArgs empty_ckpt = ReplyKv(Call(&worker, "ckpt"), "ckpt");
  auto empty_prefix = empty_ckpt.GetString("prefix");
  ASSERT_TRUE(empty_prefix.ok());
  EXPECT_EQ(*empty_prefix, "-");

  ASSERT_EQ(Call(&worker, "propose seq=0").rfind("OK propose", 0), 0u);
  const KvArgs stats = ReplyKv(Call(&worker, "stats"), "stats");
  auto evals = stats.GetU64("evals");
  ASSERT_TRUE(evals.ok());
  // Seeding the CELF heap alone evaluates every candidate once.
  EXPECT_GT(*evals, 0u);
}

TEST(DistWorkerTest, QuitEndsSessionShutdownEndsServer) {
  PreferenceGraph graph = MakeGraph(12);
  DistWorker worker(&graph);
  bool stop_session = false;
  bool stop_server = false;
  EXPECT_EQ(worker.HandleLine("quit", &stop_session, &stop_server),
            "OK bye");
  EXPECT_TRUE(stop_session);
  EXPECT_FALSE(stop_server);
  stop_session = false;
  EXPECT_EQ(worker.HandleLine("shutdown", &stop_session, &stop_server),
            "OK bye");
  EXPECT_TRUE(stop_session);
  EXPECT_TRUE(stop_server);
}

}  // namespace
}  // namespace dist
}  // namespace prefcover
