// Malformed-input corpus: every load path must reject corrupt, truncated
// or absurd inputs with a descriptive Status — never a crash, a hang, an
// unbounded allocation, or a silently wrong in-memory object.

#include <cstring>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "clickstream/clickstream_io.h"
#include "clickstream/streaming_construction.h"
#include "graph/graph_generators.h"
#include "graph/graph_io.h"

namespace prefcover {
namespace {

std::string ValidGraphBytes() {
  PreferenceGraph g = MakePaperExampleGraph();
  std::stringstream buf;
  EXPECT_TRUE(WriteGraphBinary(g, &buf).ok());
  return buf.str();
}

TEST(MalformedGraphTest, TruncationAtEveryOffsetRejected) {
  const std::string bytes = ValidGraphBytes();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    std::stringstream truncated(bytes.substr(0, cut));
    auto read = ReadGraphBinary(&truncated);
    EXPECT_FALSE(read.ok()) << "cut at " << cut;
  }
}

TEST(MalformedGraphTest, SingleByteFlipAtEveryOffsetRejected) {
  // Every byte after the magic is covered by the trailing digest, and the
  // magic itself is compared literally, so no single-byte flip can load.
  const std::string bytes = ValidGraphBytes();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x01);
    std::stringstream in(corrupted);
    auto read = ReadGraphBinary(&in);
    EXPECT_FALSE(read.ok()) << "flip at byte " << i;
  }
}

TEST(MalformedGraphTest, AbsurdNodeCountRejectedWithoutAllocation) {
  // Patch the node-count field (offset 12: 8 magic + 4 version) to 2^64-1.
  // The reader must fail on the short payload, not try to reserve memory
  // for 2^64 nodes.
  std::string bytes = ValidGraphBytes();
  ASSERT_GT(bytes.size(), 20u);
  std::memset(&bytes[12], 0xFF, 8);
  std::stringstream in(bytes);
  auto read = ReadGraphBinary(&in);
  EXPECT_FALSE(read.ok());
}

TEST(MalformedGraphTest, AbsurdEdgeCountRejected) {
  // Edge-count field lives at offset 20.
  std::string bytes = ValidGraphBytes();
  ASSERT_GT(bytes.size(), 28u);
  std::memset(&bytes[20], 0xFF, 8);
  std::stringstream in(bytes);
  auto read = ReadGraphBinary(&in);
  EXPECT_FALSE(read.ok());
}

TEST(MalformedGraphTest, EmptyAndGarbagePrefixRejected) {
  for (const char* garbage :
       {"", "PCG", "PCGRAPH2________", "<html>not a graph</html>",
        "PCGRAPH1"}) {
    std::stringstream in{std::string(garbage)};
    auto read = ReadGraphBinary(&in);
    EXPECT_FALSE(read.ok()) << "input: " << garbage;
  }
}

TEST(MalformedClickstreamTest, BadHeaderRejected) {
  for (const char* text :
       {"not,a,clickstream\n1,click,a\n",
        "session_id,event_type\n",  // too few header columns
        ""}) {
    std::stringstream in{std::string(text)};
    auto read = ReadClickstreamCsv(&in);
    // An empty stream yields an empty clickstream; anything with a wrong
    // header must fail.
    if (std::string(text).empty()) {
      EXPECT_TRUE(read.ok());
    } else {
      EXPECT_FALSE(read.ok()) << "input: " << text;
    }
  }
}

TEST(MalformedClickstreamTest, WrongFieldCountRejected) {
  std::stringstream in{std::string(
      "session_id,event_type,item_id\n1,click\n")};
  auto read = ReadClickstreamCsv(&in);
  EXPECT_TRUE(read.status().IsInvalidArgument());
}

TEST(MalformedClickstreamTest, UnknownEventTypeRejected) {
  std::stringstream in{std::string(
      "session_id,event_type,item_id\n1,view,itemA\n")};
  auto read = ReadClickstreamCsv(&in);
  EXPECT_TRUE(read.status().IsInvalidArgument());
}

TEST(MalformedClickstreamTest, MultiplePurchasesRejected) {
  std::stringstream in{std::string(
      "session_id,event_type,item_id\n"
      "1,click,a\n1,purchase,a\n1,purchase,b\n")};
  auto read = ReadClickstreamCsv(&in);
  EXPECT_TRUE(read.status().IsInvalidArgument());
}

TEST(MalformedClickstreamTest, InterleavedSessionsRejected) {
  std::stringstream in{std::string(
      "session_id,event_type,item_id\n"
      "1,click,a\n2,click,b\n1,click,c\n")};
  auto read = ReadClickstreamCsv(&in);
  EXPECT_TRUE(read.status().IsInvalidArgument());
}

TEST(MalformedClickstreamTest, BadDwellValueRejected) {
  std::stringstream in{std::string(
      "session_id,event_type,item_id,dwell_seconds\n"
      "1,click,a,not_a_number\n")};
  auto read = ReadClickstreamCsv(&in);
  EXPECT_TRUE(read.status().IsInvalidArgument());
}

TEST(MalformedClickstreamTest, StreamingConstructionRejectsSameCorpus) {
  // The streaming path parses the same format and must reject the same
  // malformations (it cannot detect interleaving, which is documented).
  for (const char* text :
       {"not,a,clickstream\n1,click,a\n",
        "session_id,event_type,item_id\n1,click\n",
        "session_id,event_type,item_id\n1,view,itemA\n",
        "session_id,event_type,item_id\n1,purchase,a\n1,purchase,b\n"}) {
    std::stringstream in{std::string(text)};
    auto built = BuildPreferenceGraphStreaming(&in);
    EXPECT_FALSE(built.ok()) << "input: " << text;
  }
}

TEST(MalformedClickstreamTest, MissingStreamingFileIsIOError) {
  auto built = BuildPreferenceGraphStreamingFile(
      ::testing::TempDir() + "/malformed_input_test_missing.csv");
  EXPECT_FALSE(built.ok());
}

}  // namespace
}  // namespace prefcover
