// Corruption-coverage properties of the serialization layers:
//   - every single-bit flip anywhere in a .pcg stream must be detected
//     (error), never silently accepted as a different graph;
//   - CSV round-trips are identity for arbitrary field content.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_generators.h"
#include "graph/graph_io.h"
#include "util/csv.h"
#include "util/random.h"

namespace prefcover {
namespace {

bool GraphsEqual(const PreferenceGraph& a, const PreferenceGraph& b) {
  if (a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges()) {
    return false;
  }
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    if (a.NodeWeight(v) != b.NodeWeight(v)) return false;
    AdjacencyView oa = a.OutNeighbors(v), ob = b.OutNeighbors(v);
    if (oa.size() != ob.size()) return false;
    for (size_t i = 0; i < oa.size(); ++i) {
      if (oa.nodes[i] != ob.nodes[i] || oa.weights[i] != ob.weights[i]) {
        return false;
      }
    }
  }
  return true;
}

TEST(SerializationFuzzTest, EverySingleBitFlipIsDetected) {
  Rng rng(3);
  UniformGraphParams params;
  params.num_nodes = 12;
  params.out_degree = 3;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(*g, &buf).ok());
  const std::string original = buf.str();

  size_t silent_corruptions = 0;
  for (size_t byte = 0; byte < original.size(); ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      std::string corrupted = original;
      corrupted[byte] = static_cast<char>(corrupted[byte] ^ (1 << bit));
      std::stringstream in(corrupted);
      auto read = ReadGraphBinary(&in);
      if (read.ok() && !GraphsEqual(*g, *read)) {
        ++silent_corruptions;
      }
      // A flip in the node-weight/edge-weight payload changes the FNV
      // digest, a flip in the header fails structurally, a flip in the
      // stored checksum mismatches the recomputed one: read.ok() should
      // be false for every flip. (If a flip were somehow undetected, it
      // must at least decode to the identical graph, e.g. flips that
      // cannot occur here; count anything else as a failure.)
      EXPECT_FALSE(read.ok() && !GraphsEqual(*g, *read))
          << "undetected corruption at byte " << byte << " bit " << bit;
    }
  }
  EXPECT_EQ(silent_corruptions, 0u);
}

TEST(SerializationFuzzTest, RandomTruncationsAreDetected) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, &buf).ok());
  const std::string original = buf.str();
  Rng rng(9);
  for (int trial = 0; trial < 200; ++trial) {
    size_t cut = static_cast<size_t>(rng.NextBounded(original.size()));
    std::stringstream in(original.substr(0, cut));
    auto read = ReadGraphBinary(&in);
    EXPECT_FALSE(read.ok()) << "cut at " << cut;
  }
}

TEST(SerializationFuzzTest, CsvRoundTripsArbitraryContent) {
  Rng rng(17);
  const std::string alphabet =
      "abcXYZ0189,\";\n\r\t '|\\~`!@#$%^&*()";
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<std::string> fields;
    size_t num_fields = 1 + rng.NextBounded(6);
    for (size_t f = 0; f < num_fields; ++f) {
      std::string field;
      size_t len = rng.NextBounded(20);
      for (size_t c = 0; c < len; ++c) {
        field += alphabet[rng.NextBounded(alphabet.size())];
      }
      fields.push_back(std::move(field));
    }
    auto parsed = ParseCsvLine(FormatCsvLine(fields));
    ASSERT_TRUE(parsed.ok()) << "trial " << trial;
    EXPECT_EQ(*parsed, fields) << "trial " << trial;
  }
}

TEST(SerializationFuzzTest, CsvReaderWriterStreamRoundTrip) {
  Rng rng(23);
  const std::string alphabet = "ab,\"\n xyz";
  std::vector<std::vector<std::string>> records;
  std::ostringstream out;
  CsvWriter writer(&out);
  for (int r = 0; r < 100; ++r) {
    std::vector<std::string> fields;
    size_t num_fields = 1 + rng.NextBounded(4);
    for (size_t f = 0; f < num_fields; ++f) {
      std::string field;
      size_t len = rng.NextBounded(12);
      for (size_t c = 0; c < len; ++c) {
        field += alphabet[rng.NextBounded(alphabet.size())];
      }
      fields.push_back(std::move(field));
    }
    writer.WriteRecord(fields);
    records.push_back(std::move(fields));
  }
  std::istringstream in(out.str());
  CsvReader reader(&in);
  std::vector<std::string> fields;
  for (const auto& expected : records) {
    ASSERT_TRUE(reader.Next(&fields));
    EXPECT_EQ(fields, expected);
  }
  EXPECT_FALSE(reader.Next(&fields));
  EXPECT_TRUE(reader.status().ok());
}

TEST(SerializationFuzzTest, GraphRoundTripManyRandomGraphs) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Rng rng(seed);
    UniformGraphParams params;
    params.num_nodes = 20 + static_cast<uint32_t>(rng.NextBounded(100));
    params.out_degree = 1 + static_cast<uint32_t>(rng.NextBounded(8));
    params.normalized_out_weights = seed % 2 == 0;
    auto g = GenerateUniformGraph(params, &rng);
    ASSERT_TRUE(g.ok());
    std::stringstream buf;
    ASSERT_TRUE(WriteGraphBinary(*g, &buf).ok());
    auto read = ReadGraphBinary(&buf);
    ASSERT_TRUE(read.ok()) << "seed " << seed;
    EXPECT_TRUE(GraphsEqual(*g, *read)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace prefcover
