// Fuzz tests for the two invariants the CELF executions and the greedy
// guarantees rest on:
//
//   1. Marginal gains are non-increasing as S grows (submodularity of both
//      variants' cover functions) — the property that makes stale-gain
//      pruning exact: a heap entry's stored gain always upper-bounds its
//      true gain.
//   2. GreedyApproximationGuarantee lower-bounds greedy cover against the
//      brute-force optimum on instances small enough to enumerate
//      (n <= 12).
//
// Unlike tests/core/submodularity_test.cc (which checks the set-function
// definition f(S+v) - f(S) via from-scratch evaluation), this fuzzes the
// *incremental* CoverState::GainOf along random growth trajectories — the
// exact quantity the lazy heaps cache.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_solver.h"
#include "core/cover_state.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

class GainDecayFuzzTest
    : public ::testing::TestWithParam<std::tuple<Variant, uint64_t>> {
 protected:
  Variant variant() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(GainDecayFuzzTest, MarginalGainsNeverIncreaseAsSGrows) {
  Rng rng(seed());
  for (int trial = 0; trial < 8; ++trial) {
    UniformGraphParams params;
    params.num_nodes = static_cast<uint32_t>(20 + rng.NextBounded(40));
    params.out_degree = static_cast<uint32_t>(2 + rng.NextBounded(6));
    params.popularity_skew = rng.NextDouble(0.0, 1.5);
    params.normalized_out_weights = variant() == Variant::kNormalized;
    auto g = GenerateUniformGraph(params, &rng);
    ASSERT_TRUE(g.ok());
    const size_t n = g->NumNodes();

    CoverState state(&*g, variant());
    std::vector<double> last_gain(n);
    for (NodeId v = 0; v < n; ++v) last_gain[v] = state.GainOf(v);

    // Grow S along a random insertion order; every unretained node's gain
    // must decay monotonically at every step.
    std::vector<uint32_t> order = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(n), static_cast<uint32_t>(n / 2 + 1));
    for (uint32_t added : order) {
      state.AddNode(added);
      for (NodeId v = 0; v < n; ++v) {
        if (state.IsRetained(v)) continue;
        double gain = state.GainOf(v);
        EXPECT_LE(gain, last_gain[v] + 1e-12)
            << "gain of node " << v << " increased after adding " << added
            << " (trial " << trial << ")";
        EXPECT_GE(gain, -1e-12) << "negative gain for node " << v;
        last_gain[v] = gain;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, GainDecayFuzzTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Values(101, 202, 303)),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

class GuaranteeFuzzTest
    : public ::testing::TestWithParam<std::tuple<Variant, uint64_t>> {
 protected:
  Variant variant() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(GuaranteeFuzzTest, GuaranteeLowerBoundsGreedyAgainstBruteForce) {
  Rng rng(seed());
  for (int trial = 0; trial < 6; ++trial) {
    UniformGraphParams params;
    params.num_nodes = static_cast<uint32_t>(6 + rng.NextBounded(7));  // <= 12
    params.out_degree = static_cast<uint32_t>(2 + rng.NextBounded(3));
    params.popularity_skew = rng.NextDouble(0.0, 1.2);
    params.normalized_out_weights = variant() == Variant::kNormalized;
    auto g = GenerateUniformGraph(params, &rng);
    ASSERT_TRUE(g.ok());
    const size_t n = g->NumNodes();
    const size_t k = 1 + rng.NextBounded(n / 2);

    GreedyOptions greedy_options;
    greedy_options.variant = variant();
    auto greedy = SolveGreedy(*g, k, greedy_options);
    BruteForceOptions bf_options;
    bf_options.variant = variant();
    auto optimal = SolveBruteForce(*g, k, bf_options);
    ASSERT_TRUE(greedy.ok() && optimal.ok());

    double guarantee = GreedyApproximationGuarantee(variant(), k, n);
    EXPECT_GE(greedy->cover, guarantee * optimal->cover - 1e-9)
        << "trial " << trial << " n=" << n << " k=" << k
        << " greedy=" << greedy->cover << " optimal=" << optimal->cover;
    EXPECT_LE(greedy->cover, optimal->cover + 1e-9)
        << "greedy beat the enumerated optimum?!";
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, GuaranteeFuzzTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Values(11, 22, 33)),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace prefcover
