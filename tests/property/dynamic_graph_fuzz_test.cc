// Randomized-operation test: DynamicPreferenceGraph against a trivially
// correct shadow model (maps and sets), over thousands of random
// mutations, then snapshot equivalence.

#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "graph/dynamic_graph.h"
#include "util/random.h"

namespace prefcover {
namespace {

// The obviously-correct reference implementation.
struct ShadowModel {
  struct Item {
    double weight = 0.0;
    bool removed = false;
    std::map<StableId, double> out;
  };
  std::vector<Item> items;

  size_t LiveItems() const {
    size_t n = 0;
    for (const Item& item : items) {
      if (!item.removed) ++n;
    }
    return n;
  }
  size_t LiveEdges() const {
    size_t n = 0;
    for (const Item& item : items) {
      if (!item.removed) n += item.out.size();
    }
    return n;
  }
};

class DynamicGraphFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DynamicGraphFuzzTest, MatchesShadowModelUnderRandomOps) {
  Rng rng(GetParam());
  DynamicPreferenceGraph graph;
  ShadowModel shadow;

  auto random_id = [&]() -> StableId {
    return shadow.items.empty()
               ? 0
               : static_cast<StableId>(rng.NextBounded(shadow.items.size()));
  };

  for (int op = 0; op < 3000; ++op) {
    uint64_t pick = rng.NextBounded(100);
    if (pick < 20 || shadow.items.empty()) {
      double w = rng.NextDouble(0.01, 5.0);
      StableId id = graph.AddItem(w);
      ASSERT_EQ(id, shadow.items.size());
      shadow.items.push_back({w, false, {}});
    } else if (pick < 55) {
      StableId from = random_id(), to = random_id();
      double p = rng.NextDouble(0.01, 1.0);
      Status st = graph.UpsertEdge(from, to, p);
      bool expect_ok = !shadow.items[from].removed &&
                       !shadow.items[to].removed && from != to;
      ASSERT_EQ(st.ok(), expect_ok) << st.ToString();
      if (expect_ok) shadow.items[from].out[to] = p;
    } else if (pick < 70) {
      StableId id = random_id();
      double w = rng.NextDouble(0.01, 5.0);
      Status st = graph.SetItemWeight(id, w);
      bool expect_ok = !shadow.items[id].removed;
      ASSERT_EQ(st.ok(), expect_ok);
      if (expect_ok) shadow.items[id].weight = w;
    } else if (pick < 85) {
      StableId from = random_id(), to = random_id();
      Status st = graph.RemoveEdge(from, to);
      bool from_live = !shadow.items[from].removed;
      bool edge_exists = from_live && shadow.items[from].out.count(to) > 0;
      ASSERT_EQ(st.ok(), edge_exists) << st.ToString();
      if (edge_exists) shadow.items[from].out.erase(to);
    } else if (pick < 93) {
      StableId id = random_id();
      Status st = graph.RemoveItem(id);
      bool expect_ok = !shadow.items[id].removed;
      ASSERT_EQ(st.ok(), expect_ok);
      if (expect_ok) {
        shadow.items[id].removed = true;
        shadow.items[id].out.clear();
        for (auto& item : shadow.items) item.out.erase(id);
      }
    } else {
      // Read-only probes.
      StableId from = random_id(), to = random_id();
      double expected = 0.0;
      if (!shadow.items[from].removed) {
        auto it = shadow.items[from].out.find(to);
        if (it != shadow.items[from].out.end()) expected = it->second;
      }
      ASSERT_DOUBLE_EQ(graph.EdgeProbability(from, to), expected);
      ASSERT_EQ(graph.HasItem(from), !shadow.items[from].removed);
    }
    // Counters stay exact throughout.
    ASSERT_EQ(graph.NumItems(), shadow.LiveItems()) << "op " << op;
    ASSERT_EQ(graph.NumEdges(), shadow.LiveEdges()) << "op " << op;
  }

  // Snapshot equivalence (if any weight survives).
  double total = 0.0;
  for (const auto& item : shadow.items) {
    if (!item.removed) total += item.weight;
  }
  std::vector<StableId> ids;
  auto snap = graph.Snapshot(&ids);
  if (!(total > 0.0) || graph.NumItems() == 0) {
    EXPECT_FALSE(snap.ok());
    return;
  }
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_EQ(snap->NumNodes(), shadow.LiveItems());
  ASSERT_EQ(snap->NumEdges(), shadow.LiveEdges());
  for (NodeId v = 0; v < snap->NumNodes(); ++v) {
    const auto& item = shadow.items[ids[v]];
    ASSERT_FALSE(item.removed);
    ASSERT_NEAR(snap->NodeWeight(v), item.weight / total, 1e-12);
  }
  // Every shadow edge appears with its probability.
  std::map<StableId, NodeId> dense;
  for (NodeId v = 0; v < ids.size(); ++v) dense[ids[v]] = v;
  for (StableId id = 0; id < shadow.items.size(); ++id) {
    const auto& item = shadow.items[id];
    if (item.removed) continue;
    for (const auto& [to, p] : item.out) {
      ASSERT_DOUBLE_EQ(snap->EdgeWeight(dense[id], dense[to]), p);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicGraphFuzzTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace prefcover
