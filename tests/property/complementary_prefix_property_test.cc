// Property test for the incremental-prefix claim behind the complementary
// solver (paper Section 3.2): because greedy's output is ordered, the
// minimal retained set reaching a coverage threshold tau IS the shortest
// greedy prefix with C(prefix) >= tau. SolveCoverageThreshold(kGreedy)
// must therefore agree exactly — same size, same items, same order — with
// SmallestPrefixReaching on a full greedy run, for every tau, on both
// variants, across 30 seeded random graphs.

#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/complementary_solver.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

class ComplementaryPrefixTest
    : public ::testing::TestWithParam<std::tuple<Variant, uint64_t>> {
 protected:
  Variant variant() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }
};

TEST_P(ComplementaryPrefixTest, MinimalSetIsShortestGreedyPrefix) {
  Rng rng(seed() * 0x9E3779B97F4A7C15ULL + 1);
  UniformGraphParams params;
  params.num_nodes = static_cast<uint32_t>(30 + rng.NextBounded(50));
  params.out_degree = static_cast<uint32_t>(2 + rng.NextBounded(5));
  params.popularity_skew = rng.NextDouble(0.0, 1.2);
  params.normalized_out_weights = variant() == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  const size_t n = g->NumNodes();

  // The full greedy ordering: every threshold answer is one of its
  // prefixes.
  GreedyOptions options;
  options.variant = variant();
  auto full = SolveGreedyLazy(*g, n, options);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->items.size(), n);

  for (double tau : {0.05, 0.3, 0.5, 0.75, 0.9, 0.99}) {
    SCOPED_TRACE("tau=" + std::to_string(tau));
    auto result = SolveCoverageThreshold(*g, tau, variant(),
                                         ThresholdAlgorithm::kGreedy);
    ASSERT_TRUE(result.ok()) << result.status().ToString();

    size_t expected = full->SmallestPrefixReaching(tau);
    if (expected <= n) {
      // Reachable: the solver's set is exactly the shortest qualifying
      // prefix, in greedy selection order.
      EXPECT_TRUE(result->reached);
      ASSERT_EQ(result->set_size, expected);
      EXPECT_EQ(result->solution.items, full->PrefixItems(expected));
      EXPECT_GE(result->solution.cover, tau - 1e-12);
      // Minimality: one fewer item falls short of tau.
      if (expected > 0) {
        EXPECT_LT(full->PrefixCover(expected - 1), tau);
      }
    } else {
      // Unreachable: the full achievable solution comes back, flagged.
      EXPECT_FALSE(result->reached);
      EXPECT_LT(result->solution.cover, tau);
    }
  }
}

// Thresholds derived from the solution itself probe the exact boundary:
// tau == C(prefix) must be answered by that prefix (>= is inclusive), and
// tau just above it must cost one more item.
TEST_P(ComplementaryPrefixTest, ExactBoundaryThresholds) {
  Rng rng(seed() ^ 0xABCDEF);
  UniformGraphParams params;
  params.num_nodes = 40;
  params.out_degree = 3;
  params.normalized_out_weights = variant() == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());

  GreedyOptions options;
  options.variant = variant();
  auto full = SolveGreedyLazy(*g, g->NumNodes(), options);
  ASSERT_TRUE(full.ok());

  for (size_t prefix : {size_t{3}, size_t{10}, size_t{25}}) {
    double cover_at_prefix = full->PrefixCover(prefix);
    // Strictly-increasing check only makes sense while gains are positive.
    if (prefix > 0 && cover_at_prefix <= full->PrefixCover(prefix - 1)) {
      continue;
    }
    SCOPED_TRACE("prefix=" + std::to_string(prefix));
    auto at = SolveCoverageThreshold(*g, cover_at_prefix, variant(),
                                     ThresholdAlgorithm::kGreedy);
    ASSERT_TRUE(at.ok());
    EXPECT_TRUE(at->reached);
    EXPECT_EQ(at->set_size, full->SmallestPrefixReaching(cover_at_prefix));
    EXPECT_LE(at->set_size, prefix);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, ComplementaryPrefixTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Range(uint64_t{1}, uint64_t{31})),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) +
             "_seed" + std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace prefcover
