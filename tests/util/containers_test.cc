// Tests for TopKHeap, Bitset, string_util, TablePrinter, timer formatting.

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "util/bitset.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"
#include "util/top_k_heap.h"

namespace prefcover {
namespace {

TEST(TopKHeapTest, KeepsKBest) {
  TopKHeap heap(3);
  for (uint32_t id = 0; id < 10; ++id) {
    heap.Push(id, static_cast<double>(id));
  }
  auto out = heap.Extract();
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].id, 9u);
  EXPECT_EQ(out[1].id, 8u);
  EXPECT_EQ(out[2].id, 7u);
}

TEST(TopKHeapTest, FewerThanKItems) {
  TopKHeap heap(10);
  heap.Push(1, 5.0);
  heap.Push(2, 3.0);
  auto out = heap.Extract();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
}

TEST(TopKHeapTest, ZeroCapacity) {
  TopKHeap heap(0);
  heap.Push(1, 100.0);
  EXPECT_TRUE(heap.Extract().empty());
}

TEST(TopKHeapTest, TiesPreferSmallerId) {
  TopKHeap heap(2);
  heap.Push(5, 1.0);
  heap.Push(3, 1.0);
  heap.Push(9, 1.0);
  heap.Push(1, 1.0);
  auto out = heap.Extract();
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].id, 1u);
  EXPECT_EQ(out[1].id, 3u);
}

TEST(TopKHeapTest, MatchesSortForRandomInput) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    TopKHeap heap(7);
    std::vector<TopKHeap::Entry> all;
    uint64_t state = seed;
    for (uint32_t id = 0; id < 100; ++id) {
      state = state * 6364136223846793005ULL + 1;
      double score = static_cast<double>((state >> 33) % 50);
      heap.Push(id, score);
      all.push_back({id, score});
    }
    std::sort(all.begin(), all.end(),
              [](const TopKHeap::Entry& a, const TopKHeap::Entry& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.id < b.id;
              });
    auto out = heap.Extract();
    ASSERT_EQ(out.size(), 7u);
    for (size_t i = 0; i < 7; ++i) {
      EXPECT_EQ(out[i].id, all[i].id) << "seed " << seed << " pos " << i;
    }
  }
}

TEST(BitsetTest, SetTestClear) {
  Bitset bits(200);
  EXPECT_EQ(bits.size(), 200u);
  EXPECT_FALSE(bits.Test(0));
  EXPECT_FALSE(bits.Test(199));
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(199);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(199));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Clear(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(BitsetTest, ResetClearsEverything) {
  Bitset bits(100);
  for (size_t i = 0; i < 100; i += 3) bits.Set(i);
  bits.Reset();
  EXPECT_EQ(bits.Count(), 0u);
}

TEST(BitsetTest, WordBoundarySizes) {
  for (size_t n : {1u, 63u, 64u, 65u, 128u}) {
    Bitset bits(n);
    bits.Set(n - 1);
    EXPECT_TRUE(bits.Test(n - 1));
    EXPECT_EQ(bits.Count(), 1u);
  }
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString(",x,", ','),
            (std::vector<std::string>{"", "x", ""}));
  EXPECT_EQ(SplitString("", ','), std::vector<std::string>{""});
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  abc  "), "abc");
  EXPECT_EQ(TrimWhitespace("\t\nx\r "), "x");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace("no-trim"), "no-trim");
}

TEST(StringUtilTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("hello.csv", "hello"));
  EXPECT_FALSE(StartsWith("hi", "hello"));
  EXPECT_TRUE(EndsWith("hello.csv", ".csv"));
  EXPECT_FALSE(EndsWith("csv", "hello.csv"));
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-7").value(), -7);
  EXPECT_EQ(ParseInt64(" 13 ").value(), 13);
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("1.5").ok());
}

TEST(StringUtilTest, ParseUint32Range) {
  EXPECT_EQ(ParseUint32("4294967295").value(), 4294967295u);
  EXPECT_TRUE(ParseUint32("4294967296").status().IsOutOfRange());
  EXPECT_TRUE(ParseUint32("-1").status().IsOutOfRange());
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("0.25").value(), 0.25);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -1e-3);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "v"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer", "22"});
  std::ostringstream out;
  table.Print(&out, "Title");
  std::string s = out.str();
  EXPECT_NE(s.find("Title"), std::string::npos);
  EXPECT_NE(s.find("| name   | v  |"), std::string::npos);
  EXPECT_NE(s.find("| longer | 22 |"), std::string::npos);
}

TEST(TablePrinterTest, CsvOutput) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "x,y"});
  std::ostringstream out;
  table.PrintCsv(&out);
  EXPECT_EQ(out.str(), "a,b\n1,\"x,y\"\n");
}

TEST(TablePrinterTest, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Percent(0.873), "87.3%");
  EXPECT_EQ(TablePrinter::Percent(0.5, 0), "50%");
  EXPECT_EQ(TablePrinter::Scientific(12345.0, 2), "1.23e+04");
}

TEST(TimerTest, FormatDurationUnits) {
  EXPECT_EQ(FormatDuration(5e-9), "5.0 ns");
  EXPECT_EQ(FormatDuration(2.5e-5), "25.00 us");
  EXPECT_EQ(FormatDuration(0.0031), "3.10 ms");
  EXPECT_EQ(FormatDuration(1.5), "1.50 s");
  EXPECT_EQ(FormatDuration(600.0), "10.0 min");
}

TEST(TimerTest, FormatCount) {
  EXPECT_EQ(FormatCount(0), "0");
  EXPECT_EQ(FormatCount(999), "999");
  EXPECT_EQ(FormatCount(1000), "1,000");
  EXPECT_EQ(FormatCount(1921701), "1,921,701");
  EXPECT_EQ(FormatCount(1234567890), "1,234,567,890");
}

TEST(TimerTest, StopwatchAdvances) {
  Stopwatch sw;
  double t1 = sw.ElapsedSeconds();
  // Burn a little CPU.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  double t2 = sw.ElapsedSeconds();
  EXPECT_GE(t2, t1);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), t2 + 1.0);
}

}  // namespace
}  // namespace prefcover
