#include "util/failpoint.h"

#include <chrono>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "util/fs.h"

namespace prefcover {
namespace {

// Every test disarms on entry and exit: the registry is process-global,
// and a leaked armed failpoint would inject faults into unrelated tests.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::Enabled()) {
      GTEST_SKIP() << "built with -DPREFCOVER_ENABLE_FAILPOINTS=OFF";
    }
    failpoint::Clear();
  }
  void TearDown() override { failpoint::Clear(); }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/failpoint_test_" + name;
  }
};

TEST_F(FailpointTest, UnarmedSiteIsTransparent) {
  // "fs.write_atomic" is planted at the head of WriteFileAtomic.
  std::string path = TempPath("unarmed.txt");
  EXPECT_TRUE(WriteFileAtomic(path, "payload").ok());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 0u);
}

TEST_F(FailpointTest, ErrorActionInjectsIOError) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  std::string path = TempPath("error.txt");
  Status st = WriteFileAtomic(path, "payload");
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.ToString().find("fs.write_atomic"), std::string::npos);
  // The injection fires before any filesystem work: no file appears.
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 1u);
  // Still armed: every hit fails.
  EXPECT_TRUE(WriteFileAtomic(path, "payload").IsIOError());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 2u);
}

TEST_F(FailpointTest, ErrorOnceFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error_once").ok());
  std::string path = TempPath("error_once.txt");
  EXPECT_TRUE(WriteFileAtomic(path, "first").IsIOError());
  EXPECT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_TRUE(WriteFileAtomic(path, "third").ok());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 1u);
}

TEST_F(FailpointTest, DelayActionSleeps) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "delay(30ms)").ok());
  std::string path = TempPath("delay.txt");
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(WriteFileAtomic(path, "payload").ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            30);
}

TEST_F(FailpointTest, OffActionIsInert) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "off").ok());
  EXPECT_TRUE(WriteFileAtomic(TempPath("off.txt"), "payload").ok());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 0u);
}

TEST_F(FailpointTest, ClearDisarms) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  failpoint::Clear();
  EXPECT_TRUE(WriteFileAtomic(TempPath("cleared.txt"), "payload").ok());
}

TEST_F(FailpointTest, SpecParsesMultipleEntries) {
  ASSERT_TRUE(failpoint::LoadFromSpec(
                  "fs.write_atomic=error; graph_io.read = off ;;")
                  .ok());
  EXPECT_TRUE(WriteFileAtomic(TempPath("spec.txt"), "x").IsIOError());
}

TEST_F(FailpointTest, SpecReplacesPreviousSet) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  ASSERT_TRUE(failpoint::LoadFromSpec("graph_io.read=error").ok());
  // The old entry is gone wholesale, not merely turned off.
  EXPECT_TRUE(WriteFileAtomic(TempPath("replaced.txt"), "x").ok());
}

TEST_F(FailpointTest, EmptySpecClears) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  ASSERT_TRUE(failpoint::LoadFromSpec("").ok());
  EXPECT_TRUE(WriteFileAtomic(TempPath("empty_spec.txt"), "x").ok());
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_TRUE(failpoint::LoadFromSpec("no_equals_sign").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("=error").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("site=explode").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("site=delay(ms)").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("site=delay(-5ms)").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("site=delay(999999ms)").IsInvalidArgument());
}

TEST_F(FailpointTest, UnknownActionLeavesRegistryUntouched) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("fs.write_atomic=bogus").IsInvalidArgument());
  // The failed load must not have replaced the armed set.
  EXPECT_TRUE(WriteFileAtomic(TempPath("atomic_load.txt"), "x").IsIOError());
}

}  // namespace
}  // namespace prefcover
