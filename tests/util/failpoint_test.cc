#include "util/failpoint.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/fs.h"

namespace prefcover {
namespace {

// Every test disarms on entry and exit: the registry is process-global,
// and a leaked armed failpoint would inject faults into unrelated tests.
class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!failpoint::Enabled()) {
      GTEST_SKIP() << "built with -DPREFCOVER_ENABLE_FAILPOINTS=OFF";
    }
    failpoint::Clear();
  }
  void TearDown() override { failpoint::Clear(); }

  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/failpoint_test_" + name;
  }
};

TEST_F(FailpointTest, UnarmedSiteIsTransparent) {
  // "fs.write_atomic" is planted at the head of WriteFileAtomic.
  std::string path = TempPath("unarmed.txt");
  EXPECT_TRUE(WriteFileAtomic(path, "payload").ok());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 0u);
}

TEST_F(FailpointTest, ErrorActionInjectsIOError) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  std::string path = TempPath("error.txt");
  Status st = WriteFileAtomic(path, "payload");
  EXPECT_TRUE(st.IsIOError()) << st.ToString();
  EXPECT_NE(st.ToString().find("fs.write_atomic"), std::string::npos);
  // The injection fires before any filesystem work: no file appears.
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 1u);
  // Still armed: every hit fails.
  EXPECT_TRUE(WriteFileAtomic(path, "payload").IsIOError());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 2u);
}

TEST_F(FailpointTest, ErrorOnceFiresExactlyOnce) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error_once").ok());
  std::string path = TempPath("error_once.txt");
  EXPECT_TRUE(WriteFileAtomic(path, "first").IsIOError());
  EXPECT_TRUE(WriteFileAtomic(path, "second").ok());
  EXPECT_TRUE(WriteFileAtomic(path, "third").ok());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 1u);
}

TEST_F(FailpointTest, DelayActionSleeps) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "delay(30ms)").ok());
  std::string path = TempPath("delay.txt");
  auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(WriteFileAtomic(path, "payload").ok());
  auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            30);
}

TEST_F(FailpointTest, OffActionIsInert) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "off").ok());
  EXPECT_TRUE(WriteFileAtomic(TempPath("off.txt"), "payload").ok());
  EXPECT_EQ(failpoint::HitCount("fs.write_atomic"), 0u);
}

TEST_F(FailpointTest, ClearDisarms) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  failpoint::Clear();
  EXPECT_TRUE(WriteFileAtomic(TempPath("cleared.txt"), "payload").ok());
}

TEST_F(FailpointTest, SpecParsesMultipleEntries) {
  ASSERT_TRUE(failpoint::LoadFromSpec(
                  "fs.write_atomic=error; graph_io.read = off ;;")
                  .ok());
  EXPECT_TRUE(WriteFileAtomic(TempPath("spec.txt"), "x").IsIOError());
}

TEST_F(FailpointTest, SpecReplacesPreviousSet) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  ASSERT_TRUE(failpoint::LoadFromSpec("graph_io.read=error").ok());
  // The old entry is gone wholesale, not merely turned off.
  EXPECT_TRUE(WriteFileAtomic(TempPath("replaced.txt"), "x").ok());
}

TEST_F(FailpointTest, EmptySpecClears) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  ASSERT_TRUE(failpoint::LoadFromSpec("").ok());
  EXPECT_TRUE(WriteFileAtomic(TempPath("empty_spec.txt"), "x").ok());
}

TEST_F(FailpointTest, MalformedSpecsRejected) {
  EXPECT_TRUE(failpoint::LoadFromSpec("no_equals_sign").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("=error").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("site=explode").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("site=delay(ms)").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("site=delay(-5ms)").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("site=delay(999999ms)").IsInvalidArgument());
}

TEST_F(FailpointTest, UnknownActionLeavesRegistryUntouched) {
  ASSERT_TRUE(failpoint::Set("fs.write_atomic", "error").ok());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("fs.write_atomic=bogus").IsInvalidArgument());
  // The failed load must not have replaced the armed set.
  EXPECT_TRUE(WriteFileAtomic(TempPath("atomic_load.txt"), "x").IsIOError());
}

// Records the fire/pass pattern of a site over `n` evaluations through
// the boolean macro (the one the socket shims use).
std::vector<bool> FireSequence(const char* name, int n) {
  std::vector<bool> fires;
  fires.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    fires.push_back(PREFCOVER_FAILPOINT_TRIGGERED(name));
  }
  return fires;
}

TEST_F(FailpointTest, ErrorProbSequenceIsDeterministicAndReplayable) {
  ASSERT_TRUE(failpoint::Set("test.prob", "error(0.5, 123)").ok());
  std::vector<bool> first = FireSequence("test.prob", 64);
  // p=0.5 over 64 draws: both outcomes all-but-certainly present (the
  // seeded stream makes this exact, not flaky).
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);

  // Re-arming the identical spec replays the identical stream: the
  // injection pattern is a pure function of (p, seed).
  failpoint::Clear();
  ASSERT_TRUE(failpoint::Set("test.prob", "error(0.5, 123)").ok());
  EXPECT_EQ(FireSequence("test.prob", 64), first);

  // A different seed gives a different stream (64 identical draws from
  // independent streams would be a 2^-64 coincidence).
  failpoint::Clear();
  ASSERT_TRUE(failpoint::Set("test.prob", "error(0.5, 124)").ok());
  EXPECT_NE(FireSequence("test.prob", 64), first);
}

TEST_F(FailpointTest, ErrorProbEdgeProbabilities) {
  ASSERT_TRUE(failpoint::Set("test.prob", "error(0,9)").ok());
  std::vector<bool> never = FireSequence("test.prob", 32);
  EXPECT_EQ(std::count(never.begin(), never.end(), true), 0);

  ASSERT_TRUE(failpoint::Set("test.prob", "error(1,9)").ok());
  std::vector<bool> always = FireSequence("test.prob", 32);
  EXPECT_EQ(std::count(always.begin(), always.end(), true), 32);
}

TEST_F(FailpointTest, EveryNFiresOnExactCadence) {
  ASSERT_TRUE(failpoint::Set("test.every", "every(3)").ok());
  std::vector<bool> fires = FireSequence("test.every", 9);
  std::vector<bool> expected = {false, false, true, false, false,
                                true,  false, false, true};
  EXPECT_EQ(fires, expected);
  EXPECT_EQ(failpoint::HitCount("test.every"), 9u);
}

TEST_F(FailpointTest, EveryOneFiresAlways) {
  ASSERT_TRUE(failpoint::Set("test.every", "every(1)").ok());
  std::vector<bool> fires = FireSequence("test.every", 4);
  EXPECT_EQ(std::count(fires.begin(), fires.end(), true), 4);
}

TEST_F(FailpointTest, ProbabilisticAndPeriodicSpecsRejected) {
  EXPECT_TRUE(failpoint::LoadFromSpec("s=error(1.5,1)").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("s=error(-0.1,1)").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("s=error(nan,1)").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("s=error(0.5)").IsInvalidArgument());
  EXPECT_TRUE(
      failpoint::LoadFromSpec("s=error(0.5,1,2)").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("s=every(0)").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("s=every(-2)").IsInvalidArgument());
  EXPECT_TRUE(failpoint::LoadFromSpec("s=every(x)").IsInvalidArgument());
}

}  // namespace
}  // namespace prefcover
