#include "util/fs.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/fs_test_" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(WriteFileAtomicTest, CreatesFileWithExactContents) {
  std::string path = TempPath("create.bin");
  std::string payload("binary\0payload\xff", 15);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  EXPECT_EQ(Slurp(path), payload);
}

TEST(WriteFileAtomicTest, ReplacesExistingContentsWholesale) {
  std::string path = TempPath("replace.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "a much longer original payload").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "short").ok());
  // Full replacement, not an in-place overwrite leaving a stale tail.
  EXPECT_EQ(Slurp(path), "short");
}

TEST(WriteFileAtomicTest, EmptyContentsAllowed) {
  std::string path = TempPath("empty.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "previous").ok());
  ASSERT_TRUE(WriteFileAtomic(path, "").ok());
  EXPECT_EQ(Slurp(path), "");
}

TEST(WriteFileAtomicTest, LeavesNoTempFileBehind) {
  std::string path = TempPath("noleak.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "payload").ok());
  // The temp name is `<path>.tmp.<pid>`; this process's pid is the only
  // one that could have written here.
  std::string temp = path + ".tmp." + std::to_string(::getpid());
  std::ifstream in(temp);
  EXPECT_FALSE(in.good());
}

TEST(WriteFileAtomicTest, MissingDirectoryFails) {
  Status st = WriteFileAtomic("/nonexistent_dir_zzz/file.txt", "x");
  EXPECT_FALSE(st.ok());
}

TEST(WriteFileAtomicTest, StreamingWriterRoundTrips) {
  std::string path = TempPath("stream.txt");
  ASSERT_TRUE(WriteFileAtomic(path,
                              [](std::ostream* out) {
                                *out << "line one\n"
                                     << 42 << "\n";
                                return Status::OK();
                              })
                  .ok());
  EXPECT_EQ(Slurp(path), "line one\n42\n");
}

TEST(WriteFileAtomicTest, WriterErrorLeavesTargetUntouched) {
  std::string path = TempPath("writer_error.txt");
  ASSERT_TRUE(WriteFileAtomic(path, "original").ok());
  Status st = WriteFileAtomic(path, [](std::ostream* out) {
    *out << "partial garbage that must never land";
    return Status::IOError("writer failed midway");
  });
  EXPECT_TRUE(st.IsIOError());
  EXPECT_EQ(Slurp(path), "original");
}

TEST(ReadFileToStringTest, RoundTripsBinary) {
  std::string path = TempPath("read.bin");
  std::string payload("\x00\x01\x02zzz\n\r\n", 9);
  ASSERT_TRUE(WriteFileAtomic(path, payload).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, payload);
}

TEST(ReadFileToStringTest, MissingFileIsIOError) {
  auto read = ReadFileToString(TempPath("does_not_exist.bin"));
  EXPECT_TRUE(read.status().IsIOError());
}

TEST(Crc32Test, KnownAnswer) {
  // The canonical CRC-32 (IEEE 802.3) check value.
  const char* data = "123456789";
  EXPECT_EQ(Crc32(data, 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, ChainingMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t one_shot = Crc32(data.data(), data.size());
  uint32_t chained = Crc32(data.data(), 10);
  chained = Crc32(data.data() + 10, data.size() - 10, chained);
  EXPECT_EQ(chained, one_shot);
}

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::string data = "checkpoint payload bytes";
  uint32_t clean = Crc32(data.data(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    std::string flipped = data;
    flipped[i] = static_cast<char>(flipped[i] ^ 0x01);
    EXPECT_NE(Crc32(flipped.data(), flipped.size()), clean)
        << "flip at byte " << i;
  }
}

}  // namespace
}  // namespace prefcover
