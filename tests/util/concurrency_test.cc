// Tests for ThreadPool, ParallelFor and ParallelArgMax.

#include <atomic>
#include <limits>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

TEST(ThreadPoolTest, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ExecutesAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.WaitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPoolTest, TasksCanSubmitTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&pool, &counter] {
    counter.fetch_add(1);
    for (int i = 0; i < 5; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 6);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultThreadCountPositive) {
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
}

class ParallelForTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelForTest, VisitsEveryIndexExactlyOnce) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  ParallelFor(&pool, 0, kN, [&visits](size_t i) {
    visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(visits[i].load(), 1) << "index " << i;
  }
}

TEST_P(ParallelForTest, SubrangeHonored) {
  const size_t threads = GetParam();
  ThreadPool pool(threads);
  std::vector<std::atomic<int>> visits(100);
  ParallelFor(&pool, 10, 20, [&visits](size_t i) {
    visits[i].fetch_add(1);
  });
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(visits[i].load(), (i >= 10 && i < 20) ? 1 : 0);
  }
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelForTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelForTest, NullPoolRunsInline) {
  std::vector<int> visits(50, 0);
  ParallelFor(nullptr, 0, 50, [&visits](size_t i) { ++visits[i]; });
  for (int v : visits) EXPECT_EQ(v, 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, [&called](size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForChunkedTest, ChunksPartitionTheRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<size_t, size_t>> chunks;
  ParallelForChunked(&pool, 0, 103,
                     [&](size_t lo, size_t hi, size_t /*worker*/) {
                       std::lock_guard<std::mutex> lock(mu);
                       chunks.push_back({lo, hi});
                     });
  std::sort(chunks.begin(), chunks.end());
  size_t expected_lo = 0;
  for (const auto& [lo, hi] : chunks) {
    EXPECT_EQ(lo, expected_lo);
    EXPECT_GT(hi, lo);
    expected_lo = hi;
  }
  EXPECT_EQ(expected_lo, 103u);
}

TEST(ParallelForChunkedTest, WorkerIndicesAreDistinct) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<size_t> workers;
  ParallelForChunked(&pool, 0, 100,
                     [&](size_t, size_t, size_t worker) {
                       std::lock_guard<std::mutex> lock(mu);
                       workers.push_back(worker);
                     });
  std::sort(workers.begin(), workers.end());
  for (size_t i = 0; i < workers.size(); ++i) {
    EXPECT_EQ(workers[i], i);
  }
}

class ParallelArgMaxTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelArgMaxTest, FindsUniqueMaximum) {
  ThreadPool pool(GetParam());
  std::vector<double> scores(500);
  for (size_t i = 0; i < scores.size(); ++i) {
    scores[i] = static_cast<double>((i * 37) % 499);
  }
  scores[371] = 1000.0;
  double best = 0.0;
  size_t arg = ParallelArgMax(&pool, scores.size(),
                              [&scores](size_t i) { return scores[i]; },
                              &best);
  EXPECT_EQ(arg, 371u);
  EXPECT_DOUBLE_EQ(best, 1000.0);
}

TEST_P(ParallelArgMaxTest, TieBreaksToSmallerIndex) {
  ThreadPool pool(GetParam());
  std::vector<double> scores(100, 1.0);
  scores[30] = 5.0;
  scores[70] = 5.0;
  double best = 0.0;
  size_t arg = ParallelArgMax(&pool, scores.size(),
                              [&scores](size_t i) { return scores[i]; },
                              &best);
  EXPECT_EQ(arg, 30u);
}

TEST_P(ParallelArgMaxTest, AllSkippedReturnsN) {
  ThreadPool pool(GetParam());
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  double best = 0.0;
  size_t arg = ParallelArgMax(&pool, 50, [](size_t) { return kNegInf; },
                              &best);
  EXPECT_EQ(arg, 50u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelArgMaxTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelArgMaxTest, TieBreakStableUnderContention) {
  // The solvers' determinism rests on "equal scores -> smaller index
  // wins" holding for every chunk/thread interleaving. Hammer it: many
  // equal-score candidates, a wide pool, 100 repetitions.
  ThreadPool pool(8);
  std::vector<double> scores(1024, 1.0);
  scores[97] = 7.0;
  scores[98] = 7.0;
  scores[641] = 7.0;  // equal maxima far apart, in different chunks
  for (int rep = 0; rep < 100; ++rep) {
    double best = 0.0;
    size_t arg = ParallelArgMax(&pool, scores.size(),
                                [&scores](size_t i) { return scores[i]; },
                                &best);
    ASSERT_EQ(arg, 97u) << "rep " << rep;
    ASSERT_DOUBLE_EQ(best, 7.0);
  }
  // All-equal input: index 0 must win every time.
  for (int rep = 0; rep < 100; ++rep) {
    double best = 0.0;
    size_t arg = ParallelArgMax(&pool, 512, [](size_t) { return 3.5; },
                                &best);
    ASSERT_EQ(arg, 0u) << "rep " << rep;
  }
}

TEST(ParallelArgMaxTest, MatchesSerialForManySeeds) {
  ThreadPool pool(4);
  for (uint64_t seed = 0; seed < 20; ++seed) {
    std::vector<double> scores(211);
    uint64_t state = seed * 2654435761u + 1;
    for (auto& s : scores) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      s = static_cast<double>(state >> 40);
    }
    size_t serial_arg = 0;
    for (size_t i = 1; i < scores.size(); ++i) {
      if (scores[i] > scores[serial_arg]) serial_arg = i;
    }
    double best = 0.0;
    size_t parallel_arg = ParallelArgMax(
        &pool, scores.size(), [&scores](size_t i) { return scores[i]; },
        &best);
    EXPECT_EQ(parallel_arg, serial_arg) << "seed " << seed;
    EXPECT_DOUBLE_EQ(best, scores[serial_arg]);
  }
}

class ParallelArgMaxBatchTest : public ::testing::TestWithParam<size_t> {};

TEST_P(ParallelArgMaxBatchTest, EvaluatesEveryCandidateAndFindsMax) {
  ThreadPool pool(GetParam());
  // Candidates in heap-pop-like (arbitrary, descending) order.
  std::vector<size_t> candidates = {90, 51, 12, 77, 3, 68, 25, 44};
  std::vector<double> scores;
  double best = 0.0;
  size_t pos = ParallelArgMaxBatch(
      &pool, candidates,
      [](size_t v) { return static_cast<double>(v % 10); }, &scores, &best);
  ASSERT_EQ(scores.size(), candidates.size());
  for (size_t j = 0; j < candidates.size(); ++j) {
    EXPECT_DOUBLE_EQ(scores[j], static_cast<double>(candidates[j] % 10));
  }
  // Max score 8.0 is attained by 68 only.
  EXPECT_EQ(candidates[pos], 68u);
  EXPECT_DOUBLE_EQ(best, 8.0);
}

TEST_P(ParallelArgMaxBatchTest, TieBreaksToSmallerCandidateValue) {
  ThreadPool pool(GetParam());
  // 44, 12 and 77 all score 9; the smaller candidate *value* (12) must
  // win even though it sits mid-list — heap-pop order is arbitrary, so
  // position cannot be the tie key.
  std::vector<size_t> candidates = {44, 51, 12, 90, 77};
  auto score = [](size_t v) {
    return (v == 44 || v == 12 || v == 77) ? 9.0 : 1.0;
  };
  double best = 0.0;
  size_t pos = ParallelArgMaxBatch(&pool, candidates, score, nullptr, &best);
  EXPECT_EQ(candidates[pos], 12u);
  EXPECT_DOUBLE_EQ(best, 9.0);
}

TEST_P(ParallelArgMaxBatchTest, AllSkippedOrEmptyReturnsSize) {
  ThreadPool pool(GetParam());
  constexpr double kNegInf = -std::numeric_limits<double>::infinity();
  std::vector<size_t> candidates = {5, 6, 7};
  std::vector<double> scores;
  size_t pos = ParallelArgMaxBatch(&pool, candidates,
                                   [](size_t) { return kNegInf; }, &scores,
                                   nullptr);
  EXPECT_EQ(pos, candidates.size());
  ASSERT_EQ(scores.size(), 3u);
  std::vector<size_t> empty;
  EXPECT_EQ(ParallelArgMaxBatch(&pool, empty,
                                [](size_t) { return 1.0; }, nullptr,
                                nullptr),
            0u);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, ParallelArgMaxBatchTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(ParallelArgMaxBatchTest, NullPoolRunsInline) {
  std::vector<size_t> candidates = {9, 4, 2, 7};
  std::vector<double> scores;
  double best = 0.0;
  size_t pos = ParallelArgMaxBatch(
      nullptr, candidates,
      [](size_t v) { return static_cast<double>(v); }, &scores, &best);
  EXPECT_EQ(candidates[pos], 9u);
  EXPECT_DOUBLE_EQ(best, 9.0);
  EXPECT_EQ(scores, (std::vector<double>{9.0, 4.0, 2.0, 7.0}));
}

TEST(ParallelArgMaxBatchTest, TieBreakStableUnderContention) {
  // Many equal-score candidates across all chunks of an 8-wide pool,
  // repeated 100x: the smallest candidate value must win every run.
  ThreadPool pool(8);
  std::vector<size_t> candidates(512);
  for (size_t j = 0; j < candidates.size(); ++j) {
    // Descending ids, so the winner sits at the *end* of the list (the
    // last chunk) — a merge that preferred earlier chunks would fail.
    candidates[j] = 2000 - 2 * j;
  }
  for (int rep = 0; rep < 100; ++rep) {
    double best = 0.0;
    size_t pos = ParallelArgMaxBatch(&pool, candidates,
                                     [](size_t) { return 1.25; }, nullptr,
                                     &best);
    ASSERT_EQ(candidates[pos], 2000u - 2u * 511u) << "rep " << rep;
    ASSERT_DOUBLE_EQ(best, 1.25);
  }
}

}  // namespace
}  // namespace prefcover
