#include "util/stats.h"

#include <cmath>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(SummaryStatsTest, EmptyIsZero) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 5.0);
}

TEST(SummaryStatsTest, KnownSequence) {
  SummaryStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(v);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryStatsTest, MergeMatchesSequential) {
  SummaryStats a, b, all;
  for (int i = 0; i < 100; ++i) {
    double v = i * 0.37 - 5.0;
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, empty;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  SummaryStats c;
  c.Merge(a);
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 2.0);
}

TEST(QuantileSketchTest, EmptyReturnsNan) {
  QuantileSketch q;
  EXPECT_TRUE(std::isnan(q.Quantile(0.5)));
}

TEST(QuantileSketchTest, ExactQuantiles) {
  QuantileSketch q;
  for (int i = 1; i <= 5; ++i) q.Add(i);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 3.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.25), 2.0);
}

TEST(QuantileSketchTest, InterpolatesBetweenOrderStats) {
  QuantileSketch q;
  q.Add(0.0);
  q.Add(10.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.75), 7.5);
}

TEST(QuantileSketchTest, UnsortedInsertOrder) {
  QuantileSketch q;
  for (double v : {9.0, 1.0, 5.0, 3.0, 7.0}) q.Add(v);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 5.0);
}

TEST(HistogramTest, BucketAssignment) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.0);   // bucket 0
  h.Add(0.5);   // bucket 0
  h.Add(9.99);  // bucket 9
  h.Add(5.0);   // bucket 5
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 1u);
  EXPECT_EQ(h.bucket_count(5), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(HistogramTest, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 4);
  h.Add(-0.1);
  h.Add(1.0);  // hi is exclusive
  h.Add(2.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BucketBounds) {
  Histogram h(0.0, 100.0, 4);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(1), 25.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 100.0);
}

TEST(HistogramTest, ToStringRendersBars) {
  Histogram h(0.0, 2.0, 2);
  for (int i = 0; i < 10; ++i) h.Add(0.5);
  h.Add(1.5);
  std::string s = h.ToString(10);
  EXPECT_NE(s.find("##########"), std::string::npos);
  EXPECT_NE(s.find("#"), std::string::npos);
}

}  // namespace
}  // namespace prefcover
