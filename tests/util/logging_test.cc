#include "util/logging.h"

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(LoggingTest, LevelFilteringDropsBelowThreshold) {
  // No crash and no observable side effects below the level; this mostly
  // exercises the enabled_/disabled paths of LogMessage.
  SetLogLevel(LogLevel::kError);
  PREFCOVER_LOG(Debug) << "dropped " << 1;
  PREFCOVER_LOG(Info) << "dropped " << 2.5;
  PREFCOVER_LOG(Warning) << "dropped " << "w";
  SetLogLevel(LogLevel::kInfo);
  SUCCEED();
}

TEST(LoggingTest, StreamingArbitraryTypesCompiles) {
  SetLogLevel(LogLevel::kError);  // keep test output clean
  PREFCOVER_LOG(Info) << "int " << 42 << " double " << 1.5 << " str "
                      << std::string("s") << " bool " << true;
  SetLogLevel(LogLevel::kInfo);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(PREFCOVER_CHECK(1 == 2), "CHECK failed");
  EXPECT_DEATH(PREFCOVER_CHECK_MSG(false, "context message"),
               "context message");
}

TEST(LoggingTest, CheckPassesSilently) {
  PREFCOVER_CHECK(1 + 1 == 2);
  PREFCOVER_CHECK_MSG(true, "never shown");
  SUCCEED();
}

TEST(ParseLogLevelTest, AcceptsNamesAndDigits) {
  LogLevel level;
  ASSERT_TRUE(internal::ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(internal::ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  ASSERT_TRUE(internal::ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  ASSERT_TRUE(internal::ParseLogLevel("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  ASSERT_TRUE(internal::ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  ASSERT_TRUE(internal::ParseLogLevel("0", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(internal::ParseLogLevel("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
}

TEST(ParseLogLevelTest, IsCaseInsensitive) {
  LogLevel level;
  ASSERT_TRUE(internal::ParseLogLevel("DEBUG", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  ASSERT_TRUE(internal::ParseLogLevel("Warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(ParseLogLevelTest, RejectsGarbage) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(internal::ParseLogLevel("", &level));
  EXPECT_FALSE(internal::ParseLogLevel("verbose", &level));
  EXPECT_FALSE(internal::ParseLogLevel("4", &level));
  EXPECT_FALSE(internal::ParseLogLevel("-1", &level));
  EXPECT_FALSE(internal::ParseLogLevel(nullptr, &level));
  EXPECT_FALSE(internal::ParseLogLevel("info", nullptr));
  // A failed parse leaves the output untouched.
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(FormatLogTimestampTest, FormatsEpochAndKnownInstants) {
  EXPECT_EQ(internal::FormatLogTimestamp(0), "1970-01-01T00:00:00.000Z");
  // 2026-08-06 12:34:56.789 UTC.
  constexpr int64_t kNanos =
      INT64_C(1786019696) * 1'000'000'000 + 789'000'000;
  EXPECT_EQ(internal::FormatLogTimestamp(kNanos),
            "2026-08-06T12:34:56.789Z");
  // Sub-millisecond residue truncates toward zero.
  EXPECT_EQ(internal::FormatLogTimestamp(1'999'999),
            "1970-01-01T00:00:00.001Z");
}

TEST(FormatLogTimestampTest, HandlesPreEpochInstants) {
  // 1 ms before the epoch: milliseconds stay in [0, 999].
  EXPECT_EQ(internal::FormatLogTimestamp(-1'000'000),
            "1969-12-31T23:59:59.999Z");
}

}  // namespace
}  // namespace prefcover
