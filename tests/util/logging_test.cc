#include "util/logging.h"

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(LoggingTest, LevelFilteringDropsBelowThreshold) {
  // No crash and no observable side effects below the level; this mostly
  // exercises the enabled_/disabled paths of LogMessage.
  SetLogLevel(LogLevel::kError);
  PREFCOVER_LOG(Debug) << "dropped " << 1;
  PREFCOVER_LOG(Info) << "dropped " << 2.5;
  PREFCOVER_LOG(Warning) << "dropped " << "w";
  SetLogLevel(LogLevel::kInfo);
  SUCCEED();
}

TEST(LoggingTest, StreamingArbitraryTypesCompiles) {
  SetLogLevel(LogLevel::kError);  // keep test output clean
  PREFCOVER_LOG(Info) << "int " << 42 << " double " << 1.5 << " str "
                      << std::string("s") << " bool " << true;
  SetLogLevel(LogLevel::kInfo);
  SUCCEED();
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(PREFCOVER_CHECK(1 == 2), "CHECK failed");
  EXPECT_DEATH(PREFCOVER_CHECK_MSG(false, "context message"),
               "context message");
}

TEST(LoggingTest, CheckPassesSilently) {
  PREFCOVER_CHECK(1 + 1 == 2);
  PREFCOVER_CHECK_MSG(true, "never shown");
  SUCCEED();
}

}  // namespace
}  // namespace prefcover
