#include "util/flags.h"

#include <gtest/gtest.h>

namespace prefcover {
namespace {

FlagParser MakeParser() {
  FlagParser parser("test program");
  parser.AddString("name", "default", "a string flag")
      .AddInt("count", 10, "an int flag")
      .AddDouble("ratio", 0.5, "a double flag")
      .AddBool("verbose", false, "a bool flag");
  return parser;
}

Status ParseArgs(FlagParser* parser, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "prog");
  return parser->Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagParserTest, DefaultsApplyWithoutArgs) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {}).ok());
  EXPECT_EQ(parser.GetString("name"), "default");
  EXPECT_EQ(parser.GetInt("count"), 10);
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), 0.5);
  EXPECT_FALSE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, EqualsSyntax) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--name=abc", "--count=42",
                                  "--ratio=0.25", "--verbose=true"})
                  .ok());
  EXPECT_EQ(parser.GetString("name"), "abc");
  EXPECT_EQ(parser.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), 0.25);
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceSeparatedValue) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--count", "7"}).ok());
  EXPECT_EQ(parser.GetInt("count"), 7);
}

TEST(FlagParserTest, BareBoolSetsTrue) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--verbose"}).ok());
  EXPECT_TRUE(parser.GetBool("verbose"));
}

TEST(FlagParserTest, BoolFalseValues) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--verbose=false"}).ok());
  EXPECT_FALSE(parser.GetBool("verbose"));
  FlagParser parser2 = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser2, {"--verbose=0"}).ok());
  EXPECT_FALSE(parser2.GetBool("verbose"));
}

TEST(FlagParserTest, NegativeNumbers) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--count=-5", "--ratio=-1.5"}).ok());
  EXPECT_EQ(parser.GetInt("count"), -5);
  EXPECT_DOUBLE_EQ(parser.GetDouble("ratio"), -1.5);
}

TEST(FlagParserTest, UnknownFlagFails) {
  FlagParser parser = MakeParser();
  Status st = ParseArgs(&parser, {"--bogus=1"});
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(FlagParserTest, BadIntFails) {
  FlagParser parser = MakeParser();
  EXPECT_TRUE(ParseArgs(&parser, {"--count=abc"}).IsInvalidArgument());
  FlagParser parser2 = MakeParser();
  EXPECT_TRUE(ParseArgs(&parser2, {"--count=1.5"}).IsInvalidArgument());
}

TEST(FlagParserTest, BadDoubleFails) {
  FlagParser parser = MakeParser();
  EXPECT_TRUE(ParseArgs(&parser, {"--ratio=xyz"}).IsInvalidArgument());
}

TEST(FlagParserTest, BadBoolFails) {
  FlagParser parser = MakeParser();
  EXPECT_TRUE(ParseArgs(&parser, {"--verbose=maybe"}).IsInvalidArgument());
}

TEST(FlagParserTest, MissingValueFails) {
  FlagParser parser = MakeParser();
  EXPECT_TRUE(ParseArgs(&parser, {"--count"}).IsInvalidArgument());
}

TEST(FlagParserTest, PositionalArgsCollected) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"input.csv", "--count=3", "out.csv"}).ok());
  EXPECT_EQ(parser.positional(),
            (std::vector<std::string>{"input.csv", "out.csv"}));
}

TEST(FlagParserTest, HelpReturnsOutOfRange) {
  FlagParser parser = MakeParser();
  EXPECT_TRUE(ParseArgs(&parser, {"--help"}).IsOutOfRange());
}

TEST(FlagParserTest, UsageMentionsEveryFlag) {
  FlagParser parser = MakeParser();
  std::string usage = parser.UsageString();
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--ratio"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("a string flag"), std::string::npos);
}

TEST(FlagParserTest, LaterValueWins) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(&parser, {"--count=1", "--count=2"}).ok());
  EXPECT_EQ(parser.GetInt("count"), 2);
}

}  // namespace
}  // namespace prefcover
