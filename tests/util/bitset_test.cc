// Property/fuzz tests for Bitset against a std::vector<bool> model,
// concentrating on word boundaries (empty, single bit, 63/64/65 bits)
// and the packed-word surface (NumWords / WordAt / WordData /
// ForEachSetBit) the coverage kernels and the word-parallel candidate
// scan consume. The load-bearing invariant: ghost bits at positions
// >= size() inside the last word are always zero.

#include "util/bitset.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace prefcover {
namespace {

// Asserts every observable of `actual` against the model: per-bit Test,
// Count, raw words (including ghost-bit zeroing), and ForEachSetBit
// order and completeness.
void ExpectMatchesModel(const Bitset& actual,
                        const std::vector<bool>& model) {
  ASSERT_EQ(actual.size(), model.size());
  size_t model_count = 0;
  for (size_t i = 0; i < model.size(); ++i) {
    ASSERT_EQ(actual.Test(i), model[i]) << "bit " << i;
    model_count += model[i] ? 1u : 0u;
  }
  EXPECT_EQ(actual.Count(), model_count);

  // Words reconstruct the model exactly; tail bits beyond size() are 0.
  ASSERT_EQ(actual.NumWords(), (model.size() + 63) / 64);
  for (size_t w = 0; w < actual.NumWords(); ++w) {
    uint64_t expected = 0;
    for (size_t b = 0; b < Bitset::kWordBits; ++b) {
      const size_t i = w * Bitset::kWordBits + b;
      if (i < model.size() && model[i]) expected |= (1ULL << b);
    }
    ASSERT_EQ(actual.WordAt(w), expected) << "word " << w;
  }

  // ForEachSetBit yields exactly the set positions, strictly increasing.
  std::vector<size_t> visited;
  actual.ForEachSetBit([&](size_t i) { visited.push_back(i); });
  std::vector<size_t> expected_positions;
  for (size_t i = 0; i < model.size(); ++i) {
    if (model[i]) expected_positions.push_back(i);
  }
  EXPECT_EQ(visited, expected_positions);
}

class BitsetModelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BitsetModelTest, RandomOpSequenceMatchesVectorBoolModel) {
  const size_t n = GetParam();
  Bitset bits(n);
  std::vector<bool> model(n, false);
  ExpectMatchesModel(bits, model);  // freshly constructed: all zero
  if (n == 0) {
    EXPECT_EQ(bits.WordData(), nullptr);
    EXPECT_EQ(bits.NumWords(), 0u);
    return;
  }
  EXPECT_NE(bits.WordData(), nullptr);

  Rng rng(0xB175E7 + n);
  // Interleave Set/Clear/Reset, biased toward word-boundary positions so
  // the last-word masking is exercised far more than uniform sampling
  // would manage.
  const size_t boundary_picks[] = {0, 1, 62, 63, 64, 65, n - 1,
                                   n >= 2 ? n - 2 : 0};
  for (int step = 0; step < 400; ++step) {
    size_t i;
    if (rng.NextBernoulli(0.5)) {
      i = boundary_picks[rng.NextBounded(8)] % n;
    } else {
      i = static_cast<size_t>(rng.NextBounded(n));
    }
    const uint64_t op = rng.NextBounded(100);
    if (op < 55) {
      bits.Set(i);
      model[i] = true;
    } else if (op < 97) {
      bits.Clear(i);
      model[i] = false;
    } else {
      bits.Reset();
      model.assign(n, false);
    }
    if (step % 16 == 0 || step >= 395) ExpectMatchesModel(bits, model);
  }
  ExpectMatchesModel(bits, model);
}

INSTANTIATE_TEST_SUITE_P(WordBoundarySizes, BitsetModelTest,
                         ::testing::Values(0, 1, 2, 63, 64, 65, 127, 128,
                                           129, 1000, size_t{1} << 20),
                         [](const auto& param_info) {
                           return "n" + std::to_string(param_info.param);
                         });

TEST(BitsetTest, AllBitsSetLeavesGhostBitsZero) {
  // Setting every valid bit must not pollute the tail of the last word:
  // the kernels gather whole words and rely on ghost bits being zero.
  for (size_t n : {1u, 63u, 64u, 65u, 130u}) {
    Bitset bits(n);
    for (size_t i = 0; i < n; ++i) bits.Set(i);
    EXPECT_EQ(bits.Count(), n);
    const size_t tail = n % Bitset::kWordBits;
    const uint64_t last = bits.WordAt(bits.NumWords() - 1);
    if (tail == 0) {
      EXPECT_EQ(last, ~uint64_t{0}) << "n=" << n;
    } else {
      EXPECT_EQ(last, (uint64_t{1} << tail) - 1) << "n=" << n;
    }
  }
}

TEST(BitsetTest, SingleBitAtEveryPositionOfAWordPair) {
  // One set bit at position i: exactly one word non-zero, exactly one
  // ForEachSetBit visit.
  const size_t n = 128;
  for (size_t i = 0; i < n; ++i) {
    Bitset bits(n);
    bits.Set(i);
    EXPECT_EQ(bits.Count(), 1u);
    EXPECT_EQ(bits.WordAt(i / 64), uint64_t{1} << (i % 64));
    EXPECT_EQ(bits.WordAt(1 - i / 64), 0u);
    size_t visits = 0;
    bits.ForEachSetBit([&](size_t pos) {
      EXPECT_EQ(pos, i);
      ++visits;
    });
    EXPECT_EQ(visits, 1u);
  }
}

TEST(BitsetTest, MegabitCountAndEnumeration) {
  // 2^20 bits with a stride pattern: Count and enumeration agree with
  // arithmetic, and the words along the way are internally consistent.
  const size_t n = size_t{1} << 20;
  const size_t stride = 4097;  // coprime-ish with 64: hits all bit slots
  Bitset bits(n);
  size_t expected = 0;
  for (size_t i = 0; i < n; i += stride) {
    bits.Set(i);
    ++expected;
  }
  EXPECT_EQ(bits.Count(), expected);
  size_t visited = 0;
  size_t last_seen = 0;
  bits.ForEachSetBit([&](size_t i) {
    EXPECT_EQ(i % stride, 0u);
    if (visited > 0) {
      EXPECT_GT(i, last_seen);
    }
    last_seen = i;
    ++visited;
  });
  EXPECT_EQ(visited, expected);
}

}  // namespace
}  // namespace prefcover
