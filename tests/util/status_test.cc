#include "util/status.h"

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoryHelpersSetCodeAndMessage) {
  Status st = Status::InvalidArgument("bad k");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad k");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, EveryCodePredicateMatchesOnlyItsCode) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_FALSE(Status::NotFound("x").IsIOError());
  EXPECT_FALSE(Status::IOError("x").IsNotFound());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_EQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r(7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

Status FailingOperation() { return Status::IOError("disk"); }

Status Propagates() {
  PREFCOVER_RETURN_NOT_OK(FailingOperation());
  return Status::Internal("unreachable");
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates().IsIOError());
}

Result<int> ProducesValue() { return 10; }
Result<int> ProducesError() { return Status::OutOfRange("too big"); }

Result<int> UsesAssignOrReturn(bool fail) {
  PREFCOVER_ASSIGN_OR_RETURN(int v, fail ? ProducesError() : ProducesValue());
  return v + 1;
}

TEST(StatusMacroTest, AssignOrReturnBothPaths) {
  Result<int> ok = UsesAssignOrReturn(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  Result<int> err = UsesAssignOrReturn(true);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsOutOfRange());
}

}  // namespace
}  // namespace prefcover
