// Tests for the runtime kernel dispatch: level-name parsing, the pure
// ResolveSimdLevel fallback semantics (valid override honored exactly,
// unknown or unsupported override falls back to the max supported level
// with a warning), and the PREFCOVER_SIMD_LEVEL environment hook end to
// end through ActiveSimdLevel.

#include "util/simd_dispatch.h"

#include <cstdlib>
#include <optional>
#include <string>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

// Saves/restores PREFCOVER_SIMD_LEVEL and re-resolves the cached active
// level on both edges, so these tests cannot leak dispatch state into
// the rest of the binary.
class ScopedSimdLevelEnv {
 public:
  explicit ScopedSimdLevelEnv(const char* value) {
    const char* old = std::getenv("PREFCOVER_SIMD_LEVEL");
    if (old != nullptr) saved_ = old;
    if (value != nullptr) {
      ::setenv("PREFCOVER_SIMD_LEVEL", value, /*overwrite=*/1);
    } else {
      ::unsetenv("PREFCOVER_SIMD_LEVEL");
    }
    ReinitActiveSimdLevelForTest();
  }

  ~ScopedSimdLevelEnv() {
    if (saved_.has_value()) {
      ::setenv("PREFCOVER_SIMD_LEVEL", saved_->c_str(), 1);
    } else {
      ::unsetenv("PREFCOVER_SIMD_LEVEL");
    }
    ReinitActiveSimdLevelForTest();
  }

 private:
  std::optional<std::string> saved_;
};

TEST(SimdLevelNameTest, RoundTripsThroughParse) {
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kWord, SimdLevel::kAvx2}) {
    SimdLevel parsed;
    ASSERT_TRUE(ParseSimdLevel(SimdLevelName(level), &parsed))
        << SimdLevelName(level);
    EXPECT_EQ(parsed, level);
  }
  EXPECT_EQ(SimdLevelName(SimdLevel::kScalar), "scalar");
  EXPECT_EQ(SimdLevelName(SimdLevel::kWord), "word");
  EXPECT_EQ(SimdLevelName(SimdLevel::kAvx2), "avx2");
}

TEST(SimdLevelNameTest, ParseRejectsUnknownNames) {
  SimdLevel parsed;
  for (const char* bad : {"", "AVX2", "Scalar", "sse", "avx512", "2",
                          "word ", " word"}) {
    EXPECT_FALSE(ParseSimdLevel(bad, &parsed)) << "'" << bad << "'";
  }
}

TEST(ResolveSimdLevelTest, NoOverrideUsesMaxSupported) {
  for (SimdLevel max : {SimdLevel::kWord, SimdLevel::kAvx2}) {
    for (const char* env : {static_cast<const char*>(nullptr), ""}) {
      SimdResolution r = ResolveSimdLevel(env, max);
      EXPECT_EQ(r.level, max);
      EXPECT_TRUE(r.warning.empty()) << r.warning;
    }
  }
}

TEST(ResolveSimdLevelTest, ValidOverrideAtOrBelowMaxIsHonoredExactly) {
  // Forcing a *lower* level must always work — that is what the
  // differential CI jobs and the perf before/after comparison rely on.
  EXPECT_EQ(ResolveSimdLevel("scalar", SimdLevel::kAvx2).level,
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("word", SimdLevel::kAvx2).level,
            SimdLevel::kWord);
  EXPECT_EQ(ResolveSimdLevel("avx2", SimdLevel::kAvx2).level,
            SimdLevel::kAvx2);
  EXPECT_EQ(ResolveSimdLevel("scalar", SimdLevel::kWord).level,
            SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel("word", SimdLevel::kWord).level,
            SimdLevel::kWord);
  EXPECT_TRUE(ResolveSimdLevel("scalar", SimdLevel::kAvx2).warning.empty());
  EXPECT_TRUE(ResolveSimdLevel("word", SimdLevel::kWord).warning.empty());
}

TEST(ResolveSimdLevelTest, UnsupportedOverrideFallsBackWithWarning) {
  // avx2 requested on a build/CPU that tops out at word: fall back to
  // word and say so — never silently run a level the process can't.
  SimdResolution r = ResolveSimdLevel("avx2", SimdLevel::kWord);
  EXPECT_EQ(r.level, SimdLevel::kWord);
  EXPECT_FALSE(r.warning.empty());
  EXPECT_NE(r.warning.find("avx2"), std::string::npos) << r.warning;
  EXPECT_NE(r.warning.find("word"), std::string::npos) << r.warning;
}

TEST(ResolveSimdLevelTest, UnknownOverrideFallsBackWithWarning) {
  for (SimdLevel max : {SimdLevel::kWord, SimdLevel::kAvx2}) {
    SimdResolution r = ResolveSimdLevel("turbo", max);
    EXPECT_EQ(r.level, max);
    EXPECT_FALSE(r.warning.empty());
    EXPECT_NE(r.warning.find("turbo"), std::string::npos) << r.warning;
  }
}

TEST(ActiveSimdLevelTest, DefaultsToMaxSupported) {
  ScopedSimdLevelEnv env(nullptr);
  EXPECT_EQ(ActiveSimdLevel(), MaxSupportedSimdLevel());
}

TEST(ActiveSimdLevelTest, EnvOverrideIsHonoredForEverySupportedLevel) {
  const SimdLevel max = MaxSupportedSimdLevel();
  for (SimdLevel level :
       {SimdLevel::kScalar, SimdLevel::kWord, SimdLevel::kAvx2}) {
    if (level > max) continue;
    ScopedSimdLevelEnv env(std::string(SimdLevelName(level)).c_str());
    EXPECT_EQ(ActiveSimdLevel(), level) << SimdLevelName(level);
  }
}

TEST(ActiveSimdLevelTest, InvalidEnvValueFallsBackToMaxSupported) {
  ScopedSimdLevelEnv env("definitely-not-a-level");
  EXPECT_EQ(ActiveSimdLevel(), MaxSupportedSimdLevel());
}

TEST(ActiveSimdLevelTest, ReinitPicksUpEnvironmentChanges) {
  // The cache really is a cache: Reinit observes a changed environment.
  ScopedSimdLevelEnv scalar_env("scalar");
  ASSERT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
  {
    ScopedSimdLevelEnv word_env("word");
    EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kWord);
  }
  EXPECT_EQ(ActiveSimdLevel(), SimdLevel::kScalar);
}

TEST(CpuSupportsAvx2Test, ConsistentWithMaxSupportedLevel) {
#if defined(PREFCOVER_HAVE_AVX2)
  EXPECT_EQ(MaxSupportedSimdLevel() == SimdLevel::kAvx2, CpuSupportsAvx2());
#else
  // Without the AVX2 TU compiled in, the max level is word no matter
  // what the CPU reports.
  EXPECT_EQ(MaxSupportedSimdLevel(), SimdLevel::kWord);
#endif
}

}  // namespace
}  // namespace prefcover
