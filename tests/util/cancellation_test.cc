#include "util/cancellation.h"

#include <csignal>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/parallel_for.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

TEST(CancelTokenTest, StartsClean) {
  CancelToken token;
  EXPECT_FALSE(token.IsCancelled());
  EXPECT_FALSE(token.cancel_requested());
  EXPECT_FALSE(token.has_deadline());
}

TEST(CancelTokenTest, CancelTripsAndSticks) {
  CancelToken token;
  token.Cancel();
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_TRUE(token.cancel_requested());
  token.Cancel();  // idempotent
  EXPECT_TRUE(token.IsCancelled());
}

TEST(CancelTokenTest, PastDeadlineExpiresWithoutExplicitCancel) {
  CancelToken token;
  token.SetTimeout(-1.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_TRUE(token.IsCancelled());
  // A deadline expiry is distinguishable from an explicit Cancel().
  EXPECT_FALSE(token.cancel_requested());
}

TEST(CancelTokenTest, ZeroTimeoutExpiresImmediately) {
  CancelToken token;
  token.SetTimeout(0.0);
  EXPECT_TRUE(token.IsCancelled());
}

TEST(CancelTokenTest, FarFutureDeadlineDoesNotFire) {
  CancelToken token;
  token.SetTimeout(3600.0);
  EXPECT_TRUE(token.has_deadline());
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancelTokenTest, ShortTimeoutFiresAfterSleep) {
  CancelToken token;
  token.SetTimeout(0.005);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(token.IsCancelled());
}

TEST(CancelTokenTest, ClearDeadlineDisarms) {
  CancelToken token;
  token.SetTimeout(-1.0);
  ASSERT_TRUE(token.IsCancelled());
  token.ClearDeadline();
  EXPECT_FALSE(token.has_deadline());
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancelTokenTest, ClearDeadlineDoesNotRevertExplicitCancel) {
  CancelToken token;
  token.Cancel();
  token.ClearDeadline();
  EXPECT_TRUE(token.IsCancelled());
}

TEST(CancelTokenTest, AbsoluteDeadline) {
  CancelToken token;
  token.SetDeadline(std::chrono::steady_clock::now() -
                    std::chrono::seconds(1));
  EXPECT_TRUE(token.IsCancelled());
  token.SetDeadline(std::chrono::steady_clock::now() +
                    std::chrono::hours(1));
  EXPECT_FALSE(token.IsCancelled());
}

TEST(CancelTokenTest, CancelVisibleAcrossThreads) {
  CancelToken token;
  std::atomic<bool> observed{false};
  std::thread watcher([&] {
    while (!token.IsCancelled()) std::this_thread::yield();
    observed.store(true);
  });
  token.Cancel();
  watcher.join();
  EXPECT_TRUE(observed.load());
}

TEST(CancelTokenTest, SignalHookupTripsToken) {
  CancelToken token;
  InstallSignalCancel(&token);
  // One delivery only: the second would restore the default disposition
  // and re-raise, killing the test binary.
  std::raise(SIGTERM);
  EXPECT_TRUE(token.IsCancelled());
  EXPECT_EQ(LastCancelSignal(), SIGTERM);
  InstallSignalCancel(nullptr);
}

TEST(ParallelForCancelTest, PreCancelledRunsNothing) {
  ThreadPool pool(4);
  CancelToken token;
  token.Cancel();
  std::atomic<size_t> executed{0};
  ParallelFor(&pool, 0, 10'000, [&](size_t) { ++executed; }, &token);
  EXPECT_EQ(executed.load(), 0u);
}

TEST(ParallelForCancelTest, NullTokenRunsEverything) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  ParallelFor(&pool, 0, 10'000, [&](size_t) { ++executed; }, nullptr);
  EXPECT_EQ(executed.load(), 10'000u);
}

TEST(ParallelForCancelTest, MidRunCancelSkipsRemainingChunks) {
  // One of the two workers is parked on a blocker task, so the two chunks
  // execute serially on the free worker: the first chunk trips the token
  // (and, being already running, completes — chunk granularity), the
  // second sees the tripped token before starting and is skipped whole.
  ThreadPool pool(2);
  CancelToken token;
  std::atomic<bool> release{false};
  pool.Submit([&] {
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::atomic<size_t> executed{0};
  std::atomic<size_t> chunks_started{0};
  ParallelForChunked(
      &pool, 0, 10'000,
      [&](size_t chunk_begin, size_t chunk_end, size_t) {
        ++chunks_started;
        token.Cancel();
        executed += chunk_end - chunk_begin;
      },
      &token);
  release.store(true);
  EXPECT_EQ(chunks_started.load(), 1u);
  EXPECT_EQ(executed.load(), 5'000u);
}

TEST(ParallelForCancelTest, CancelledArgMaxSignalsEmptyResult) {
  ThreadPool pool(4);
  CancelToken token;
  token.Cancel();
  double best = 0.0;
  const size_t n = 1'000;
  size_t arg = ParallelArgMax(
      &pool, n, [](size_t i) { return static_cast<double>(i); }, &best,
      &token);
  // Every chunk was skipped, so the documented "all skipped" sentinel.
  EXPECT_EQ(arg, n);
}

TEST(ParallelForCancelTest, CancelledArgMaxBatchSignalsEmptyResult) {
  ThreadPool pool(4);
  CancelToken token;
  token.Cancel();
  std::vector<size_t> candidates(100);
  for (size_t j = 0; j < candidates.size(); ++j) candidates[j] = j;
  std::vector<double> scores;
  double best = 0.0;
  size_t pos = ParallelArgMaxBatch(
      &pool, candidates, [](size_t i) { return static_cast<double>(i); },
      &scores, &best, &token);
  EXPECT_EQ(pos, candidates.size());
}

}  // namespace
}  // namespace prefcover
