#include "util/csv.h"

#include <sstream>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(ParseCsvLineTest, SimpleFields) {
  auto r = ParseCsvLine("a,b,c");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLineTest, EmptyFields) {
  auto r = ParseCsvLine(",,");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvLineTest, SingleField) {
  auto r = ParseCsvLine("only");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, std::vector<std::string>{"only"});
}

TEST(ParseCsvLineTest, EmptyLineIsOneEmptyField) {
  auto r = ParseCsvLine("");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, std::vector<std::string>{""});
}

TEST(ParseCsvLineTest, QuotedFieldWithDelimiter) {
  auto r = ParseCsvLine(R"("a,b",c)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvLineTest, EscapedQuote) {
  auto r = ParseCsvLine(R"("say ""hi""",x)");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"say \"hi\"", "x"}));
}

TEST(ParseCsvLineTest, QuotedNewline) {
  auto r = ParseCsvLine("\"line1\nline2\",x");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"line1\nline2", "x"}));
}

TEST(ParseCsvLineTest, UnterminatedQuoteFails) {
  EXPECT_FALSE(ParseCsvLine(R"("abc)").ok());
}

TEST(ParseCsvLineTest, QuoteInsideUnquotedFieldFails) {
  EXPECT_FALSE(ParseCsvLine(R"(ab"c)").ok());
}

TEST(ParseCsvLineTest, TrailingCharsAfterQuoteFail) {
  EXPECT_FALSE(ParseCsvLine(R"("abc"def)").ok());
}

TEST(ParseCsvLineTest, CustomDelimiter) {
  auto r = ParseCsvLine("a;b;c", ';');
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(FormatCsvLineTest, PlainFields) {
  EXPECT_EQ(FormatCsvLine({"a", "b"}), "a,b");
}

TEST(FormatCsvLineTest, QuotesWhenNeeded) {
  EXPECT_EQ(FormatCsvLine({"a,b", "c"}), "\"a,b\",c");
  EXPECT_EQ(FormatCsvLine({"say \"hi\""}), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(FormatCsvLine({"two\nlines"}), "\"two\nlines\"");
}

TEST(CsvRoundTripTest, ParseOfFormatIsIdentity) {
  std::vector<std::vector<std::string>> cases = {
      {"a", "b", "c"},
      {"", "", ""},
      {"with,comma", "with\"quote", "with\nnewline"},
      {"plain"},
  };
  for (const auto& fields : cases) {
    auto parsed = ParseCsvLine(FormatCsvLine(fields));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fields);
  }
}

TEST(CsvReaderTest, ReadsMultipleRecords) {
  std::istringstream in("h1,h2\n1,2\n3,4\n");
  CsvReader reader(&in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"h1", "h2"}));
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"1", "2"}));
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"3", "4"}));
  EXPECT_FALSE(reader.Next(&fields));
  EXPECT_TRUE(reader.status().ok());
}

TEST(CsvReaderTest, HandlesCrlf) {
  std::istringstream in("a,b\r\nc,d\r\n");
  CsvReader reader(&in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"a", "b"}));
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"c", "d"}));
}

TEST(CsvReaderTest, QuotedFieldSpanningLines) {
  std::istringstream in("\"multi\nline\",x\nnext,y\n");
  CsvReader reader(&in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"multi\nline", "x"}));
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_EQ(fields, (std::vector<std::string>{"next", "y"}));
}

TEST(CsvReaderTest, MalformedRecordSetsStatus) {
  std::istringstream in("good,row\nbad\"row,x\n");
  CsvReader reader(&in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));
  EXPECT_FALSE(reader.Next(&fields));
  EXPECT_FALSE(reader.status().ok());
  EXPECT_TRUE(reader.status().IsInvalidArgument());
}

TEST(CsvReaderTest, EmptyInput) {
  std::istringstream in("");
  CsvReader reader(&in);
  std::vector<std::string> fields;
  EXPECT_FALSE(reader.Next(&fields));
  EXPECT_TRUE(reader.status().ok());
}

TEST(CsvWriterTest, WritesRecordsWithNewlines) {
  std::ostringstream out;
  CsvWriter writer(&out);
  writer.WriteRecord({"a", "b"});
  writer.WriteRecord({"1,5", "2"});
  EXPECT_EQ(out.str(), "a,b\n\"1,5\",2\n");
  EXPECT_EQ(writer.records_written(), 2u);
}

TEST(CsvWriterReaderTest, RoundTripThroughStreams) {
  std::ostringstream out;
  CsvWriter writer(&out);
  std::vector<std::vector<std::string>> records = {
      {"id", "name"}, {"1", "quoted \"x\""}, {"2", "a,b"}};
  for (const auto& r : records) writer.WriteRecord(r);

  std::istringstream in(out.str());
  CsvReader reader(&in);
  std::vector<std::string> fields;
  for (const auto& expected : records) {
    ASSERT_TRUE(reader.Next(&fields));
    EXPECT_EQ(fields, expected);
  }
  EXPECT_FALSE(reader.Next(&fields));
}

}  // namespace
}  // namespace prefcover
