#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  constexpr uint64_t kBound = 10;
  constexpr int kSamples = 100000;
  std::vector<int> counts(kBound, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[rng.NextBounded(kBound)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBound, 0.1 * kSamples / kBound);
  }
}

TEST(RngTest, NextIntInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kSamples, 0.5, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-0.5));
    EXPECT_TRUE(rng.NextBernoulli(1.5));
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(21);
  constexpr int kSamples = 100000;
  int hits = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kSamples, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(33);
  constexpr int kSamples = 100000;
  double sum = 0.0, sumsq = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  double mean = sum / kSamples;
  double var = sumsq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(41);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(2.0);
  EXPECT_NEAR(sum / kSamples, 0.5, 0.02);
}

TEST(RngTest, PoissonSmallMean) {
  Rng rng(55);
  constexpr int kSamples = 100000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.NextPoisson(3.5));
  }
  EXPECT_NEAR(sum / kSamples, 3.5, 0.1);
}

TEST(RngTest, PoissonLargeMeanUsesApproximation) {
  Rng rng(56);
  constexpr int kSamples = 20000;
  double sum = 0.0;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.NextPoisson(100.0));
  }
  EXPECT_NEAR(sum / kSamples, 100.0, 1.0);
}

TEST(RngTest, PoissonZeroMean) {
  Rng rng(57);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.NextPoisson(0.0), 0u);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(60);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(61);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, SampleWithoutReplacementDistinctAndInRange) {
  Rng rng(70);
  for (uint32_t n : {10u, 100u, 1000u}) {
    for (uint32_t m : {0u, 1u, 5u, n / 2, n}) {
      std::vector<uint32_t> sample = rng.SampleWithoutReplacement(n, m);
      EXPECT_EQ(sample.size(), m);
      std::set<uint32_t> seen(sample.begin(), sample.end());
      EXPECT_EQ(seen.size(), m);  // distinct
      for (uint32_t s : sample) EXPECT_LT(s, n);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementCoversUniformly) {
  Rng rng(71);
  constexpr uint32_t kN = 20;
  constexpr int kTrials = 20000;
  std::vector<int> counts(kN, 0);
  for (int t = 0; t < kTrials; ++t) {
    for (uint32_t s : rng.SampleWithoutReplacement(kN, 3)) ++counts[s];
  }
  double expected = 3.0 * kTrials / kN;
  for (int c : counts) {
    EXPECT_NEAR(c, expected, 0.15 * expected);
  }
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(80);
  Rng child = parent.Split();
  // Streams should diverge immediately.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(ZipfTest, PmfSumsToOne) {
  for (double s : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    ZipfDistribution zipf(100, s);
    double total = 0.0;
    for (uint32_t r = 0; r < 100; ++r) total += zipf.Pmf(r);
    EXPECT_NEAR(total, 1.0, 1e-9) << "s=" << s;
  }
}

TEST(ZipfTest, PmfDecreasesWithRank) {
  ZipfDistribution zipf(50, 1.2);
  for (uint32_t r = 1; r < 50; ++r) {
    EXPECT_LE(zipf.Pmf(r), zipf.Pmf(r - 1));
  }
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfDistribution zipf(20, 1.0);
  Rng rng(90);
  constexpr int kSamples = 200000;
  std::vector<int> counts(20, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  for (uint32_t r = 0; r < 20; ++r) {
    double expected = zipf.Pmf(r) * kSamples;
    EXPECT_NEAR(counts[r], expected, 0.05 * expected + 30.0) << "rank " << r;
  }
}

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  for (uint32_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(zipf.Pmf(r), 0.1, 1e-12);
  }
  Rng rng(91);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(&rng)];
  for (int c : counts) EXPECT_NEAR(c, 5000, 350);
}

TEST(ZipfTest, SkewOneUsesLogBranch) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(92);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(zipf.Sample(&rng), 1000u);
  }
}

TEST(AliasSamplerTest, MatchesWeights) {
  std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasSampler sampler(weights);
  Rng rng(100);
  constexpr int kSamples = 200000;
  std::vector<int> counts(4, 0);
  for (int i = 0; i < kSamples; ++i) ++counts[sampler.Sample(&rng)];
  for (size_t i = 0; i < 4; ++i) {
    double expected = weights[i] / 10.0 * kSamples;
    EXPECT_NEAR(counts[i], expected, 0.03 * expected);
  }
}

TEST(AliasSamplerTest, HandlesZeroWeightEntries) {
  AliasSampler sampler({0.0, 1.0, 0.0, 1.0});
  Rng rng(101);
  for (int i = 0; i < 10000; ++i) {
    uint32_t s = sampler.Sample(&rng);
    EXPECT_TRUE(s == 1 || s == 3);
  }
}

TEST(AliasSamplerTest, SingleElement) {
  AliasSampler sampler({5.0});
  Rng rng(102);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(&rng), 0u);
}

TEST(AliasSamplerTest, HighlySkewedWeights) {
  AliasSampler sampler({1e-9, 1.0});
  Rng rng(103);
  int zero_count = 0;
  for (int i = 0; i < 100000; ++i) {
    if (sampler.Sample(&rng) == 0) ++zero_count;
  }
  EXPECT_LT(zero_count, 5);
}

}  // namespace
}  // namespace prefcover
