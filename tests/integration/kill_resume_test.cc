// Kill-resume determinism, end to end through the real CLI binary: a
// solve SIGKILLed mid-run (by the checkpoint.after_write failpoint, i.e.
// immediately after a checkpoint landed durably) and then resumed with
// --resume must produce a solution CSV byte-identical to a run that was
// never interrupted — for all four greedy executions and both variants.

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "util/failpoint.h"

#ifndef PREFCOVER_CLI_PATH
#error "PREFCOVER_CLI_PATH must be defined by the build"
#endif

namespace prefcover {
namespace {

std::string CliPath() { return PREFCOVER_CLI_PATH; }

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/kill_resume_test_" + name;
}

// Runs a command line (optionally under an env prefix), returns the shell
// exit status: WEXITSTATUS for normal exits, 128+signal for signal deaths
// (so a SIGKILLed child reads as 137).
int RunShell(const std::string& command_line) {
  int rc = std::system((command_line + " > /dev/null 2>&1").c_str());
  return rc == -1 ? -1 : WEXITSTATUS(rc);
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

class KillResumeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    clicks_path_ = new std::string(TempPath("clicks.csv"));
    graph_path_ = new std::string(TempPath("graph.pcg"));
    norm_graph_path_ = new std::string(TempPath("graph_norm.pcg"));
    ASSERT_EQ(RunShell(CliPath() +
                       " generate --profile=YC --scale=0.004 --out=" +
                       *clicks_path_),
              0);
    ASSERT_EQ(RunShell(CliPath() + " construct --input=" + *clicks_path_ +
                       " --out=" + *graph_path_),
              0);
    // The normalized variant needs per-node out-weight sums <= 1, which
    // the default construction does not guarantee; build it explicitly.
    ASSERT_EQ(RunShell(CliPath() + " construct --input=" + *clicks_path_ +
                       " --variant=normalized --out=" + *norm_graph_path_),
              0);
  }

  static void TearDownTestSuite() {
    delete clicks_path_;
    delete graph_path_;
    delete norm_graph_path_;
    clicks_path_ = nullptr;
    graph_path_ = nullptr;
    norm_graph_path_ = nullptr;
  }

  void SetUp() override {
    if (!failpoint::Enabled()) {
      GTEST_SKIP() << "built with -DPREFCOVER_ENABLE_FAILPOINTS=OFF";
    }
  }

  static std::string* clicks_path_;
  static std::string* graph_path_;
  static std::string* norm_graph_path_;
};

std::string* KillResumeTest::clicks_path_ = nullptr;
std::string* KillResumeTest::graph_path_ = nullptr;
std::string* KillResumeTest::norm_graph_path_ = nullptr;

TEST_F(KillResumeTest, KilledThenResumedSolveIsByteIdentical) {
  const char* algorithms[] = {"greedy", "parallel", "lazy",
                              "lazy-parallel"};
  const char* variants[] = {"independent", "normalized"};
  for (const char* algorithm : algorithms) {
    for (const char* variant : variants) {
      SCOPED_TRACE(std::string(algorithm) + "/" + variant);
      const std::string tag =
          std::string(algorithm) + "_" + variant;
      const std::string full_csv = TempPath("full_" + tag + ".csv");
      const std::string resumed_csv = TempPath("resumed_" + tag + ".csv");
      const std::string ckpt = TempPath("ckpt_" + tag + ".bin");
      std::remove(ckpt.c_str());
      std::remove(resumed_csv.c_str());

      const std::string& graph = std::string(variant) == "normalized"
                                     ? *norm_graph_path_
                                     : *graph_path_;
      const std::string common = CliPath() + " solve --graph=" + graph +
                                 " --k=20 --algorithm=" + algorithm +
                                 " --variant=" + variant;

      ASSERT_EQ(RunShell(common + " --out=" + full_csv), 0);

      // SIGKILL the moment the first periodic checkpoint is durably on
      // disk. 137 = 128 + SIGKILL: the process really died by signal, so
      // no destructor or atexit cleanup softened the crash.
      ASSERT_EQ(
          RunShell("PREFCOVER_FAILPOINTS='checkpoint.after_write="
                   "crash_once' " +
                   common + " --checkpoint_path=" + ckpt +
                   " --checkpoint_every=4 --out=" + resumed_csv),
          137);
      // The kill preceded any CSV output.
      std::ifstream no_csv(resumed_csv);
      ASSERT_FALSE(no_csv.good());

      ASSERT_EQ(RunShell(common + " --checkpoint_path=" + ckpt +
                         " --resume --out=" + resumed_csv),
                0);

      const std::string full = Slurp(full_csv);
      ASSERT_FALSE(full.empty());
      EXPECT_EQ(Slurp(resumed_csv), full);
    }
  }
}

TEST_F(KillResumeTest, ResumeAgainstDifferentInstanceRefuses) {
  const std::string ckpt = TempPath("stale.bin");
  std::remove(ckpt.c_str());
  const std::string base = CliPath() + " solve --graph=" + *graph_path_ +
                           " --checkpoint_path=" + ckpt;
  ASSERT_EQ(RunShell(base + " --k=20 --algorithm=lazy"), 0);
  // Same checkpoint, different budget: the options hash differs, so the
  // resume must refuse loudly instead of silently solving the wrong
  // problem.
  EXPECT_EQ(RunShell(base + " --k=21 --algorithm=lazy --resume"), 1);
}

TEST_F(KillResumeTest, ResumeWithoutCheckpointFileStartsFresh) {
  const std::string ckpt = TempPath("absent.bin");
  std::remove(ckpt.c_str());
  const std::string out = TempPath("fresh.csv");
  // A missing checkpoint is the normal state after a crash that preceded
  // the first write; --resume degrades to a cold start, not an error.
  EXPECT_EQ(RunShell(CliPath() + " solve --graph=" + *graph_path_ +
                     " --k=20 --algorithm=lazy --checkpoint_path=" + ckpt +
                     " --resume --out=" + out),
            0);
  EXPECT_FALSE(Slurp(out).empty());
}

TEST_F(KillResumeTest, InjectedGraphReadErrorFailsCleanly) {
  ASSERT_EQ(RunShell("PREFCOVER_FAILPOINTS='graph_io.read=error' " +
                     CliPath() + " solve --graph=" + *graph_path_ +
                     " --k=20"),
            1);
}

}  // namespace
}  // namespace prefcover
