// Full-pipeline integration tests: synthetic catalog -> ground-truth model
// -> sessions -> CSV round trip -> Data Adaptation Engine (variant
// selection + graph construction) -> solver -> solution validation.
// This is the system architecture of the paper's Figure 2 exercised end to
// end, including persistence layers.

#include <sstream>

#include <gtest/gtest.h>

#include "clickstream/clickstream_io.h"
#include "clickstream/graph_construction.h"
#include "clickstream/variant_selection.h"
#include "core/complementary_solver.h"
#include "core/greedy_solver.h"
#include "eval/runner.h"
#include "graph/graph_io.h"
#include "synth/dataset_profiles.h"
#include "synth/session_generator.h"

namespace prefcover {
namespace {

TEST(EndToEndTest, FullPipelineIndependentProfile) {
  // 1. Generate a PE-like clickstream.
  auto cs = GenerateProfileClickstream(DatasetProfile::kPE, 0.002, 42);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();

  // 2. Persist and reload the clickstream (CSV round trip).
  std::stringstream csv;
  ASSERT_TRUE(WriteClickstreamCsv(*cs, &csv).ok());
  auto reloaded = ReadClickstreamCsv(&csv);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded->NumSessions(), cs->NumSessions());

  // 3. Data Adaptation Engine: pick the variant, build the graph.
  VariantRecommendation rec = RecommendVariant(*reloaded);
  EXPECT_EQ(rec.variant, Variant::kIndependent);
  GraphConstructionOptions gopt;
  gopt.variant = rec.variant;
  auto graph = BuildPreferenceGraph(*reloaded, gopt);
  ASSERT_TRUE(graph.ok());

  // 4. Persist and reload the graph (binary round trip).
  std::stringstream pcg;
  ASSERT_TRUE(WriteGraphBinary(*graph, &pcg).ok());
  auto graph2 = ReadGraphBinary(&pcg);
  ASSERT_TRUE(graph2.ok());

  // 5. Solve and validate.
  const size_t k = graph2->NumNodes() / 10;
  GreedyOptions options;
  options.variant = rec.variant;
  auto sol = SolveGreedyLazy(*graph2, k, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->Validate(*graph2).ok());
  EXPECT_GT(sol->cover, 0.0);

  // 6. The greedy solution dominates the baselines on the same graph.
  Rng rng(7);
  auto topw = RunAlgorithm(Algorithm::kTopKWeight, *graph2, k, rec.variant,
                           &rng);
  ASSERT_TRUE(topw.ok());
  EXPECT_GE(sol->cover, topw->cover - 1e-9);
}

TEST(EndToEndTest, FullPipelineNormalizedProfile) {
  auto cs = GenerateProfileClickstream(DatasetProfile::kPM, 0.002, 43);
  ASSERT_TRUE(cs.ok());
  VariantRecommendation rec = RecommendVariant(*cs);
  EXPECT_EQ(rec.variant, Variant::kNormalized);

  GraphConstructionOptions gopt;
  gopt.variant = rec.variant;
  auto graph = BuildPreferenceGraph(*cs, gopt);
  ASSERT_TRUE(graph.ok());

  const size_t k = graph->NumNodes() / 5;
  GreedyOptions options;
  options.variant = rec.variant;
  auto greedy = SolveGreedyLazy(*graph, k, options);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy->Validate(*graph).ok());

  // Complementary problem on the same graph: greedy threshold sets are
  // consistent with the budget solution prefixes.
  auto threshold = SolveCoverageThreshold(*graph, greedy->cover * 0.99,
                                          rec.variant,
                                          ThresholdAlgorithm::kGreedy);
  ASSERT_TRUE(threshold.ok());
  EXPECT_TRUE(threshold->reached);
  EXPECT_LE(threshold->set_size, greedy->items.size());
}

TEST(EndToEndTest, SuiteOrderingOnProfileGraph) {
  // Figure 4c's qualitative ordering on a YC-shaped graph:
  // Greedy >= TopK-C, TopK-W >= Random (approximately; random uses best
  // of 10).
  auto graph = GenerateProfileGraph(DatasetProfile::kYC, 0.02, 44);
  ASSERT_TRUE(graph.ok());
  const size_t k = graph->NumNodes() / 10;
  Rng rng(45);
  auto entries = RunSuite(
      {Algorithm::kGreedyLazy, Algorithm::kTopKCoverage,
       Algorithm::kTopKWeight, Algorithm::kRandom},
      *graph, k, Variant::kIndependent, &rng);
  ASSERT_TRUE(entries.ok());
  double greedy = (*entries)[0].solution.cover;
  double topc = (*entries)[1].solution.cover;
  double topw = (*entries)[2].solution.cover;
  double random = (*entries)[3].solution.cover;
  EXPECT_GE(greedy, topc - 1e-9);
  EXPECT_GE(greedy, topw - 1e-9);
  EXPECT_GT(topw, random);  // informed baselines beat random
}

}  // namespace
}  // namespace prefcover
