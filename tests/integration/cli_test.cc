// End-to-end tests of the `prefcover` CLI binary: each subcommand is run
// as a real subprocess against temp files, exactly as a user would.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#ifndef PREFCOVER_CLI_PATH
#error "PREFCOVER_CLI_PATH must be defined by the build"
#endif

namespace prefcover {
namespace {

std::string CliPath() { return PREFCOVER_CLI_PATH; }

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/cli_test_" + name;
}

// Runs a command line, returns its exit code.
int RunCli(const std::string& command_line) {
  int rc = std::system((command_line + " > /dev/null 2>&1").c_str());
  return rc == -1 ? -1 : WEXITSTATUS(rc);
}

bool FileNonEmpty(const std::string& path) {
  std::ifstream in(path, std::ios::ate);
  return in.good() && in.tellg() > 0;
}

class CliPipelineTest : public ::testing::Test {
 protected:
  // The full generate -> construct chain shared by several tests.
  void SetUpPipeline() {
    clicks_ = TempPath("clicks.csv");
    graph_ = TempPath("graph.pcg");
    ASSERT_EQ(RunCli(CliPath() + " generate --profile=YC --scale=0.004 --out=" +
                  clicks_),
              0);
    ASSERT_TRUE(FileNonEmpty(clicks_));
    ASSERT_EQ(RunCli(CliPath() + " construct --input=" + clicks_ +
                  " --out=" + graph_),
              0);
    ASSERT_TRUE(FileNonEmpty(graph_));
  }

  std::string clicks_, graph_;
};

TEST_F(CliPipelineTest, GenerateConstructStatsSolveThresholdExport) {
  SetUpPipeline();
  EXPECT_EQ(RunCli(CliPath() + " stats --graph=" + graph_), 0);

  std::string retained = TempPath("retained.csv");
  EXPECT_EQ(RunCli(CliPath() + " solve --graph=" + graph_ +
                " --k=20 --out=" + retained),
            0);
  ASSERT_TRUE(FileNonEmpty(retained));
  // The solution CSV has a header plus 20 rows.
  std::ifstream in(retained);
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) ++lines;
  EXPECT_EQ(lines, 21);

  EXPECT_EQ(RunCli(CliPath() + " threshold --graph=" + graph_ +
                " --coverage=0.5"),
            0);

  std::string nodes = TempPath("nodes.csv"), edges = TempPath("edges.csv");
  EXPECT_EQ(RunCli(CliPath() + " export --graph=" + graph_ + " --nodes=" +
                nodes + " --edges=" + edges),
            0);
  EXPECT_TRUE(FileNonEmpty(nodes));
  EXPECT_TRUE(FileNonEmpty(edges));
}

TEST_F(CliPipelineTest, SolveWithEachAlgorithm) {
  SetUpPipeline();
  for (const char* algorithm :
       {"greedy", "lazy", "parallel", "topk-w", "topk-c", "random"}) {
    EXPECT_EQ(RunCli(CliPath() + " solve --graph=" + graph_ + " --k=10" +
                  " --algorithm=" + algorithm),
              0)
        << algorithm;
  }
  EXPECT_NE(RunCli(CliPath() + " solve --graph=" + graph_ +
                " --k=10 --algorithm=bogus"),
            0);
}

TEST(CliTest, NoArgumentsShowsUsageAndFails) {
  EXPECT_NE(RunCli(CliPath()), 0);
}

TEST(CliTest, HelpSucceeds) {
  EXPECT_EQ(RunCli(CliPath() + " --help"), 0);
  EXPECT_EQ(RunCli(CliPath() + " solve --help"), 0);
}

TEST(CliTest, UnknownCommandFails) {
  EXPECT_NE(RunCli(CliPath() + " frobnicate"), 0);
}

TEST(CliTest, MissingInputFileFails) {
  EXPECT_NE(RunCli(CliPath() + " stats --graph=/no/such/file.pcg"), 0);
  EXPECT_NE(RunCli(CliPath() + " construct --input=/no/such/clicks.csv"), 0);
}

TEST(CliTest, BadFlagFails) {
  EXPECT_NE(RunCli(CliPath() + " generate --bogus-flag=1"), 0);
}

TEST_F(CliPipelineTest, StreamingConstructMatchesInMemory) {
  SetUpPipeline();
  std::string streamed = TempPath("graph_streamed.pcg");
  EXPECT_EQ(RunCli(CliPath() + " construct --input=" + clicks_ +
                   " --streaming --variant=independent --out=" + streamed),
            0);
  EXPECT_TRUE(FileNonEmpty(streamed));
  // Streaming without an explicit variant must fail.
  EXPECT_NE(RunCli(CliPath() + " construct --input=" + clicks_ +
                   " --streaming --out=" + streamed),
            0);
}

TEST_F(CliPipelineTest, SolveWithReportAndConstraints) {
  SetUpPipeline();
  std::string coverage = TempPath("coverage.csv");
  EXPECT_EQ(RunCli(CliPath() + " solve --graph=" + graph_ +
                   " --k=10 --report --force-include=5"
                   " --force-exclude=6,7 --coverage-out=" + coverage),
            0);
  EXPECT_TRUE(FileNonEmpty(coverage));
  // Constraints reject non-greedy algorithms.
  EXPECT_NE(RunCli(CliPath() + " solve --graph=" + graph_ +
                   " --k=10 --algorithm=topk-w --force-include=5"),
            0);
  // Conflicting constraints fail.
  EXPECT_NE(RunCli(CliPath() + " solve --graph=" + graph_ +
                   " --k=10 --force-include=5 --force-exclude=5"),
            0);
}

TEST_F(CliPipelineTest, SolveWritesTraceAndMetrics) {
  SetUpPipeline();
  std::string trace = TempPath("trace.json");
  std::string metrics = TempPath("metrics.json");
  ASSERT_EQ(RunCli(CliPath() + " solve --clicks=" + clicks_ +
                   " --variant=independent --k=10 --algorithm=lazy-parallel"
                   " --threads=2 --trace_out=" + trace +
                   " --metrics_out=" + metrics),
            0);
  ASSERT_TRUE(FileNonEmpty(trace));
  ASSERT_TRUE(FileNonEmpty(metrics));

  std::ostringstream trace_text;
  {
    std::ifstream in(trace);
    trace_text << in.rdbuf();
  }
  // Chrome trace-event envelope plus spans from several subsystems.
  EXPECT_NE(trace_text.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(trace_text.str().find("solver.solve"), std::string::npos);
  EXPECT_NE(trace_text.str().find("clickstream.build"), std::string::npos);
  EXPECT_NE(trace_text.str().find("eval.run_algorithm"), std::string::npos);

  std::ostringstream metrics_text;
  {
    std::ifstream in(metrics);
    metrics_text << in.rdbuf();
  }
  EXPECT_NE(metrics_text.str().find("\"schema_version\""),
            std::string::npos);
  EXPECT_NE(metrics_text.str().find("solver.gain_evaluations"),
            std::string::npos);
}

// Runs a command line feeding `input` on stdin; captures stdout into
// `stdout_out` and returns the exit code.
int RunCliWithStdin(const std::string& command_line, const std::string& input,
                    std::string* stdout_out) {
  std::string in_path = TempPath("stdin.txt");
  std::string out_path = TempPath("stdout.txt");
  {
    std::ofstream out(in_path);
    out << input;
  }
  int rc = std::system((command_line + " < " + in_path + " > " + out_path +
                        " 2> /dev/null")
                           .c_str());
  std::ostringstream captured;
  std::ifstream in(out_path);
  captured << in.rdbuf();
  *stdout_out = captured.str();
  return rc == -1 ? -1 : WEXITSTATUS(rc);
}

TEST(CliTest, VersionPrintsProvenance) {
  std::string out;
  ASSERT_EQ(RunCliWithStdin(CliPath() + " version", "", &out), 0);
  EXPECT_EQ(out.substr(0, 10), "prefcover ");
  EXPECT_NE(out.find("git: "), std::string::npos);
  EXPECT_NE(out.find("build: "), std::string::npos);
  // --version is an alias.
  EXPECT_EQ(RunCli(CliPath() + " --version"), 0);
}

TEST_F(CliPipelineTest, SolveClampsOversizedBudget) {
  SetUpPipeline();
  // k beyond the catalog clamps with a warning instead of failing ...
  EXPECT_EQ(RunCli(CliPath() + " solve --graph=" + graph_ + " --k=1000000"),
            0);
  // ... but a non-positive k is a usage error.
  EXPECT_NE(RunCli(CliPath() + " solve --graph=" + graph_ + " --k=0"), 0);
}

TEST_F(CliPipelineTest, SolveEmitsLoadableServingIndex) {
  SetUpPipeline();
  std::string index = TempPath("index.pcsidx");
  ASSERT_EQ(RunCli(CliPath() + " solve --graph=" + graph_ +
                   " --k=15 --index_out=" + index),
            0);
  ASSERT_TRUE(FileNonEmpty(index));

  // The emitted artifact serves a full stdin session end to end.
  std::string out;
  ASSERT_EQ(RunCliWithStdin(CliPath() + " serve --index=" + index,
                            "covered 0\n"
                            "subs 0 4\n"
                            "coverk 15\n"
                            "batch 0 1 2\n"
                            "stats\n"
                            "bogus request\n"
                            "quit\n",
                            &out),
            0);
  EXPECT_NE(out.find("OK covered "), std::string::npos);
  EXPECT_NE(out.find("OK subs "), std::string::npos);
  EXPECT_NE(out.find("OK coverk "), std::string::npos);
  EXPECT_NE(out.find("OK batch 3 "), std::string::npos);
  EXPECT_NE(out.find("OK stats requests="), std::string::npos);
  EXPECT_NE(out.find("ERR InvalidArgument"), std::string::npos);
  EXPECT_NE(out.find("OK bye"), std::string::npos);

  // Serving a corrupt artifact fails at startup.
  std::string corrupt = TempPath("corrupt.pcsidx");
  {
    std::ifstream src(index, std::ios::binary);
    std::ostringstream bytes;
    bytes << src.rdbuf();
    std::string mutated = bytes.str();
    mutated[mutated.size() / 2] =
        static_cast<char>(mutated[mutated.size() / 2] ^ 0x20);
    std::ofstream dst(corrupt, std::ios::binary);
    dst << mutated;
  }
  EXPECT_NE(RunCli(CliPath() + " serve --index=" + corrupt), 0);
}

TEST_F(CliPipelineTest, ServeExposesLiveMetricsAndSnapshotDump) {
  SetUpPipeline();
  std::string index = TempPath("metrics_index.pcsidx");
  ASSERT_EQ(RunCli(CliPath() + " solve --graph=" + graph_ +
                   " --k=15 --index_out=" + index),
            0);

  // The `metrics` verb renders a Prometheus text exposition in-band,
  // framed by the `# EOF` marker; --metrics_out dumps the registry
  // snapshot as JSON on clean shutdown.
  std::string snapshot = TempPath("serve_metrics.json");
  std::string out;
  ASSERT_EQ(RunCliWithStdin(CliPath() + " serve --index=" + index +
                                " --metrics_out=" + snapshot,
                            "covered 0\n"
                            "covered 1\n"
                            "metrics\n"
                            "quit\n",
                            &out),
            0);
  EXPECT_NE(out.find("# TYPE serve_requests counter"), std::string::npos);
  EXPECT_NE(out.find("serve_requests 2"), std::string::npos);
  EXPECT_NE(out.find("# TYPE serve_latency_us histogram"),
            std::string::npos);
  EXPECT_NE(out.find("# EOF"), std::string::npos);
  EXPECT_NE(out.find("OK bye"), std::string::npos);

  ASSERT_TRUE(FileNonEmpty(snapshot));
  std::ostringstream snapshot_text;
  {
    std::ifstream in(snapshot);
    snapshot_text << in.rdbuf();
  }
  EXPECT_NE(snapshot_text.str().find("\"serve.requests\""),
            std::string::npos);
  EXPECT_NE(snapshot_text.str().find("\"serve.latency_us\""),
            std::string::npos);
}

TEST(CliTest, ConstructWithExplicitVariant) {
  std::string clicks = TempPath("pm_clicks.csv");
  std::string graph = TempPath("pm_graph.pcg");
  ASSERT_EQ(RunCli(CliPath() + " generate --profile=PM --scale=0.002 --out=" +
                clicks),
            0);
  EXPECT_EQ(RunCli(CliPath() + " construct --input=" + clicks +
                " --variant=normalized --out=" + graph),
            0);
  EXPECT_EQ(RunCli(CliPath() + " solve --graph=" + graph +
                " --k=20 --variant=normalized"),
            0);
}

}  // namespace
}  // namespace prefcover
