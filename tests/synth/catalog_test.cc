#include "synth/catalog.h"

#include <set>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(CatalogTest, GeneratesRequestedShape) {
  Rng rng(1);
  CatalogParams params;
  params.num_items = 500;
  params.num_categories = 20;
  params.num_brands = 10;
  params.num_price_tiers = 5;
  auto catalog = Catalog::Generate(params, &rng);
  ASSERT_TRUE(catalog.ok());
  EXPECT_EQ(catalog->NumItems(), 500u);
  EXPECT_EQ(catalog->num_categories(), 20u);
  for (uint32_t i = 0; i < 500; ++i) {
    const Catalog::Item& item = catalog->item(i);
    EXPECT_LT(item.category, 20u);
    EXPECT_LT(item.brand, 10u);
    EXPECT_LT(item.price_tier, 5u);
  }
}

TEST(CatalogTest, NoCategoryIsEmpty) {
  Rng rng(2);
  CatalogParams params;
  params.num_items = 100;
  params.num_categories = 100;  // one item per category minimum
  auto catalog = Catalog::Generate(params, &rng);
  ASSERT_TRUE(catalog.ok());
  for (uint32_t c = 0; c < 100; ++c) {
    EXPECT_FALSE(catalog->CategoryMembers(c).empty()) << "category " << c;
  }
}

TEST(CatalogTest, CategoryMembersConsistentAndSorted) {
  Rng rng(3);
  CatalogParams params;
  params.num_items = 300;
  params.num_categories = 10;
  auto catalog = Catalog::Generate(params, &rng);
  ASSERT_TRUE(catalog.ok());
  size_t total = 0;
  for (uint32_t c = 0; c < 10; ++c) {
    const auto& members = catalog->CategoryMembers(c);
    total += members.size();
    for (size_t i = 0; i < members.size(); ++i) {
      EXPECT_EQ(catalog->item(members[i]).category, c);
      if (i > 0) {
        EXPECT_LT(members[i - 1], members[i]);
      }
    }
  }
  EXPECT_EQ(total, 300u);
}

TEST(CatalogTest, SkewedCategorySizes) {
  Rng rng(4);
  CatalogParams params;
  params.num_items = 5000;
  params.num_categories = 50;
  params.category_size_skew = 1.2;
  auto catalog = Catalog::Generate(params, &rng);
  ASSERT_TRUE(catalog.ok());
  size_t largest = 0, smallest = SIZE_MAX;
  for (uint32_t c = 0; c < 50; ++c) {
    size_t size = catalog->CategoryMembers(c).size();
    largest = std::max(largest, size);
    smallest = std::min(smallest, size);
  }
  EXPECT_GT(largest, 4 * smallest);  // heavy head
}

TEST(CatalogTest, ItemNamesEncodeAttributes) {
  Rng rng(5);
  CatalogParams params;
  params.num_items = 10;
  params.num_categories = 2;
  auto catalog = Catalog::Generate(params, &rng);
  ASSERT_TRUE(catalog.ok());
  std::set<std::string> names;
  for (uint32_t i = 0; i < 10; ++i) {
    std::string name = catalog->ItemName(i);
    EXPECT_EQ(name[0], 'c');
    names.insert(name);
  }
  EXPECT_EQ(names.size(), 10u);  // unique
}

TEST(CatalogTest, DeterministicInSeed) {
  CatalogParams params;
  params.num_items = 200;
  params.num_categories = 20;
  Rng rng1(77), rng2(77);
  auto a = Catalog::Generate(params, &rng1);
  auto b = Catalog::Generate(params, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  for (uint32_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a->item(i).category, b->item(i).category);
    EXPECT_EQ(a->item(i).brand, b->item(i).brand);
    EXPECT_EQ(a->item(i).price_tier, b->item(i).price_tier);
  }
}

TEST(CatalogTest, InvalidParamsRejected) {
  Rng rng(1);
  CatalogParams params;
  params.num_items = 0;
  EXPECT_FALSE(Catalog::Generate(params, &rng).ok());
  params.num_items = 5;
  params.num_categories = 10;
  EXPECT_FALSE(Catalog::Generate(params, &rng).ok());
  params.num_categories = 2;
  params.num_brands = 0;
  EXPECT_FALSE(Catalog::Generate(params, &rng).ok());
}

}  // namespace
}  // namespace prefcover
