#include "synth/similarity_graph.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

#include "clickstream/graph_construction.h"
#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "synth/session_generator.h"

namespace prefcover {
namespace {

Catalog MakeCatalog(Rng* rng, uint32_t items = 200, uint32_t categories = 10) {
  CatalogParams params;
  params.num_items = items;
  params.num_categories = categories;
  auto catalog = Catalog::Generate(params, rng);
  EXPECT_TRUE(catalog.ok());
  return std::move(catalog).value();
}

std::vector<double> UniformWeights(size_t n) {
  return std::vector<double>(n, 1.0 / static_cast<double>(n));
}

TEST(SimilarityGraphTest, EdgesStayWithinCategories) {
  Rng rng(1);
  Catalog catalog = MakeCatalog(&rng);
  auto g = BuildSimilarityGraph(catalog, UniformWeights(200));
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 200u);
  EXPECT_GT(g->NumEdges(), 0u);
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    for (NodeId u : g->OutNeighbors(v).nodes) {
      EXPECT_EQ(catalog.item(u).category, catalog.item(v).category);
    }
  }
}

TEST(SimilarityGraphTest, MaxAlternativesRespected) {
  Rng rng(2);
  Catalog catalog = MakeCatalog(&rng, 300, 3);  // big categories
  SimilarityGraphParams params;
  params.max_alternatives = 5;
  auto g = BuildSimilarityGraph(catalog, UniformWeights(300), params);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    EXPECT_LE(g->OutDegree(v), 5u);
  }
}

TEST(SimilarityGraphTest, SameBrandScoresHigher) {
  Rng rng(3);
  Catalog catalog = MakeCatalog(&rng, 400, 4);
  SimilarityGraphParams params;
  params.max_alternatives = 100;  // keep everything
  params.min_acceptance = 0.0;
  params.tier_distance_damping = 1.0;  // isolate brand effect
  auto g = BuildSimilarityGraph(catalog, UniformWeights(400), params);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    AdjacencyView out = g->OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      double expected = catalog.item(out.nodes[i]).brand ==
                                catalog.item(v).brand
                            ? params.base_acceptance +
                                  params.same_brand_boost
                            : params.base_acceptance;
      EXPECT_NEAR(out.weights[i], expected, 1e-12);
    }
  }
}

TEST(SimilarityGraphTest, TierDistanceWeakensAcceptance) {
  Rng rng(4);
  Catalog catalog = MakeCatalog(&rng, 400, 4);
  SimilarityGraphParams params;
  params.max_alternatives = 100;
  params.min_acceptance = 0.0;
  params.same_brand_boost = 0.0;  // isolate tier effect
  auto g = BuildSimilarityGraph(catalog, UniformWeights(400), params);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    AdjacencyView out = g->OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      uint32_t gap =
          std::max(catalog.item(out.nodes[i]).price_tier,
                   catalog.item(v).price_tier) -
          std::min(catalog.item(out.nodes[i]).price_tier,
                   catalog.item(v).price_tier);
      double expected = params.base_acceptance *
                        std::pow(params.tier_distance_damping,
                                 static_cast<double>(gap));
      EXPECT_NEAR(out.weights[i], expected, 1e-12);
    }
  }
}

TEST(SimilarityGraphTest, ValidationErrors) {
  Rng rng(5);
  Catalog catalog = MakeCatalog(&rng);
  EXPECT_TRUE(BuildSimilarityGraph(catalog, UniformWeights(5))
                  .status()
                  .IsInvalidArgument());
  SimilarityGraphParams params;
  params.max_alternatives = 0;
  EXPECT_TRUE(BuildSimilarityGraph(catalog, UniformWeights(200), params)
                  .status()
                  .IsInvalidArgument());
}

TEST(BlendGraphsTest, AlphaOneIsPrimaryAlphaZeroIsPrior) {
  Rng rng(6);
  Catalog catalog = MakeCatalog(&rng, 50, 5);
  auto prior = BuildSimilarityGraph(catalog, UniformWeights(50));
  ASSERT_TRUE(prior.ok());
  // Primary: a graph with one hand-made edge.
  GraphBuilder b;
  for (uint32_t i = 0; i < 50; ++i) b.AddNode(1.0 / 50.0);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.9).ok());
  auto primary = b.Finalize();
  ASSERT_TRUE(primary.ok());

  auto all_primary = BlendPreferenceGraphs(*primary, *prior, 1.0);
  ASSERT_TRUE(all_primary.ok());
  EXPECT_EQ(all_primary->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(all_primary->EdgeWeight(0, 1), 0.9);

  auto all_prior = BlendPreferenceGraphs(*primary, *prior, 0.0);
  ASSERT_TRUE(all_prior.ok());
  EXPECT_EQ(all_prior->NumEdges(), prior->NumEdges());
}

TEST(BlendGraphsTest, OverlappingEdgesBlendLinearly) {
  GraphBuilder b1, b2;
  for (int i = 0; i < 3; ++i) {
    b1.AddNode(1.0 / 3.0);
    b2.AddNode(1.0 / 3.0);
  }
  ASSERT_TRUE(b1.AddEdge(0, 1, 0.8).ok());
  ASSERT_TRUE(b2.AddEdge(0, 1, 0.4).ok());
  ASSERT_TRUE(b2.AddEdge(0, 2, 0.6).ok());
  auto primary = b1.Finalize();
  auto prior = b2.Finalize();
  ASSERT_TRUE(primary.ok() && prior.ok());
  auto blended = BlendPreferenceGraphs(*primary, *prior, 0.75);
  ASSERT_TRUE(blended.ok());
  EXPECT_NEAR(blended->EdgeWeight(0, 1), 0.75 * 0.8 + 0.25 * 0.4, 1e-12);
  EXPECT_NEAR(blended->EdgeWeight(0, 2), 0.25 * 0.6, 1e-12);
}

TEST(BlendGraphsTest, ValidationErrors) {
  GraphBuilder b1, b2;
  b1.AddNode(1.0);
  b2.AddNode(0.5);
  b2.AddNode(0.5);
  auto g1 = b1.Finalize();
  auto g2 = b2.Finalize();
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_TRUE(
      BlendPreferenceGraphs(*g1, *g2, 0.5).status().IsInvalidArgument());
  EXPECT_TRUE(
      BlendPreferenceGraphs(*g1, *g1, 1.5).status().IsInvalidArgument());
}

TEST(ColdStartTest, BlendingImprovesThinClickstreamSolutions) {
  // The cold-start scenario the footnote motivates: with very few
  // sessions, the behavioral graph misses most alternatives; blending in
  // the similarity prior recovers solution quality measured on the truth.
  Rng rng(7);
  Catalog catalog = MakeCatalog(&rng, 240, 8);
  PreferenceModelParams mparams;
  mparams.popularity_skew = 0.6;
  auto model = PreferenceModel::Build(&catalog, mparams, &rng);
  ASSERT_TRUE(model.ok());
  const PreferenceGraph& truth = model->graph();

  SessionGeneratorParams sparams;
  sparams.num_sessions = 800;  // very thin
  auto cs = GenerateSessions(*model, sparams, &rng);
  ASSERT_TRUE(cs.ok());
  auto behavioral = BuildPreferenceGraph(*cs);
  ASSERT_TRUE(behavioral.ok());

  std::vector<double> weights(behavioral->NodeWeights().begin(),
                              behavioral->NodeWeights().end());
  auto prior = BuildSimilarityGraph(catalog, weights);
  ASSERT_TRUE(prior.ok());
  auto blended = BlendPreferenceGraphs(*behavioral, *prior, 0.5);
  ASSERT_TRUE(blended.ok());

  const size_t k = 24;
  auto sol_behavioral = SolveGreedyLazy(*behavioral, k);
  auto sol_blended = SolveGreedyLazy(*blended, k);
  ASSERT_TRUE(sol_behavioral.ok() && sol_blended.ok());
  double cover_behavioral =
      EvaluateCover(truth, sol_behavioral->items, Variant::kIndependent)
          .value();
  double cover_blended =
      EvaluateCover(truth, sol_blended->items, Variant::kIndependent)
          .value();
  EXPECT_GT(cover_blended, cover_behavioral - 0.01)
      << "blending should not hurt at cold start";
}

}  // namespace
}  // namespace prefcover
