#include "synth/preference_model.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace prefcover {
namespace {

Catalog MakeCatalog(Rng* rng, uint32_t items = 400, uint32_t categories = 20) {
  CatalogParams params;
  params.num_items = items;
  params.num_categories = categories;
  auto catalog = Catalog::Generate(params, rng);
  EXPECT_TRUE(catalog.ok());
  return std::move(catalog).value();
}

TEST(PreferenceModelTest, GraphShapeMatchesParams) {
  Rng rng(1);
  Catalog catalog = MakeCatalog(&rng);
  PreferenceModelParams params;
  params.mean_alternatives = 5.0;
  auto model = PreferenceModel::Build(&catalog, params, &rng);
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  const PreferenceGraph& g = model->graph();
  EXPECT_EQ(g.NumNodes(), 400u);
  EXPECT_NEAR(g.TotalNodeWeight(), 1.0, 1e-9);
  double mean_degree =
      static_cast<double>(g.NumEdges()) / static_cast<double>(g.NumNodes());
  EXPECT_GT(mean_degree, 3.0);
  EXPECT_LT(mean_degree, 7.0);
  EXPECT_TRUE(g.HasLabels());
}

TEST(PreferenceModelTest, AlternativesMostlyWithinCategory) {
  Rng rng(2);
  Catalog catalog = MakeCatalog(&rng);
  PreferenceModelParams params;
  params.cross_category_share = 0.05;
  auto model = PreferenceModel::Build(&catalog, params, &rng);
  ASSERT_TRUE(model.ok());
  const PreferenceGraph& g = model->graph();
  size_t intra = 0, total = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    for (NodeId u : g.OutNeighbors(v).nodes) {
      ++total;
      if (catalog.item(u).category == catalog.item(v).category) ++intra;
    }
  }
  ASSERT_GT(total, 0u);
  EXPECT_GT(static_cast<double>(intra) / static_cast<double>(total), 0.85);
}

TEST(PreferenceModelTest, SameBrandEdgesAreStronger) {
  Rng rng(3);
  Catalog catalog = MakeCatalog(&rng, 1000, 10);
  PreferenceModelParams params;
  params.same_brand_boost = 0.3;
  params.tier_distance_damping = 1.0;  // isolate the brand effect
  auto model = PreferenceModel::Build(&catalog, params, &rng);
  ASSERT_TRUE(model.ok());
  const PreferenceGraph& g = model->graph();
  double same_sum = 0.0, diff_sum = 0.0;
  size_t same_n = 0, diff_n = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    AdjacencyView out = g.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      NodeId u = out.nodes[i];
      if (catalog.item(u).category != catalog.item(v).category) continue;
      // Variant-group edges are brand-independent by design; skip them.
      if (model->group_of()[u] == model->group_of()[v]) continue;
      if (catalog.item(u).brand == catalog.item(v).brand) {
        same_sum += out.weights[i];
        ++same_n;
      } else {
        diff_sum += out.weights[i];
        ++diff_n;
      }
    }
  }
  ASSERT_GT(same_n, 50u);
  ASSERT_GT(diff_n, 50u);
  EXPECT_GT(same_sum / static_cast<double>(same_n),
            diff_sum / static_cast<double>(diff_n) + 0.1);
}

TEST(PreferenceModelTest, PriceTierDistanceWeakensEdges) {
  Rng rng(4);
  Catalog catalog = MakeCatalog(&rng, 1000, 10);
  PreferenceModelParams params;
  params.same_brand_boost = 0.0;  // isolate the tier effect
  params.tier_distance_damping = 0.5;
  auto model = PreferenceModel::Build(&catalog, params, &rng);
  ASSERT_TRUE(model.ok());
  const PreferenceGraph& g = model->graph();
  double near_sum = 0.0, far_sum = 0.0;
  size_t near_n = 0, far_n = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    AdjacencyView out = g.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      NodeId u = out.nodes[i];
      if (catalog.item(u).category != catalog.item(v).category) continue;
      // Variant-group edges are tier-independent by design; skip them.
      if (model->group_of()[u] == model->group_of()[v]) continue;
      uint32_t gap = catalog.item(u).price_tier > catalog.item(v).price_tier
                         ? catalog.item(u).price_tier -
                               catalog.item(v).price_tier
                         : catalog.item(v).price_tier -
                               catalog.item(u).price_tier;
      if (gap == 0) {
        near_sum += out.weights[i];
        ++near_n;
      } else if (gap >= 2) {
        far_sum += out.weights[i];
        ++far_n;
      }
    }
  }
  ASSERT_GT(near_n, 50u);
  ASSERT_GT(far_n, 50u);
  EXPECT_GT(near_sum / static_cast<double>(near_n),
            2.0 * far_sum / static_cast<double>(far_n));
}

TEST(PreferenceModelTest, VariantGroupsAreStrongSubstitutes) {
  Rng rng(11);
  Catalog catalog = MakeCatalog(&rng, 600, 12);
  PreferenceModelParams params;
  params.variant_group_mean_size = 3.0;
  auto model = PreferenceModel::Build(&catalog, params, &rng);
  ASSERT_TRUE(model.ok());
  const PreferenceGraph& g = model->graph();
  const auto& group_of = model->group_of();
  ASSERT_EQ(group_of.size(), g.NumNodes());

  size_t group_edges = 0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    AdjacencyView out = g.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      NodeId u = out.nodes[i];
      if (group_of[u] != group_of[v]) continue;
      ++group_edges;
      // Same group implies same category and a strong acceptance.
      EXPECT_EQ(catalog.item(u).category, catalog.item(v).category);
      EXPECT_GE(out.weights[i], params.group_acceptance_lo - 1e-12);
      EXPECT_LE(out.weights[i], params.group_acceptance_hi + 1e-12);
      // Variant edges are symmetric (both directions exist).
      EXPECT_TRUE(g.HasEdge(u, v));
    }
  }
  EXPECT_GT(group_edges, 200u);  // groups of mean size 3 produce plenty
}

TEST(PreferenceModelTest, GroupPopularityIsCorrelated) {
  // Items in the same variant group must have similar popularity: within
  // a group, max/min weight is bounded by the mild within-group skew,
  // whereas across random items it varies by orders of magnitude.
  Rng rng(12);
  Catalog catalog = MakeCatalog(&rng, 600, 12);
  PreferenceModelParams params;
  params.variant_group_mean_size = 3.0;
  params.within_group_skew = 0.5;
  auto model = PreferenceModel::Build(&catalog, params, &rng);
  ASSERT_TRUE(model.ok());
  const PreferenceGraph& g = model->graph();
  const auto& group_of = model->group_of();

  std::map<uint32_t, std::vector<double>> groups;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    groups[group_of[v]].push_back(g.NodeWeight(v));
  }
  for (const auto& [gid, weights] : groups) {
    if (weights.size() < 2) continue;
    double lo = *std::min_element(weights.begin(), weights.end());
    double hi = *std::max_element(weights.begin(), weights.end());
    ASSERT_GT(lo, 0.0);
    // Zipf(0.5) over at most ~8 variants: ratio bounded by ~sqrt(8) ~ 2.9.
    EXPECT_LT(hi / lo, 4.0) << "group " << gid;
  }
}

TEST(PreferenceModelTest, NormalizedModeIsAdmissible) {
  Rng rng(5);
  Catalog catalog = MakeCatalog(&rng);
  PreferenceModelParams params;
  params.normalized = true;
  params.mean_alternatives = 6.0;
  auto model = PreferenceModel::Build(&catalog, params, &rng);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE(IsNormalizedAdmissible(model->graph()));
  EXPECT_TRUE(model->normalized());
}

TEST(PreferenceModelTest, RejectsNullOrEmptyCatalog) {
  Rng rng(6);
  PreferenceModelParams params;
  EXPECT_FALSE(PreferenceModel::Build(nullptr, params, &rng).ok());
}

TEST(PreferenceModelTest, DeterministicInSeed) {
  Rng crng(7);
  Catalog catalog = MakeCatalog(&crng, 100, 10);
  PreferenceModelParams params;
  Rng rng1(88), rng2(88);
  auto a = PreferenceModel::Build(&catalog, params, &rng1);
  auto b = PreferenceModel::Build(&catalog, params, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->graph().NumEdges(), b->graph().NumEdges());
  for (NodeId v = 0; v < 100; ++v) {
    EXPECT_DOUBLE_EQ(a->graph().NodeWeight(v), b->graph().NodeWeight(v));
  }
}

}  // namespace
}  // namespace prefcover
