// End-to-end accuracy of the Data Adaptation Engine: generate sessions
// from a known ground-truth model, reconstruct the preference graph from
// the clickstream, and verify the reconstruction converges to the truth —
// the validation the paper's private data could not offer.

#include <gtest/gtest.h>

#include "clickstream/graph_construction.h"
#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "synth/session_generator.h"

namespace prefcover {
namespace {

struct RecoverySetup {
  Catalog catalog;
  PreferenceGraph truth;
  PreferenceGraph recovered;
};

RecoverySetup RunRecovery(bool normalized, uint64_t sessions,
                          uint64_t seed) {
  Rng rng(seed);
  RecoverySetup setup;
  CatalogParams cparams;
  cparams.num_items = 120;
  cparams.num_categories = 8;
  auto catalog = Catalog::Generate(cparams, &rng);
  EXPECT_TRUE(catalog.ok());
  setup.catalog = std::move(catalog).value();

  PreferenceModelParams mparams;
  mparams.normalized = normalized;
  mparams.popularity_skew = 0.6;  // flatter: all items get purchases
  auto model = PreferenceModel::Build(&setup.catalog, mparams, &rng);
  EXPECT_TRUE(model.ok());
  setup.truth = model->graph();

  SessionGeneratorParams sparams;
  sparams.num_sessions = sessions;
  sparams.behavior =
      normalized ? SessionGeneratorParams::ClickBehavior::kSingleAlternative
                 : SessionGeneratorParams::ClickBehavior::kIndependent;
  auto cs = GenerateSessions(*model, sparams, &rng);
  EXPECT_TRUE(cs.ok());

  GraphConstructionOptions gparams;
  gparams.variant = normalized ? Variant::kNormalized : Variant::kIndependent;
  auto recovered = BuildPreferenceGraph(*cs, gparams);
  EXPECT_TRUE(recovered.ok()) << recovered.status().ToString();
  setup.recovered = std::move(recovered).value();
  return setup;
}

class RecoveryTest : public ::testing::TestWithParam<bool> {};

TEST_P(RecoveryTest, NodeWeightsConvergeToTruth) {
  RecoverySetup setup = RunRecovery(GetParam(), 400'000, 1);
  ASSERT_EQ(setup.recovered.NumNodes(), setup.truth.NumNodes());
  for (NodeId v = 0; v < setup.truth.NumNodes(); ++v) {
    double truth_w = setup.truth.NodeWeight(v);
    double rec_w = setup.recovered.NodeWeight(v);
    EXPECT_NEAR(rec_w, truth_w, 0.25 * truth_w + 0.002) << "node " << v;
  }
}

TEST_P(RecoveryTest, EdgeWeightsConvergeForPopularItems) {
  RecoverySetup setup = RunRecovery(GetParam(), 400'000, 2);
  size_t checked = 0;
  for (NodeId v = 0; v < setup.truth.NumNodes(); ++v) {
    if (setup.truth.NodeWeight(v) < 0.01) continue;  // enough samples only
    AdjacencyView out = setup.truth.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      double truth_w = out.weights[i];
      if (truth_w < 0.05) continue;
      double rec_w = setup.recovered.EdgeWeight(v, out.nodes[i]);
      EXPECT_NEAR(rec_w, truth_w, 0.2 * truth_w + 0.02)
          << "edge " << v << "->" << out.nodes[i];
      ++checked;
    }
  }
  EXPECT_GT(checked, 10u);
}

TEST_P(RecoveryTest, NoSpuriousStrongEdges) {
  RecoverySetup setup = RunRecovery(GetParam(), 200'000, 3);
  // Any recovered edge of meaningful weight out of a well-sampled item must
  // exist in the truth.
  for (NodeId v = 0; v < setup.recovered.NumNodes(); ++v) {
    if (setup.truth.NodeWeight(v) < 0.01) continue;
    AdjacencyView out = setup.recovered.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      if (out.weights[i] < 0.05) continue;
      EXPECT_TRUE(setup.truth.HasEdge(v, out.nodes[i]))
          << "spurious edge " << v << "->" << out.nodes[i] << " weight "
          << out.weights[i];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Behaviors, RecoveryTest, ::testing::Bool(),
                         [](const auto& param_info) {
                           return param_info.param ? "normalized"
                                                   : "independent";
                         });

TEST(RecoveryTest, GreedyOnRecoveredGraphNearTruthQuality) {
  // The operational criterion: solving on the reconstructed graph must
  // give nearly the cover (evaluated on the TRUE graph) that solving on
  // the truth itself gives.
  RecoverySetup setup = RunRecovery(false, 300'000, 4);
  const size_t k = 20;
  auto sol_truth = SolveGreedyLazy(setup.truth, k);
  auto sol_rec = SolveGreedyLazy(setup.recovered, k);
  ASSERT_TRUE(sol_truth.ok() && sol_rec.ok());
  auto rec_on_truth =
      EvaluateCover(setup.truth, sol_rec->items, Variant::kIndependent);
  ASSERT_TRUE(rec_on_truth.ok());
  EXPECT_GT(*rec_on_truth, 0.93 * sol_truth->cover);
}

}  // namespace
}  // namespace prefcover
