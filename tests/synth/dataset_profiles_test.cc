#include "synth/dataset_profiles.h"

#include <gtest/gtest.h>

#include "clickstream/variant_selection.h"
#include "graph/graph_stats.h"

namespace prefcover {
namespace {

TEST(ProfileSpecTest, TableTwoConstants) {
  const ProfileSpec& pe = GetProfileSpec(DatasetProfile::kPE);
  EXPECT_STREQ(pe.name, "PE");
  EXPECT_EQ(pe.sessions, 10'782'918u);
  EXPECT_EQ(pe.items, 1'921'701u);
  EXPECT_EQ(pe.edges, 9'250'131u);
  EXPECT_EQ(pe.natural_variant, Variant::kIndependent);

  const ProfileSpec& pm = GetProfileSpec(DatasetProfile::kPM);
  EXPECT_EQ(pm.natural_variant, Variant::kNormalized);

  const ProfileSpec& yc = GetProfileSpec(DatasetProfile::kYC);
  EXPECT_EQ(yc.sessions, 9'249'729u);
  EXPECT_EQ(yc.purchases, 259'579u);
  EXPECT_EQ(yc.items, 52'739u);
  EXPECT_EQ(yc.edges, 249'008u);
}

TEST(ProfileSpecTest, ParseNames) {
  EXPECT_EQ(ParseProfileName("PE").value(), DatasetProfile::kPE);
  EXPECT_EQ(ParseProfileName("PF").value(), DatasetProfile::kPF);
  EXPECT_EQ(ParseProfileName("PM").value(), DatasetProfile::kPM);
  EXPECT_EQ(ParseProfileName("YC").value(), DatasetProfile::kYC);
  EXPECT_FALSE(ParseProfileName("XX").ok());
}

TEST(ProfileGraphTest, ScaledGraphMatchesSpecShape) {
  const double scale = 0.005;
  for (DatasetProfile profile :
       {DatasetProfile::kPE, DatasetProfile::kYC}) {
    const ProfileSpec& spec = GetProfileSpec(profile);
    auto g = GenerateProfileGraph(profile, scale, /*seed=*/1);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    double expected_nodes = static_cast<double>(spec.items) * scale;
    EXPECT_NEAR(static_cast<double>(g->NumNodes()), expected_nodes,
                expected_nodes * 0.02 + 20);
    // Edge density within 40% of the paper's edges/items ratio.
    double expected_density =
        static_cast<double>(spec.edges) / static_cast<double>(spec.items);
    double actual_density = static_cast<double>(g->NumEdges()) /
                            static_cast<double>(g->NumNodes());
    EXPECT_NEAR(actual_density, expected_density, expected_density * 0.4)
        << spec.name;
    EXPECT_NEAR(g->TotalNodeWeight(), 1.0, 1e-9);
  }
}

TEST(ProfileGraphTest, PmGraphIsNormalizedAdmissible) {
  auto g = GenerateProfileGraph(DatasetProfile::kPM, 0.003, 7);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsNormalizedAdmissible(*g));
}

TEST(ProfileGraphTest, ExplicitNodeCount) {
  auto g = GenerateProfileGraphWithNodes(DatasetProfile::kPE, 5000, 3);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 5000u);
}

TEST(ProfileGraphTest, InvalidScaleRejected) {
  EXPECT_FALSE(GenerateProfileGraph(DatasetProfile::kPE, 0.0, 1).ok());
  EXPECT_FALSE(GenerateProfileGraph(DatasetProfile::kPE, 1.5, 1).ok());
  EXPECT_FALSE(
      GenerateProfileGraphWithNodes(DatasetProfile::kPE, 0, 1).ok());
}

TEST(ProfileGraphTest, DeterministicInSeed) {
  auto a = GenerateProfileGraph(DatasetProfile::kYC, 0.01, 5);
  auto b = GenerateProfileGraph(DatasetProfile::kYC, 0.01, 5);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->NumNodes(), b->NumNodes());
  EXPECT_EQ(a->NumEdges(), b->NumEdges());
  auto c = GenerateProfileGraph(DatasetProfile::kYC, 0.01, 6);
  ASSERT_TRUE(c.ok());
  bool differs = c->NumEdges() != a->NumEdges();
  if (!differs) {
    for (NodeId v = 0; v < a->NumNodes() && !differs; ++v) {
      differs = a->NodeWeight(v) != c->NodeWeight(v);
    }
  }
  EXPECT_TRUE(differs);
}

TEST(ProfileClickstreamTest, YcShapeHasBrowseDominance) {
  auto cs = GenerateProfileClickstream(DatasetProfile::kYC, 0.01, 11);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  ClickstreamStats stats = cs->ComputeStats();
  const ProfileSpec& spec = GetProfileSpec(DatasetProfile::kYC);
  double expected_purchase_share = static_cast<double>(spec.purchases) /
                                   static_cast<double>(spec.sessions);
  double actual = static_cast<double>(stats.num_purchases) /
                  static_cast<double>(stats.num_sessions);
  EXPECT_NEAR(actual, expected_purchase_share,
              expected_purchase_share * 0.25);
}

TEST(ProfileClickstreamTest, PmFitsNormalizedVariant) {
  auto cs = GenerateProfileClickstream(DatasetProfile::kPM, 0.002, 13);
  ASSERT_TRUE(cs.ok());
  VariantRecommendation rec = RecommendVariant(*cs);
  EXPECT_EQ(rec.variant, Variant::kNormalized);
  EXPECT_GE(rec.normalized_fit, 0.9);
}

TEST(ProfileClickstreamTest, PeFitsIndependentVariant) {
  auto cs = GenerateProfileClickstream(DatasetProfile::kPE, 0.002, 17);
  ASSERT_TRUE(cs.ok());
  VariantRecommendation rec = RecommendVariant(*cs);
  EXPECT_EQ(rec.variant, Variant::kIndependent);
  EXPECT_TRUE(rec.independent_fits)
      << "independence measure: " << rec.independence;
}

}  // namespace
}  // namespace prefcover
