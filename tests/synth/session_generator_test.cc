#include "synth/session_generator.h"

#include <gtest/gtest.h>

namespace prefcover {
namespace {

PreferenceModel MakeModel(Rng* rng, Catalog* catalog_out,
                          bool normalized = false) {
  CatalogParams cparams;
  cparams.num_items = 200;
  cparams.num_categories = 10;
  auto catalog = Catalog::Generate(cparams, rng);
  EXPECT_TRUE(catalog.ok());
  *catalog_out = std::move(catalog).value();
  PreferenceModelParams mparams;
  mparams.normalized = normalized;
  auto model = PreferenceModel::Build(catalog_out, mparams, rng);
  EXPECT_TRUE(model.ok());
  return std::move(model).value();
}

TEST(SessionGeneratorTest, GeneratesRequestedSessionCount) {
  Rng rng(1);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog);
  SessionGeneratorParams params;
  params.num_sessions = 5000;
  auto cs = GenerateSessions(model, params, &rng);
  ASSERT_TRUE(cs.ok()) << cs.status().ToString();
  EXPECT_EQ(cs->NumSessions(), 5000u);
  // Every session buys (browse share 0 by default).
  EXPECT_EQ(cs->ComputeStats().num_purchases, 5000u);
}

TEST(SessionGeneratorTest, ItemIdsMatchModelNodeIds) {
  Rng rng(2);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog);
  SessionGeneratorParams params;
  params.num_sessions = 100;
  auto cs = GenerateSessions(model, params, &rng);
  ASSERT_TRUE(cs.ok());
  ASSERT_EQ(cs->NumItems(), model.graph().NumNodes());
  for (uint32_t i = 0; i < cs->NumItems(); ++i) {
    EXPECT_EQ(cs->dictionary().Name(i), catalog.ItemName(i));
  }
}

TEST(SessionGeneratorTest, BrowseOnlyShareRespected) {
  Rng rng(3);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog);
  SessionGeneratorParams params;
  params.num_sessions = 20000;
  params.browse_only_share = 0.97;  // YC-like
  auto cs = GenerateSessions(model, params, &rng);
  ASSERT_TRUE(cs.ok());
  ClickstreamStats stats = cs->ComputeStats();
  double purchase_share = static_cast<double>(stats.num_purchases) /
                          static_cast<double>(stats.num_sessions);
  EXPECT_NEAR(purchase_share, 0.03, 0.01);
  // Browse sessions still click.
  EXPECT_GT(stats.num_clicks, stats.num_purchases);
}

TEST(SessionGeneratorTest, PurchaseFrequencyTracksPopularity) {
  Rng rng(4);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog);
  SessionGeneratorParams params;
  params.num_sessions = 60000;
  auto cs = GenerateSessions(model, params, &rng);
  ASSERT_TRUE(cs.ok());
  std::vector<uint64_t> counts(model.graph().NumNodes(), 0);
  for (const Session& s : cs->sessions()) {
    if (s.HasPurchase()) ++counts[s.purchase];
  }
  // Compare empirical shares against model weights for heavy items.
  for (NodeId v = 0; v < model.graph().NumNodes(); ++v) {
    double w = model.graph().NodeWeight(v);
    if (w < 0.01) continue;
    double share = static_cast<double>(counts[v]) / 60000.0;
    EXPECT_NEAR(share, w, 0.35 * w + 0.002) << "node " << v;
  }
}

TEST(SessionGeneratorTest, SingleAlternativeBehaviorClicksAtMostOne) {
  Rng rng(5);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog, /*normalized=*/true);
  SessionGeneratorParams params;
  params.num_sessions = 5000;
  params.behavior =
      SessionGeneratorParams::ClickBehavior::kSingleAlternative;
  auto cs = GenerateSessions(model, params, &rng);
  ASSERT_TRUE(cs.ok());
  for (const Session& s : cs->sessions()) {
    EXPECT_LE(s.Alternatives().size(), 1u);
  }
  // The Normalized fit measure must see this as a perfect fit.
  EXPECT_DOUBLE_EQ(cs->ComputeStats().at_most_one_alternative_share, 1.0);
}

TEST(SessionGeneratorTest, IndependentBehaviorProducesMultiClickSessions) {
  Rng rng(6);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog);
  SessionGeneratorParams params;
  params.num_sessions = 5000;
  params.behavior = SessionGeneratorParams::ClickBehavior::kIndependent;
  auto cs = GenerateSessions(model, params, &rng);
  ASSERT_TRUE(cs.ok());
  size_t multi = 0;
  for (const Session& s : cs->sessions()) {
    if (s.Alternatives().size() > 1) ++multi;
  }
  EXPECT_GT(multi, 100u);  // plenty of multi-alternative sessions
}

TEST(SessionGeneratorTest, ClickPurchaseShareRespected) {
  Rng rng(7);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog);
  SessionGeneratorParams params;
  params.num_sessions = 10000;
  params.click_purchase_share = 1.0;
  auto cs = GenerateSessions(model, params, &rng);
  ASSERT_TRUE(cs.ok());
  for (const Session& s : cs->sessions()) {
    ASSERT_TRUE(s.HasPurchase());
    EXPECT_EQ(s.clicks.empty() ? kInvalidItem : s.clicks[0], s.purchase);
  }
}

TEST(SessionGeneratorTest, InvalidBrowseShareRejected) {
  Rng rng(8);
  Catalog catalog;
  PreferenceModel model = MakeModel(&rng, &catalog);
  SessionGeneratorParams params;
  params.browse_only_share = 1.0;
  EXPECT_FALSE(GenerateSessions(model, params, &rng).ok());
  params.browse_only_share = -0.5;
  EXPECT_FALSE(GenerateSessions(model, params, &rng).ok());
}

TEST(SessionGeneratorTest, DeterministicInSeed) {
  Rng setup(9);
  Catalog catalog;
  PreferenceModel model = MakeModel(&setup, &catalog);
  SessionGeneratorParams params;
  params.num_sessions = 500;
  Rng rng1(42), rng2(42);
  auto a = GenerateSessions(model, params, &rng1);
  auto b = GenerateSessions(model, params, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->NumSessions(), b->NumSessions());
  for (size_t i = 0; i < a->NumSessions(); ++i) {
    EXPECT_EQ(a->sessions()[i].purchase, b->sessions()[i].purchase);
    EXPECT_EQ(a->sessions()[i].clicks, b->sessions()[i].clicks);
  }
}

}  // namespace
}  // namespace prefcover
