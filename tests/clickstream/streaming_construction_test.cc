#include "clickstream/streaming_construction.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "clickstream/clickstream_io.h"
#include "synth/dataset_profiles.h"

namespace prefcover {
namespace {

// Equality modulo nothing: both paths intern items in CSV appearance
// order, so ids coincide.
void ExpectSameGraph(const PreferenceGraph& a, const PreferenceGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    ASSERT_EQ(a.Label(v), b.Label(v));
    ASSERT_DOUBLE_EQ(a.NodeWeight(v), b.NodeWeight(v));
    AdjacencyView oa = a.OutNeighbors(v), ob = b.OutNeighbors(v);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) {
      ASSERT_EQ(oa.nodes[i], ob.nodes[i]);
      ASSERT_DOUBLE_EQ(oa.weights[i], ob.weights[i]);
    }
  }
}

class StreamingParityTest : public ::testing::TestWithParam<Variant> {};

TEST_P(StreamingParityTest, MatchesInMemoryConstructionOnProfileData) {
  DatasetProfile profile = GetParam() == Variant::kNormalized
                               ? DatasetProfile::kPM
                               : DatasetProfile::kYC;
  auto cs = GenerateProfileClickstream(profile, 0.003, 7);
  ASSERT_TRUE(cs.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(*cs, &out).ok());
  const std::string csv = out.str();

  GraphConstructionOptions options;
  options.variant = GetParam();

  // In-memory path: re-read the CSV so interning order matches.
  std::istringstream in_memory_src(csv);
  auto reloaded = ReadClickstreamCsv(&in_memory_src);
  ASSERT_TRUE(reloaded.ok());
  auto in_memory = BuildPreferenceGraph(*reloaded, options);
  ASSERT_TRUE(in_memory.ok());

  std::istringstream streaming_src(csv);
  auto streaming = BuildPreferenceGraphStreaming(&streaming_src, options);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();

  ExpectSameGraph(*in_memory, *streaming);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, StreamingParityTest,
                         ::testing::Values(Variant::kIndependent,
                                           Variant::kNormalized),
                         [](const auto& param_info) {
                           return std::string(VariantName(param_info.param));
                         });

TEST(StreamingParityTest, FiltersMatchInMemory) {
  auto cs = GenerateProfileClickstream(DatasetProfile::kYC, 0.003, 9);
  ASSERT_TRUE(cs.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(*cs, &out).ok());
  GraphConstructionOptions options;
  options.min_edge_weight = 0.15;
  options.min_purchases_for_edges = 3;

  std::istringstream src1(out.str());
  auto reloaded = ReadClickstreamCsv(&src1);
  ASSERT_TRUE(reloaded.ok());
  auto in_memory = BuildPreferenceGraph(*reloaded, options);
  std::istringstream src2(out.str());
  auto streaming = BuildPreferenceGraphStreaming(&src2, options);
  ASSERT_TRUE(in_memory.ok() && streaming.ok());
  ExpectSameGraph(*in_memory, *streaming);
}

TEST(StreamingBuilderTest, IncrementalSessionsApi) {
  StreamingGraphBuilder builder;
  ItemId silver = builder.InternItem("silver");
  ItemId gold = builder.InternItem("gold");
  Session s1;
  s1.clicks = {gold};
  s1.purchase = silver;
  builder.AddSession(std::move(s1));
  Session s2;
  s2.purchase = silver;
  builder.AddSession(std::move(s2));
  EXPECT_EQ(builder.sessions_seen(), 2u);
  EXPECT_EQ(builder.purchases_seen(), 2u);

  auto g = builder.Finish();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->NodeWeight(silver), 1.0);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(silver, gold), 0.5);

  // Builder stays usable: another session shifts the estimate.
  Session s3;
  s3.clicks = {gold};
  s3.purchase = silver;
  builder.AddSession(std::move(s3));
  auto g2 = builder.Finish();
  ASSERT_TRUE(g2.ok());
  EXPECT_NEAR(g2->EdgeWeight(silver, gold), 2.0 / 3.0, 1e-12);
}

TEST(StreamingBuilderTest, NoPurchasesFails) {
  StreamingGraphBuilder builder;
  builder.InternItem("x");
  Session s;
  s.clicks = {0};
  builder.AddSession(std::move(s));
  EXPECT_TRUE(builder.Finish().status().IsFailedPrecondition());
}

TEST(StreamingCsvTest, MalformedInputRejected) {
  {
    std::istringstream in("bad,header,row\n");
    EXPECT_TRUE(BuildPreferenceGraphStreaming(&in)
                    .status()
                    .IsInvalidArgument());
  }
  {
    std::istringstream in(
        "session_id,event_type,item_id\n0,hover,x\n");
    EXPECT_TRUE(BuildPreferenceGraphStreaming(&in)
                    .status()
                    .IsInvalidArgument());
  }
  {
    std::istringstream in(
        "session_id,event_type,item_id\n0,purchase,x\n0,purchase,y\n");
    EXPECT_TRUE(BuildPreferenceGraphStreaming(&in)
                    .status()
                    .IsInvalidArgument());
  }
}

TEST(StreamingCsvTest, FilePathConvenience) {
  auto missing = BuildPreferenceGraphStreamingFile("/no/such/file.csv");
  EXPECT_TRUE(missing.status().IsIOError());

  std::string path = ::testing::TempDir() + "/streaming_test.csv";
  {
    std::ofstream out(path);
    out << "session_id,event_type,item_id\n"
           "0,click,b\n0,purchase,a\n"
           "1,purchase,b\n";
  }
  auto g = BuildPreferenceGraphStreamingFile(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_DOUBLE_EQ(g->NodeWeight(1), 0.5);  // "a" interned second? No:
  // appearance order: b (clicked first) = 0, a = 1; each purchased once.
  EXPECT_DOUBLE_EQ(g->NodeWeight(0), 0.5);
  EXPECT_TRUE(g->HasEdge(1, 0));  // a -> b
}

}  // namespace
}  // namespace prefcover
