#include "clickstream/streaming_construction.h"

#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "clickstream/clickstream_io.h"
#include "synth/dataset_profiles.h"

namespace prefcover {
namespace {

// Equality modulo nothing: both paths intern items in CSV appearance
// order, so ids coincide.
void ExpectSameGraph(const PreferenceGraph& a, const PreferenceGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    ASSERT_EQ(a.Label(v), b.Label(v));
    ASSERT_DOUBLE_EQ(a.NodeWeight(v), b.NodeWeight(v));
    AdjacencyView oa = a.OutNeighbors(v), ob = b.OutNeighbors(v);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) {
      ASSERT_EQ(oa.nodes[i], ob.nodes[i]);
      ASSERT_DOUBLE_EQ(oa.weights[i], ob.weights[i]);
    }
  }
}

class StreamingParityTest : public ::testing::TestWithParam<Variant> {};

TEST_P(StreamingParityTest, MatchesInMemoryConstructionOnProfileData) {
  DatasetProfile profile = GetParam() == Variant::kNormalized
                               ? DatasetProfile::kPM
                               : DatasetProfile::kYC;
  auto cs = GenerateProfileClickstream(profile, 0.003, 7);
  ASSERT_TRUE(cs.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(*cs, &out).ok());
  const std::string csv = out.str();

  GraphConstructionOptions options;
  options.variant = GetParam();

  // In-memory path: re-read the CSV so interning order matches.
  std::istringstream in_memory_src(csv);
  auto reloaded = ReadClickstreamCsv(&in_memory_src);
  ASSERT_TRUE(reloaded.ok());
  auto in_memory = BuildPreferenceGraph(*reloaded, options);
  ASSERT_TRUE(in_memory.ok());

  std::istringstream streaming_src(csv);
  auto streaming = BuildPreferenceGraphStreaming(&streaming_src, options);
  ASSERT_TRUE(streaming.ok()) << streaming.status().ToString();

  ExpectSameGraph(*in_memory, *streaming);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, StreamingParityTest,
                         ::testing::Values(Variant::kIndependent,
                                           Variant::kNormalized),
                         [](const auto& param_info) {
                           return std::string(VariantName(param_info.param));
                         });

TEST(StreamingParityTest, FiltersMatchInMemory) {
  auto cs = GenerateProfileClickstream(DatasetProfile::kYC, 0.003, 9);
  ASSERT_TRUE(cs.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(*cs, &out).ok());
  GraphConstructionOptions options;
  options.min_edge_weight = 0.15;
  options.min_purchases_for_edges = 3;

  std::istringstream src1(out.str());
  auto reloaded = ReadClickstreamCsv(&src1);
  ASSERT_TRUE(reloaded.ok());
  auto in_memory = BuildPreferenceGraph(*reloaded, options);
  std::istringstream src2(out.str());
  auto streaming = BuildPreferenceGraphStreaming(&src2, options);
  ASSERT_TRUE(in_memory.ok() && streaming.ok());
  ExpectSameGraph(*in_memory, *streaming);
}

TEST(StreamingBuilderTest, IncrementalSessionsApi) {
  StreamingGraphBuilder builder;
  ItemId silver = builder.InternItem("silver");
  ItemId gold = builder.InternItem("gold");
  Session s1;
  s1.clicks = {gold};
  s1.purchase = silver;
  builder.AddSession(std::move(s1));
  Session s2;
  s2.purchase = silver;
  builder.AddSession(std::move(s2));
  EXPECT_EQ(builder.sessions_seen(), 2u);
  EXPECT_EQ(builder.purchases_seen(), 2u);

  auto g = builder.Finish();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->NodeWeight(silver), 1.0);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(silver, gold), 0.5);

  // Builder stays usable: another session shifts the estimate.
  Session s3;
  s3.clicks = {gold};
  s3.purchase = silver;
  builder.AddSession(std::move(s3));
  auto g2 = builder.Finish();
  ASSERT_TRUE(g2.ok());
  EXPECT_NEAR(g2->EdgeWeight(silver, gold), 2.0 / 3.0, 1e-12);
}

TEST(StreamingBuilderTest, NoPurchasesFails) {
  StreamingGraphBuilder builder;
  builder.InternItem("x");
  Session s;
  s.clicks = {0};
  builder.AddSession(std::move(s));
  EXPECT_TRUE(builder.Finish().status().IsFailedPrecondition());
}

TEST(StreamingCsvTest, MalformedInputRejected) {
  {
    std::istringstream in("bad,header,row\n");
    EXPECT_TRUE(BuildPreferenceGraphStreaming(&in)
                    .status()
                    .IsInvalidArgument());
  }
  {
    std::istringstream in(
        "session_id,event_type,item_id\n0,hover,x\n");
    EXPECT_TRUE(BuildPreferenceGraphStreaming(&in)
                    .status()
                    .IsInvalidArgument());
  }
  {
    std::istringstream in(
        "session_id,event_type,item_id\n0,purchase,x\n0,purchase,y\n");
    EXPECT_TRUE(BuildPreferenceGraphStreaming(&in)
                    .status()
                    .IsInvalidArgument());
  }
}

// A session id reappearing after other sessions is the documented
// divergence between the two paths: the batch reader rejects the input,
// the streaming pass (which cannot remember every past id) opens a NEW
// session and keeps the statistics correct for that reading.
TEST(StreamingCsvTest, ReappearingSessionIdStartsNewSession) {
  const std::string csv =
      "session_id,event_type,item_id\n"
      "0,click,b\n0,purchase,a\n"
      "1,purchase,b\n"
      "0,purchase,a\n";  // id 0 again, after session 1

  std::istringstream batch_src(csv);
  EXPECT_TRUE(ReadClickstreamCsv(&batch_src).status().IsInvalidArgument());

  std::istringstream streaming_src(csv);
  auto g = BuildPreferenceGraphStreaming(&streaming_src);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  // Three sessions, three purchases: a twice, b once.
  ASSERT_EQ(g->NumNodes(), 2u);
  ItemId b = 0, a = 1;  // interned in appearance order
  EXPECT_EQ(g->Label(a), "a");
  EXPECT_DOUBLE_EQ(g->NodeWeight(a), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(g->NodeWeight(b), 1.0 / 3.0);
  // Only the first a-purchase session clicked b: weight 1/2.
  EXPECT_DOUBLE_EQ(g->EdgeWeight(a, b), 0.5);
}

// Events inside a session block need not be ordered: clicks recorded
// after the purchase row are still the session's alternatives.
TEST(StreamingCsvTest, ClicksAfterPurchaseRowStillCount) {
  const std::string before =
      "session_id,event_type,item_id\n"
      "0,click,b\n0,purchase,a\n1,purchase,b\n";
  const std::string after =
      "session_id,event_type,item_id\n"
      "0,purchase,a\n0,click,b\n1,purchase,b\n";
  std::istringstream src1(before), src2(after);
  auto g1 = BuildPreferenceGraphStreaming(&src1);
  auto g2 = BuildPreferenceGraphStreaming(&src2);
  ASSERT_TRUE(g1.ok() && g2.ok());
  // Interning order differs (ids swap), so compare by label.
  auto by_label = [](const PreferenceGraph& g, const std::string& label) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (g.Label(v) == label) return v;
    }
    ADD_FAILURE() << "no node labeled " << label;
    return kInvalidItem;
  };
  for (const PreferenceGraph* g : {&*g1, &*g2}) {
    NodeId a = by_label(*g, "a"), b = by_label(*g, "b");
    EXPECT_DOUBLE_EQ(g->NodeWeight(a), 0.5);
    EXPECT_DOUBLE_EQ(g->EdgeWeight(a, b), 1.0);
  }
}

// Browse-only ("empty") sessions carry no intent: their items become
// weight-0 nodes, no edges, and they do not dilute edge denominators
// (which divide by per-item purchase counts, not session counts).
TEST(StreamingCsvTest, BrowseOnlySessionsContributeNoMass) {
  const std::string csv =
      "session_id,event_type,item_id\n"
      "0,click,b\n0,purchase,a\n"
      "1,click,c\n"             // browse-only, new item c
      "2,click,b\n2,click,c\n"  // browse-only again
      "3,purchase,a\n";
  std::istringstream src(csv);
  auto g = BuildPreferenceGraphStreaming(&src);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g->NumNodes(), 3u);
  ItemId b = 0, a = 1, c = 2;
  EXPECT_DOUBLE_EQ(g->NodeWeight(a), 1.0);  // both purchases are a
  EXPECT_DOUBLE_EQ(g->NodeWeight(c), 0.0);
  EXPECT_EQ(g->OutNeighbors(c).size(), 0u);
  EXPECT_EQ(g->InNeighbors(c).size(), 0u);
  // 1 of 2 a-purchase sessions clicked b.
  EXPECT_DOUBLE_EQ(g->EdgeWeight(a, b), 0.5);
}

// Duplicate clicks within one session count once, and a click on the
// purchased item itself is not an alternative.
TEST(StreamingCsvTest, DuplicateAndSelfClicksDedupe) {
  const std::string csv =
      "session_id,event_type,item_id\n"
      "0,click,b\n0,click,b\n0,click,b\n"  // same alternative thrice
      "0,click,a\n"                        // click preceding own purchase
      "0,purchase,a\n";
  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    GraphConstructionOptions options;
    options.variant = variant;
    std::istringstream src(csv);
    auto g = BuildPreferenceGraphStreaming(&src, options);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    ItemId b = 0, a = 1;
    // One distinct alternative in one a-purchase session: weight 1 under
    // both variants (Normalized's 1/t rule has t == 1).
    EXPECT_DOUBLE_EQ(g->EdgeWeight(a, b), 1.0)
        << VariantName(variant);
    EXPECT_FALSE(g->HasEdge(a, a)) << "self-edge from self-click";
    EXPECT_EQ(g->OutNeighbors(a).size(), 1u);
  }
}

// Batch/streaming equivalence on a handcrafted event log that stacks the
// awkward cases: duplicate clicks, self-clicks, browse-only and
// click-free-purchase sessions, shared alternatives — under both
// variants and with the pruning filters on.
TEST(StreamingCsvTest, HandcraftedLogMatchesBatchConstruction) {
  const std::string csv =
      "session_id,event_type,item_id\n"
      "s0,click,tv_b\ns0,click,tv_b\ns0,click,tv_a\ns0,purchase,tv_a\n"
      "s1,click,tv_b\ns1,click,tv_c\ns1,purchase,tv_a\n"
      "s2,purchase,tv_b\n"
      "s3,click,tv_a\ns3,click,tv_d\n"  // browse-only
      "s4,click,tv_a\ns4,purchase,tv_b\n"
      "s5,click,tv_d\ns5,purchase,tv_a\n";
  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    for (double min_edge_weight : {0.0, 0.4}) {
      GraphConstructionOptions options;
      options.variant = variant;
      options.min_edge_weight = min_edge_weight;
      options.min_purchases_for_edges = min_edge_weight > 0 ? 2 : 0;
      std::istringstream batch_src(csv);
      auto reloaded = ReadClickstreamCsv(&batch_src);
      ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString();
      auto batch = BuildPreferenceGraph(*reloaded, options);
      std::istringstream streaming_src(csv);
      auto streaming = BuildPreferenceGraphStreaming(&streaming_src, options);
      ASSERT_TRUE(batch.ok() && streaming.ok());
      ExpectSameGraph(*batch, *streaming);
    }
  }
}

TEST(StreamingCsvTest, FilePathConvenience) {
  auto missing = BuildPreferenceGraphStreamingFile("/no/such/file.csv");
  EXPECT_TRUE(missing.status().IsIOError());

  std::string path = ::testing::TempDir() + "/streaming_test.csv";
  {
    std::ofstream out(path);
    out << "session_id,event_type,item_id\n"
           "0,click,b\n0,purchase,a\n"
           "1,purchase,b\n";
  }
  auto g = BuildPreferenceGraphStreamingFile(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 2u);
  EXPECT_DOUBLE_EQ(g->NodeWeight(1), 0.5);  // "a" interned second? No:
  // appearance order: b (clicked first) = 0, a = 1; each purchased once.
  EXPECT_DOUBLE_EQ(g->NodeWeight(0), 0.5);
  EXPECT_TRUE(g->HasEdge(1, 0));  // a -> b
}

}  // namespace
}  // namespace prefcover
