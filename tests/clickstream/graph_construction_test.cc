#include "clickstream/graph_construction.h"

#include <gtest/gtest.h>

#include "graph/graph_stats.h"

namespace prefcover {
namespace {

// The paper's Figure 3 example: iPhone 8 in Silver, Gold and Space Gray;
// five sessions, each ending in a purchase.
Clickstream MakeIphoneClickstream() {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId silver = dict->Intern("iphone8-silver");
  ItemId gold = dict->Intern("iphone8-gold");
  ItemId space = dict->Intern("iphone8-space-gray");

  auto add = [&cs](std::vector<ItemId> clicks, ItemId purchase) {
    Session s;
    s.clicks = std::move(clicks);
    s.purchase = purchase;
    cs.AddSession(std::move(s));
  };
  add({silver, gold}, silver);   // Silver bought, Gold clicked
  add({silver, space}, silver);  // Silver bought, Space Gray clicked
  add({space}, space);           // Space Gray bought, no other clicks
  add({space, silver}, space);   // Space Gray bought, Silver clicked
  add({gold, space}, gold);      // Gold bought, Space Gray clicked
  return cs;
}

class IphoneExampleTest : public ::testing::TestWithParam<Variant> {};

TEST_P(IphoneExampleTest, ReconstructsFigureThreeGraph) {
  Clickstream cs = MakeIphoneClickstream();
  GraphConstructionOptions options;
  options.variant = GetParam();
  auto g = BuildPreferenceGraph(cs, options);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  ASSERT_EQ(g->NumNodes(), 3u);

  ItemId silver = cs.dictionary().Lookup("iphone8-silver");
  ItemId gold = cs.dictionary().Lookup("iphone8-gold");
  ItemId space = cs.dictionary().Lookup("iphone8-space-gray");

  // Node weights 0.4 / 0.2 / 0.4 (Figure 3b).
  EXPECT_DOUBLE_EQ(g->NodeWeight(silver), 0.4);
  EXPECT_DOUBLE_EQ(g->NodeWeight(gold), 0.2);
  EXPECT_DOUBLE_EQ(g->NodeWeight(space), 0.4);

  // Edges: Silver -> {Gold 1/2, Space 1/2}, Space -> Silver 1/2,
  // Gold -> Space 1. Every session implies at most one alternative, so both
  // variants construct the same graph.
  EXPECT_EQ(g->NumEdges(), 4u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(silver, gold), 0.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(silver, space), 0.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(space, silver), 0.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(gold, space), 1.0);
  EXPECT_FALSE(g->HasEdge(gold, silver));
  EXPECT_FALSE(g->HasEdge(space, gold));

  // Labels carry the item names.
  EXPECT_EQ(g->Label(silver), "iphone8-silver");
  EXPECT_TRUE(IsNormalizedAdmissible(*g));
}

INSTANTIATE_TEST_SUITE_P(BothVariants, IphoneExampleTest,
                         ::testing::Values(Variant::kIndependent,
                                           Variant::kNormalized),
                         [](const auto& param_info) {
                           return std::string(VariantName(param_info.param));
                         });

TEST(GraphConstructionTest, NormalizedUsesFractionalClicks) {
  // One purchased item with a session clicking two alternatives: under the
  // Normalized rule each counts 1/t = 1/2.
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId p = dict->Intern("p");
  ItemId x = dict->Intern("x");
  ItemId y = dict->Intern("y");
  Session s;
  s.clicks = {x, y};
  s.purchase = p;
  cs.AddSession(s);

  GraphConstructionOptions normalized;
  normalized.variant = Variant::kNormalized;
  auto gn = BuildPreferenceGraph(cs, normalized);
  ASSERT_TRUE(gn.ok());
  EXPECT_DOUBLE_EQ(gn->EdgeWeight(p, x), 0.5);
  EXPECT_DOUBLE_EQ(gn->EdgeWeight(p, y), 0.5);

  GraphConstructionOptions independent;
  independent.variant = Variant::kIndependent;
  auto gi = BuildPreferenceGraph(cs, independent);
  ASSERT_TRUE(gi.ok());
  EXPECT_DOUBLE_EQ(gi->EdgeWeight(p, x), 1.0);
  EXPECT_DOUBLE_EQ(gi->EdgeWeight(p, y), 1.0);
}

TEST(GraphConstructionTest, NormalizedOutSumsNeverExceedOne) {
  // Even with heavy multi-click sessions, fractional counting keeps every
  // node's outgoing sum at most 1.
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId p = dict->Intern("p");
  std::vector<ItemId> alts;
  for (int i = 0; i < 6; ++i) {
    alts.push_back(dict->Intern("alt" + std::to_string(i)));
  }
  for (int session = 0; session < 10; ++session) {
    Session s;
    s.purchase = p;
    for (size_t i = 0; i <= static_cast<size_t>(session % 6); ++i) {
      s.clicks.push_back(alts[i]);
    }
    cs.AddSession(s);
  }
  GraphConstructionOptions options;
  options.variant = Variant::kNormalized;
  auto g = BuildPreferenceGraph(cs, options);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_TRUE(IsNormalizedAdmissible(*g));
}

TEST(GraphConstructionTest, BrowseOnlySessionsIgnored) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId a = dict->Intern("a");
  ItemId b = dict->Intern("b");
  Session buy;
  buy.purchase = a;
  cs.AddSession(buy);
  // 100 browse-only sessions clicking b must not create nodes weights or
  // edges.
  for (int i = 0; i < 100; ++i) {
    Session s;
    s.clicks = {b, a};
    cs.AddSession(s);
  }
  auto g = BuildPreferenceGraph(cs);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->NodeWeight(a), 1.0);
  EXPECT_DOUBLE_EQ(g->NodeWeight(b), 0.0);
  EXPECT_EQ(g->NumEdges(), 0u);
}

TEST(GraphConstructionTest, ClickOnPurchasedItemExcluded) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId a = dict->Intern("a");
  Session s;
  s.clicks = {a, a, a};
  s.purchase = a;
  cs.AddSession(s);
  auto g = BuildPreferenceGraph(cs);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 0u);  // no self-loop from self-clicks
}

TEST(GraphConstructionTest, MinEdgeWeightFilter) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId p = dict->Intern("p");
  ItemId frequent = dict->Intern("frequent");
  ItemId rare = dict->Intern("rare");
  for (int i = 0; i < 10; ++i) {
    Session s;
    s.purchase = p;
    s.clicks = {frequent};
    if (i == 0) s.clicks.push_back(rare);
    cs.AddSession(s);
  }
  GraphConstructionOptions options;
  options.variant = Variant::kIndependent;
  options.min_edge_weight = 0.2;
  auto g = BuildPreferenceGraph(cs, options);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(p, frequent));   // weight 1.0
  EXPECT_FALSE(g->HasEdge(p, rare));      // weight 0.1, filtered
}

TEST(GraphConstructionTest, MinPurchasesFilter) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId popular = dict->Intern("popular");
  ItemId niche = dict->Intern("niche");
  ItemId alt = dict->Intern("alt");
  for (int i = 0; i < 5; ++i) {
    Session s;
    s.purchase = popular;
    s.clicks = {alt};
    cs.AddSession(s);
  }
  Session s;
  s.purchase = niche;
  s.clicks = {alt};
  cs.AddSession(s);

  GraphConstructionOptions options;
  options.min_purchases_for_edges = 3;
  auto g = BuildPreferenceGraph(cs, options);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(popular, alt));
  EXPECT_FALSE(g->HasEdge(niche, alt));  // only 1 purchase: edges dropped
  EXPECT_GT(g->NodeWeight(niche), 0.0);  // but the node weight stays
}

TEST(GraphConstructionTest, NoPurchasesFails) {
  Clickstream cs;
  cs.mutable_dictionary()->Intern("x");
  Session s;
  s.clicks = {0};
  cs.AddSession(s);
  EXPECT_TRUE(BuildPreferenceGraph(cs).status().IsFailedPrecondition());
}

TEST(GraphConstructionTest, EmptyClickstreamFails) {
  Clickstream cs;
  EXPECT_TRUE(BuildPreferenceGraph(cs).status().IsFailedPrecondition());
}

TEST(GraphConstructionTest, NodeWeightsFormDistribution) {
  Clickstream cs = MakeIphoneClickstream();
  auto g = BuildPreferenceGraph(cs);
  ASSERT_TRUE(g.ok());
  EXPECT_NEAR(g->TotalNodeWeight(), 1.0, 1e-12);
}

}  // namespace
}  // namespace prefcover
