#include "clickstream/session.h"

#include <gtest/gtest.h>

#include "clickstream/clickstream.h"

namespace prefcover {
namespace {

TEST(SessionTest, AlternativesExcludePurchase) {
  Session s;
  s.clicks = {3, 1, 3, 2, 1};
  s.purchase = 1;
  EXPECT_EQ(s.Alternatives(), (std::vector<ItemId>{3, 2}));
}

TEST(SessionTest, AlternativesDedupePreservingOrder) {
  Session s;
  s.clicks = {5, 4, 5, 4, 6};
  s.purchase = 9;
  EXPECT_EQ(s.Alternatives(), (std::vector<ItemId>{5, 4, 6}));
}

TEST(SessionTest, NoPurchaseSession) {
  Session s;
  s.clicks = {1, 2};
  EXPECT_FALSE(s.HasPurchase());
  EXPECT_EQ(s.Alternatives(), (std::vector<ItemId>{1, 2}));
}

TEST(SessionTest, EmptySession) {
  Session s;
  EXPECT_FALSE(s.HasPurchase());
  EXPECT_TRUE(s.Alternatives().empty());
}

TEST(ItemDictionaryTest, InternAssignsDenseIds) {
  ItemDictionary dict;
  EXPECT_EQ(dict.Intern("iphone-silver"), 0u);
  EXPECT_EQ(dict.Intern("iphone-gold"), 1u);
  EXPECT_EQ(dict.Intern("iphone-silver"), 0u);  // idempotent
  EXPECT_EQ(dict.size(), 2u);
  EXPECT_EQ(dict.Name(0), "iphone-silver");
  EXPECT_EQ(dict.Name(1), "iphone-gold");
}

TEST(ItemDictionaryTest, LookupUnknownReturnsInvalid) {
  ItemDictionary dict;
  dict.Intern("known");
  EXPECT_EQ(dict.Lookup("known"), 0u);
  EXPECT_EQ(dict.Lookup("unknown"), kInvalidItem);
}

TEST(ClickstreamTest, StatsOnMixedSessions) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId a = dict->Intern("a");
  ItemId b = dict->Intern("b");
  ItemId c = dict->Intern("c");

  // Purchase session with 1 alternative.
  Session s1;
  s1.clicks = {a, b};
  s1.purchase = a;
  cs.AddSession(s1);
  // Purchase session with 2 alternatives.
  Session s2;
  s2.clicks = {a, b, c};
  s2.purchase = a;
  cs.AddSession(s2);
  // Browse-only session.
  Session s3;
  s3.clicks = {c};
  cs.AddSession(s3);
  // Purchase with no alternatives.
  Session s4;
  s4.purchase = b;
  cs.AddSession(s4);

  ClickstreamStats stats = cs.ComputeStats();
  EXPECT_EQ(stats.num_sessions, 4u);
  EXPECT_EQ(stats.num_purchases, 3u);
  EXPECT_EQ(stats.num_items, 3u);
  EXPECT_EQ(stats.num_clicks, 6u);
  EXPECT_NEAR(stats.mean_alternatives, (1.0 + 2.0 + 0.0) / 3.0, 1e-12);
  EXPECT_NEAR(stats.at_most_one_alternative_share, 2.0 / 3.0, 1e-12);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(ClickstreamTest, EmptyStats) {
  Clickstream cs;
  ClickstreamStats stats = cs.ComputeStats();
  EXPECT_EQ(stats.num_sessions, 0u);
  EXPECT_EQ(stats.num_purchases, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_alternatives, 0.0);
}

}  // namespace
}  // namespace prefcover
