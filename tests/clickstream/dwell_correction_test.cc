// Tests for the dwell-time corrective factor (paper Section 5.2's
// suggested refinement) across the session model, CSV I/O, and both
// construction paths.

#include <sstream>

#include <gtest/gtest.h>

#include "clickstream/clickstream_io.h"
#include "clickstream/graph_construction.h"
#include "clickstream/streaming_construction.h"
#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "synth/session_generator.h"

namespace prefcover {
namespace {

TEST(SessionDwellTest, AlternativesWithDwellKeepsLongest) {
  Session s;
  s.clicks = {3, 4, 3};
  s.dwell_seconds = {2.0, 10.0, 7.0};
  s.purchase = 9;
  auto alts = s.AlternativesWithDwell();
  ASSERT_EQ(alts.size(), 2u);
  EXPECT_EQ(alts[0].first, 3u);
  EXPECT_DOUBLE_EQ(alts[0].second, 7.0);  // max of 2.0 and 7.0
  EXPECT_EQ(alts[1].first, 4u);
  EXPECT_DOUBLE_EQ(alts[1].second, 10.0);
}

TEST(SessionDwellTest, NoDwellDataYieldsMinusOne) {
  Session s;
  s.clicks = {1, 2};
  s.purchase = 9;
  auto alts = s.AlternativesWithDwell();
  ASSERT_EQ(alts.size(), 2u);
  EXPECT_DOUBLE_EQ(alts[0].second, -1.0);
  EXPECT_FALSE(s.HasDwell());
}

Clickstream MakeDwellStream() {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId p = dict->Intern("p");
  ItemId considered = dict->Intern("considered");
  ItemId glanced = dict->Intern("glanced");
  for (int i = 0; i < 10; ++i) {
    Session s;
    s.purchase = p;
    s.clicks = {considered, glanced};
    s.dwell_seconds = {60.0, 2.0};  // long vs fleeting
    cs.AddSession(std::move(s));
  }
  return cs;
}

TEST(DwellConstructionTest, CorrectionSuppressesFleetingClicks) {
  Clickstream cs = MakeDwellStream();
  GraphConstructionOptions plain;
  auto uncorrected = BuildPreferenceGraph(cs, plain);
  ASSERT_TRUE(uncorrected.ok());
  // Without correction both edges have weight 1.0.
  EXPECT_DOUBLE_EQ(uncorrected->EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(uncorrected->EdgeWeight(0, 2), 1.0);

  GraphConstructionOptions corrected = plain;
  corrected.dwell_saturation_seconds = 20.0;
  auto graph = BuildPreferenceGraph(cs, corrected);
  ASSERT_TRUE(graph.ok());
  // 60 s saturates (factor 1); 2 s becomes 0.1.
  EXPECT_DOUBLE_EQ(graph->EdgeWeight(0, 1), 1.0);
  EXPECT_NEAR(graph->EdgeWeight(0, 2), 0.1, 1e-12);
}

TEST(DwellConstructionTest, SessionsWithoutDwellAreUnaffected) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId p = dict->Intern("p");
  ItemId a = dict->Intern("a");
  Session s;
  s.purchase = p;
  s.clicks = {a};  // no dwell data
  cs.AddSession(std::move(s));
  GraphConstructionOptions options;
  options.dwell_saturation_seconds = 20.0;
  auto graph = BuildPreferenceGraph(cs, options);
  ASSERT_TRUE(graph.ok());
  EXPECT_DOUBLE_EQ(graph->EdgeWeight(p, a), 1.0);
}

TEST(DwellConstructionTest, NormalizedVariantStaysAdmissible) {
  Clickstream cs = MakeDwellStream();
  GraphConstructionOptions options;
  options.variant = Variant::kNormalized;
  options.dwell_saturation_seconds = 20.0;
  auto graph = BuildPreferenceGraph(cs, options);
  ASSERT_TRUE(graph.ok());
  // 1/t = 1/2 per alternative, then dwell factors: 0.5 and 0.05.
  EXPECT_NEAR(graph->EdgeWeight(0, 1), 0.5, 1e-12);
  EXPECT_NEAR(graph->EdgeWeight(0, 2), 0.05, 1e-12);
}

TEST(DwellCsvTest, RoundTripPreservesDwell) {
  Clickstream cs = MakeDwellStream();
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(cs, &out).ok());
  EXPECT_NE(out.str().find("dwell_seconds"), std::string::npos);
  std::istringstream in(out.str());
  auto read = ReadClickstreamCsv(&in);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->NumSessions(), cs.NumSessions());
  const Session& s = read->sessions()[0];
  ASSERT_TRUE(s.HasDwell());
  EXPECT_DOUBLE_EQ(s.dwell_seconds[0], 60.0);
  EXPECT_DOUBLE_EQ(s.dwell_seconds[1], 2.0);
}

TEST(DwellCsvTest, DwellFreeStreamsKeepThreeColumns) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  Session s;
  s.purchase = dict->Intern("x");
  cs.AddSession(std::move(s));
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(cs, &out).ok());
  EXPECT_EQ(out.str().find("dwell_seconds"), std::string::npos);
}

TEST(DwellCsvTest, BadDwellValueRejected) {
  std::istringstream in(
      "session_id,event_type,item_id,dwell_seconds\n"
      "0,click,x,notanumber\n"
      "0,purchase,y,\n");
  EXPECT_TRUE(ReadClickstreamCsv(&in).status().IsInvalidArgument());
}

TEST(DwellStreamingTest, ParityWithInMemoryUnderCorrection) {
  Clickstream cs = MakeDwellStream();
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(cs, &out).ok());
  GraphConstructionOptions options;
  options.dwell_saturation_seconds = 20.0;

  std::istringstream src1(out.str());
  auto reloaded = ReadClickstreamCsv(&src1);
  ASSERT_TRUE(reloaded.ok());
  auto in_memory = BuildPreferenceGraph(*reloaded, options);
  std::istringstream src2(out.str());
  auto streaming = BuildPreferenceGraphStreaming(&src2, options);
  ASSERT_TRUE(in_memory.ok() && streaming.ok());
  ASSERT_EQ(in_memory->NumEdges(), streaming->NumEdges());
  for (NodeId v = 0; v < in_memory->NumNodes(); ++v) {
    AdjacencyView a = in_memory->OutNeighbors(v);
    AdjacencyView b = streaming->OutNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.weights[i], b.weights[i]);
    }
  }
}

TEST(DwellGeneratorTest, EmitsDwellWithIntentStructure) {
  Rng rng(5);
  CatalogParams cparams;
  cparams.num_items = 150;
  cparams.num_categories = 10;
  auto catalog = Catalog::Generate(cparams, &rng);
  ASSERT_TRUE(catalog.ok());
  PreferenceModelParams mparams;
  auto model = PreferenceModel::Build(&*catalog, mparams, &rng);
  ASSERT_TRUE(model.ok());
  SessionGeneratorParams sparams;
  sparams.num_sessions = 4000;
  sparams.emit_dwell_times = true;
  sparams.noise_clicks_mean = 2.0;
  auto cs = GenerateSessions(*model, sparams, &rng);
  ASSERT_TRUE(cs.ok());

  // Every click has a dwell; true-alternative clicks dwell longer than
  // noise clicks on average.
  const PreferenceGraph& truth = model->graph();
  double alt_sum = 0.0, noise_sum = 0.0;
  size_t alt_n = 0, noise_n = 0;
  for (const Session& s : cs->sessions()) {
    ASSERT_EQ(s.dwell_seconds.size(), s.clicks.size());
    if (!s.HasPurchase()) continue;
    for (size_t i = 0; i < s.clicks.size(); ++i) {
      if (s.clicks[i] == s.purchase) continue;
      if (truth.HasEdge(s.purchase, s.clicks[i])) {
        alt_sum += s.dwell_seconds[i];
        ++alt_n;
      } else {
        noise_sum += s.dwell_seconds[i];
        ++noise_n;
      }
    }
  }
  ASSERT_GT(alt_n, 100u);
  ASSERT_GT(noise_n, 100u);
  EXPECT_GT(alt_sum / static_cast<double>(alt_n),
            3.0 * noise_sum / static_cast<double>(noise_n));
}

TEST(DwellCorrectionTest, ImprovesRecoveryUnderNoisyClicks) {
  // The full point of the refinement: with heavy noise clicking, dwell
  // correction recovers a graph whose greedy solution scores better on
  // the TRUE graph than the uncorrected reconstruction's.
  Rng rng(11);
  CatalogParams cparams;
  cparams.num_items = 200;
  cparams.num_categories = 10;
  auto catalog = Catalog::Generate(cparams, &rng);
  ASSERT_TRUE(catalog.ok());
  PreferenceModelParams mparams;
  mparams.popularity_skew = 0.6;
  auto model = PreferenceModel::Build(&*catalog, mparams, &rng);
  ASSERT_TRUE(model.ok());
  const PreferenceGraph& truth = model->graph();

  SessionGeneratorParams sparams;
  sparams.num_sessions = 60'000;
  sparams.emit_dwell_times = true;
  sparams.noise_clicks_mean = 4.0;  // heavy idle browsing
  auto cs = GenerateSessions(*model, sparams, &rng);
  ASSERT_TRUE(cs.ok());

  GraphConstructionOptions uncorrected;
  GraphConstructionOptions corrected;
  corrected.dwell_saturation_seconds = 10.0;
  auto g_plain = BuildPreferenceGraph(*cs, uncorrected);
  auto g_dwell = BuildPreferenceGraph(*cs, corrected);
  ASSERT_TRUE(g_plain.ok() && g_dwell.ok());

  const size_t k = 20;
  auto sol_plain = SolveGreedyLazy(*g_plain, k);
  auto sol_dwell = SolveGreedyLazy(*g_dwell, k);
  ASSERT_TRUE(sol_plain.ok() && sol_dwell.ok());
  double q_plain =
      EvaluateCover(truth, sol_plain->items, Variant::kIndependent).value();
  double q_dwell =
      EvaluateCover(truth, sol_dwell->items, Variant::kIndependent).value();
  EXPECT_GE(q_dwell, q_plain - 1e-9);

  // The correction's unambiguous effect: the total weight mass sitting on
  // SPURIOUS edges (recovered pairs that are not true alternatives) must
  // shrink substantially — those are exactly the short-dwell noise clicks.
  auto spurious_mass = [&truth](const PreferenceGraph& g) {
    double mass = 0.0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      AdjacencyView out = g.OutNeighbors(v);
      for (size_t i = 0; i < out.size(); ++i) {
        if (!truth.HasEdge(v, out.nodes[i])) mass += out.weights[i];
      }
    }
    return mass;
  };
  double spurious_plain = spurious_mass(*g_plain);
  double spurious_dwell = spurious_mass(*g_dwell);
  ASSERT_GT(spurious_plain, 0.0);
  EXPECT_LT(spurious_dwell, 0.6 * spurious_plain);
}

}  // namespace
}  // namespace prefcover
