#include "clickstream/clickstream_io.h"

#include <sstream>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

Clickstream MakeSample() {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId silver = dict->Intern("iphone-silver");
  ItemId gold = dict->Intern("iphone-gold");
  Session s1;
  s1.clicks = {silver, gold};
  s1.purchase = silver;
  cs.AddSession(s1);
  Session s2;
  s2.clicks = {gold};
  cs.AddSession(s2);  // browse-only
  Session s3;
  s3.purchase = gold;
  cs.AddSession(s3);  // purchase without clicks
  return cs;
}

TEST(ClickstreamIoTest, WriteProducesExpectedCsv) {
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(MakeSample(), &out).ok());
  EXPECT_EQ(out.str(),
            "session_id,event_type,item_id\n"
            "0,click,iphone-silver\n"
            "0,click,iphone-gold\n"
            "0,purchase,iphone-silver\n"
            "1,click,iphone-gold\n"
            "2,purchase,iphone-gold\n");
}

TEST(ClickstreamIoTest, RoundTrip) {
  Clickstream original = MakeSample();
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(original, &out).ok());
  std::istringstream in(out.str());
  auto read = ReadClickstreamCsv(&in);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ASSERT_EQ(read->NumSessions(), original.NumSessions());
  for (size_t i = 0; i < original.NumSessions(); ++i) {
    const Session& a = original.sessions()[i];
    const Session& b = read->sessions()[i];
    // Dictionaries may assign different ids; compare through names.
    ASSERT_EQ(a.clicks.size(), b.clicks.size());
    for (size_t c = 0; c < a.clicks.size(); ++c) {
      EXPECT_EQ(original.dictionary().Name(a.clicks[c]),
                read->dictionary().Name(b.clicks[c]));
    }
    EXPECT_EQ(a.HasPurchase(), b.HasPurchase());
    if (a.HasPurchase()) {
      EXPECT_EQ(original.dictionary().Name(a.purchase),
                read->dictionary().Name(b.purchase));
    }
  }
}

TEST(ClickstreamIoTest, RejectsBadHeader) {
  std::istringstream in("wrong,header,row\n0,click,x\n");
  EXPECT_TRUE(ReadClickstreamCsv(&in).status().IsInvalidArgument());
}

TEST(ClickstreamIoTest, RejectsWrongFieldCount) {
  std::istringstream in("session_id,event_type,item_id\n0,click\n");
  EXPECT_TRUE(ReadClickstreamCsv(&in).status().IsInvalidArgument());
}

TEST(ClickstreamIoTest, RejectsUnknownEventType) {
  std::istringstream in("session_id,event_type,item_id\n0,hover,x\n");
  EXPECT_TRUE(ReadClickstreamCsv(&in).status().IsInvalidArgument());
}

TEST(ClickstreamIoTest, RejectsSecondPurchaseInSession) {
  std::istringstream in(
      "session_id,event_type,item_id\n"
      "0,purchase,x\n"
      "0,purchase,y\n");
  EXPECT_TRUE(ReadClickstreamCsv(&in).status().IsInvalidArgument());
}

TEST(ClickstreamIoTest, RejectsInterleavedSessions) {
  std::istringstream in(
      "session_id,event_type,item_id\n"
      "0,click,x\n"
      "1,click,y\n"
      "0,purchase,x\n");
  EXPECT_TRUE(ReadClickstreamCsv(&in).status().IsInvalidArgument());
}

TEST(ClickstreamIoTest, EmptyInputYieldsEmptyClickstream) {
  std::istringstream in("session_id,event_type,item_id\n");
  auto read = ReadClickstreamCsv(&in);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->NumSessions(), 0u);
}

TEST(ClickstreamIoTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/clickstream_io_test.csv";
  ASSERT_TRUE(WriteClickstreamCsvFile(MakeSample(), path).ok());
  auto read = ReadClickstreamCsvFile(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->NumSessions(), 3u);
}

TEST(ClickstreamIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ReadClickstreamCsvFile("/no/such/file.csv")
                  .status()
                  .IsIOError());
}

TEST(ClickstreamIoTest, ItemNamesWithCommasSurviveQuoting) {
  Clickstream cs;
  ItemId item = cs.mutable_dictionary()->Intern("TV, 55\", LG");
  Session s;
  s.purchase = item;
  cs.AddSession(s);
  std::ostringstream out;
  ASSERT_TRUE(WriteClickstreamCsv(cs, &out).ok());
  std::istringstream in(out.str());
  auto read = ReadClickstreamCsv(&in);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->dictionary().Name(read->sessions()[0].purchase),
            "TV, 55\", LG");
}

}  // namespace
}  // namespace prefcover
