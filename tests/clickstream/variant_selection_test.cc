#include "clickstream/variant_selection.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace prefcover {
namespace {

// Builds a clickstream of `sessions` purchases of one item, where each
// session's alternative clicks come from `pattern(session_index)`.
template <typename PatternFn>
Clickstream MakeSingleItemStream(int sessions, PatternFn pattern) {
  Clickstream cs;
  ItemDictionary* dict = cs.mutable_dictionary();
  ItemId p = dict->Intern("purchased");
  ItemId a = dict->Intern("alt-a");
  ItemId b = dict->Intern("alt-b");
  for (int i = 0; i < sessions; ++i) {
    Session s;
    s.purchase = p;
    auto [click_a, click_b] = pattern(i);
    if (click_a) s.clicks.push_back(a);
    if (click_b) s.clicks.push_back(b);
    cs.AddSession(std::move(s));
  }
  return cs;
}

TEST(BinaryNmiTest, IndependentVariablesScoreZero) {
  // Perfectly independent 2x2 table: joint = product of marginals.
  uint64_t counts[2][2] = {{40, 40}, {10, 10}};
  EXPECT_NEAR(BinaryNormalizedMutualInformation(counts), 0.0, 1e-9);
}

TEST(BinaryNmiTest, IdenticalVariablesScoreOne) {
  uint64_t counts[2][2] = {{50, 0}, {0, 50}};
  EXPECT_NEAR(BinaryNormalizedMutualInformation(counts), 1.0, 1e-9);
}

TEST(BinaryNmiTest, AntiCorrelatedAlsoScoresOne) {
  // Mutual information is symmetric under relabeling.
  uint64_t counts[2][2] = {{0, 50}, {50, 0}};
  EXPECT_NEAR(BinaryNormalizedMutualInformation(counts), 1.0, 1e-9);
}

TEST(BinaryNmiTest, ConstantVariableScoresZero) {
  uint64_t counts[2][2] = {{0, 0}, {30, 70}};  // X always 1
  EXPECT_DOUBLE_EQ(BinaryNormalizedMutualInformation(counts), 0.0);
}

TEST(BinaryNmiTest, EmptyTableScoresZero) {
  uint64_t counts[2][2] = {{0, 0}, {0, 0}};
  EXPECT_DOUBLE_EQ(BinaryNormalizedMutualInformation(counts), 0.0);
}

TEST(BinaryNmiTest, PartialDependenceBetweenZeroAndOne) {
  uint64_t counts[2][2] = {{40, 10}, {10, 40}};
  double nmi = BinaryNormalizedMutualInformation(counts);
  EXPECT_GT(nmi, 0.05);
  EXPECT_LT(nmi, 0.95);
}

TEST(NormalizedFitTest, AllSingleAlternativeSessionsFitPerfectly) {
  Clickstream cs = MakeSingleItemStream(100, [](int i) {
    return std::make_pair(i % 2 == 0, i % 2 != 0);
  });
  EXPECT_DOUBLE_EQ(NormalizedFitShare(cs), 1.0);
}

TEST(NormalizedFitTest, MultiAlternativeSessionsLowerTheShare) {
  Clickstream cs = MakeSingleItemStream(100, [](int i) {
    // 30% of sessions click both alternatives.
    return std::make_pair(true, i % 10 < 3);
  });
  EXPECT_NEAR(NormalizedFitShare(cs), 0.7, 1e-12);
}

TEST(IndependenceMeasureTest, MutuallyExclusiveClicksAreDependent) {
  // Exactly one of {a, b} clicked per session: strong negative dependence.
  Clickstream cs = MakeSingleItemStream(200, [](int i) {
    return std::make_pair(i % 2 == 0, i % 2 != 0);
  });
  EXPECT_GT(IndependenceMeasure(cs), 0.5);
}

TEST(IndependenceMeasureTest, IndependentClicksScoreLow) {
  // a clicked on even thirds, b on even halves: near-independent bits.
  Rng rng(5);
  Clickstream cs = MakeSingleItemStream(2000, [&rng](int) {
    return std::make_pair(rng.NextBernoulli(0.5), rng.NextBernoulli(0.3));
  });
  EXPECT_LT(IndependenceMeasure(cs), 0.05);
}

TEST(IndependenceMeasureTest, SingleAlternativeItemContributesZero) {
  Clickstream cs = MakeSingleItemStream(50, [](int) {
    return std::make_pair(true, false);  // only alt-a ever clicked
  });
  EXPECT_DOUBLE_EQ(IndependenceMeasure(cs), 0.0);
}

TEST(IndependenceMeasureTest, EmptyClickstreamScoresZero) {
  Clickstream cs;
  EXPECT_DOUBLE_EQ(IndependenceMeasure(cs), 0.0);
}

TEST(RecommendVariantTest, NormalizedShapeRecommendsNormalized) {
  Clickstream cs = MakeSingleItemStream(100, [](int i) {
    return std::make_pair(i % 2 == 0, false);
  });
  VariantRecommendation rec = RecommendVariant(cs);
  EXPECT_EQ(rec.variant, Variant::kNormalized);
  EXPECT_TRUE(rec.normalized_fits);
  EXPECT_FALSE(rec.ToString().empty());
}

TEST(RecommendVariantTest, IndependentShapeRecommendsIndependent) {
  Rng rng(9);
  Clickstream cs = MakeSingleItemStream(3000, [&rng](int) {
    // Both alternatives clicked independently and frequently: >10% of
    // sessions have 2 alternatives, so Normalized does not fit; NMI ~ 0,
    // so Independent does.
    return std::make_pair(rng.NextBernoulli(0.6), rng.NextBernoulli(0.5));
  });
  VariantRecommendation rec = RecommendVariant(cs);
  EXPECT_EQ(rec.variant, Variant::kIndependent);
  EXPECT_FALSE(rec.normalized_fits);
  EXPECT_TRUE(rec.independent_fits);
}

TEST(RecommendVariantTest, NeitherFitsFlagsBothFalse) {
  // Mutually exclusive two-alternative clicks with many two-click
  // sessions: fails the 90% rule AND strongly dependent.
  Clickstream cs = MakeSingleItemStream(100, [](int i) {
    if (i % 5 < 2) return std::make_pair(true, true);  // 40% double
    return std::make_pair(i % 2 == 0, i % 2 != 0);
  });
  VariantRecommendation rec = RecommendVariant(cs);
  EXPECT_FALSE(rec.normalized_fits);
  EXPECT_FALSE(rec.independent_fits);
  // Defaults to Independent per the implementation contract.
  EXPECT_EQ(rec.variant, Variant::kIndependent);
}

TEST(RecommendVariantTest, CustomThresholds) {
  Clickstream cs = MakeSingleItemStream(100, [](int i) {
    return std::make_pair(true, i % 10 < 3);  // 70% single-alternative
  });
  VariantSelectionOptions options;
  options.normalized_fit_threshold = 0.6;  // lenient
  VariantRecommendation rec = RecommendVariant(cs, options);
  EXPECT_TRUE(rec.normalized_fits);
  EXPECT_EQ(rec.variant, Variant::kNormalized);
}

}  // namespace
}  // namespace prefcover
