// Hot-reload integration: a live catalog drifts, the InventoryMaintainer
// re-solves, a new ServingIndex is built from the maintained set and
// atomically swapped into a QueryEngine while reader threads keep
// querying. Run under TSan in CI — the RCU swap and the per-snapshot
// cache must be race-free.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/inventory_maintainer.h"
#include "graph/dynamic_graph.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/serving_index.h"
#include "util/random.h"

namespace prefcover {
namespace serve {
namespace {

constexpr size_t kItems = 80;
constexpr size_t kK = 16;

// Builds a ServingIndex from the maintainer's stable-id retained set:
// snapshot the catalog, map stable ids to snapshot NodeIds, build.
Result<ServingIndex> IndexFromMaintainer(
    const DynamicPreferenceGraph& catalog,
    const InventoryMaintainer& maintainer, Variant variant) {
  std::vector<StableId> stable_ids;
  PREFCOVER_ASSIGN_OR_RETURN(PreferenceGraph snapshot,
                             catalog.Snapshot(&stable_ids));
  std::unordered_map<StableId, NodeId> to_node;
  to_node.reserve(stable_ids.size());
  for (NodeId v = 0; v < stable_ids.size(); ++v) {
    to_node.emplace(stable_ids[v], v);
  }
  std::vector<NodeId> retained;
  retained.reserve(maintainer.retained().size());
  for (StableId id : maintainer.retained()) {
    auto it = to_node.find(id);
    if (it == to_node.end()) {
      return Status::Internal("maintained item not in snapshot");
    }
    retained.push_back(it->second);
  }
  return ServingIndex::BuildFromRetained(snapshot, retained, variant);
}

TEST(ServingReloadTest, MaintainerDrivenReloadUnderConcurrentReaders) {
  Rng rng(17);
  DynamicPreferenceGraph catalog;
  std::vector<StableId> ids;
  for (size_t i = 0; i < kItems; ++i) {
    ids.push_back(catalog.AddItem(1.0 + rng.NextDouble() * 9.0));
  }
  for (StableId from : ids) {
    for (int e = 0; e < 4; ++e) {
      StableId to = ids[rng.NextUint64() % ids.size()];
      if (to == from) continue;
      ASSERT_TRUE(
          catalog.UpsertEdge(from, to, 0.05 + rng.NextDouble() * 0.9).ok());
    }
  }

  MaintainerOptions options;
  options.k = kK;
  InventoryMaintainer maintainer(&catalog, options);
  ASSERT_TRUE(maintainer.Maintain().ok());

  auto initial =
      IndexFromMaintainer(catalog, maintainer, options.variant);
  ASSERT_TRUE(initial.ok()) << initial.status().ToString();
  QueryEngine engine(
      std::make_shared<const ServingIndex>(std::move(initial).value()));

  // Readers hammer the engine while the writer drifts the catalog and
  // swaps in rebuilt indexes. Answers must always be internally
  // consistent with SOME complete index (never a torn snapshot); this is
  // what TSan checks at the memory level and the per-request status
  // checks at the protocol level.
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  auto reader = [&](uint64_t seed) {
    Rng reader_rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      auto index = engine.index();
      const NodeId n = static_cast<NodeId>(index->NumNodes());
      Request request;
      switch (reader_rng.NextUint64() % 3) {
        case 0:
          request.type = QueryType::kCovered;
          request.v = static_cast<NodeId>(reader_rng.NextUint64() % n);
          break;
        case 1:
          request.type = QueryType::kSubstitutes;
          request.v = static_cast<NodeId>(reader_rng.NextUint64() % n);
          request.top_j = 4;
          break;
        default:
          request.type = QueryType::kCoverageAtK;
          request.coverage_k = 0;  // valid on every index size
          break;
      }
      Response response = engine.SubmitAndWait(request);
      // The catalog only shrinks below the initial size transiently; an
      // id can be NotFound on a newer, smaller index — that's a correct
      // answer, not a tear.
      EXPECT_TRUE(response.status.ok() || response.status.IsNotFound())
          << response.line;
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> readers;
  for (uint64_t t = 0; t < 3; ++t) readers.emplace_back(reader, 100 + t);

  // On a single core the writer can finish all reloads before a reader
  // thread ever runs; gate each reload on observed reader progress so
  // queries genuinely interleave with swaps.
  auto wait_for_reads = [&](uint64_t target) {
    while (reads.load(std::memory_order_relaxed) < target) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };

  constexpr int kReloads = 8;
  for (int round = 0; round < kReloads; ++round) {
    wait_for_reads(static_cast<uint64_t>(round + 1) * 20);
    // Drift: remove one item (possibly retained), add one, re-estimate a
    // few edges.
    StableId removed = ids[rng.NextUint64() % ids.size()];
    if (catalog.HasItem(removed)) {
      ASSERT_TRUE(catalog.RemoveItem(removed).ok());
    }
    StableId added = catalog.AddItem(1.0 + rng.NextDouble() * 9.0);
    ids.push_back(added);
    for (int e = 0; e < 3; ++e) {
      StableId from = ids[rng.NextUint64() % ids.size()];
      StableId to = ids[rng.NextUint64() % ids.size()];
      if (from == to || !catalog.HasItem(from) || !catalog.HasItem(to)) {
        continue;
      }
      ASSERT_TRUE(
          catalog.UpsertEdge(from, to, 0.05 + rng.NextDouble() * 0.9).ok());
    }

    auto action = maintainer.Maintain();
    ASSERT_TRUE(action.ok()) << action.status().ToString();
    ASSERT_EQ(maintainer.retained().size(), kK);

    auto rebuilt =
        IndexFromMaintainer(catalog, maintainer, options.variant);
    ASSERT_TRUE(rebuilt.ok()) << rebuilt.status().ToString();
    ASSERT_TRUE(
        engine
            .SwapIndex(std::make_shared<const ServingIndex>(
                std::move(rebuilt).value()))
            .ok());
  }

  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(engine.Stats().index_reloads, kReloads);
  EXPECT_GT(reads.load(), 0u);

  // After the dust settles, the served index agrees with a fresh rebuild
  // from the maintainer's current set.
  auto final_rebuild =
      IndexFromMaintainer(catalog, maintainer, options.variant);
  ASSERT_TRUE(final_rebuild.ok());
  auto served = engine.index();
  EXPECT_EQ(served->Serialize(), final_rebuild->Serialize());
}

}  // namespace
}  // namespace serve
}  // namespace prefcover
