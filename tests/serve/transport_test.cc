// serve/transport: LineChunker framing properties (chunking invariance,
// bounded memory under over-long lines) and the per-connection serve
// loop driven over a socketpair with adversarial framing — partial
// reads, pathologically split writes, oversized lines, interleaved
// control verbs. The loop must neither crash nor hang, and every line
// must get a well-formed reply.

#include "serve/transport.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <unistd.h>

#include <thread>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/server.h"
#include "serve/serving_index.h"
#endif

namespace prefcover {
namespace serve {
namespace {

std::vector<LineChunker::Line> Drain(LineChunker* chunker) {
  std::vector<LineChunker::Line> lines;
  LineChunker::Line line;
  while (chunker->Next(&line)) lines.push_back(std::move(line));
  return lines;
}

TEST(LineChunkerTest, SplitsOnNewlines) {
  LineChunker chunker;
  chunker.Append("covered 1\nsubs 2 4\npartial");
  auto lines = Drain(&chunker);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[0].text, "covered 1");
  EXPECT_FALSE(lines[0].overlong);
  EXPECT_EQ(lines[1].text, "subs 2 4");
  EXPECT_EQ(chunker.partial_bytes(), 7u);  // "partial" still buffered
  chunker.Append("\n");
  lines = Drain(&chunker);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0].text, "partial");
}

TEST(LineChunkerTest, EmptyLinesAreDelivered) {
  LineChunker chunker;
  chunker.Append("\n\nx\n");
  auto lines = Drain(&chunker);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0].text, "");
  EXPECT_EQ(lines[1].text, "");
  EXPECT_EQ(lines[2].text, "x");
}

// The framing property the whole stack leans on: ANY chunking of the
// byte stream yields the identical line sequence.
TEST(LineChunkerTest, ChunkingInvariance) {
  Rng rng(7);
  std::string stream;
  for (int i = 0; i < 200; ++i) {
    const uint64_t len = rng.NextBounded(30);
    for (uint64_t j = 0; j < len; ++j) {
      stream.push_back(static_cast<char>('a' + (rng.NextBounded(26))));
    }
    stream.push_back('\n');
  }

  LineChunker reference;
  reference.Append(stream);
  const auto expected = Drain(&reference);
  ASSERT_EQ(expected.size(), 200u);

  for (int trial = 0; trial < 20; ++trial) {
    LineChunker chunker;
    size_t offset = 0;
    while (offset < stream.size()) {
      const size_t step = static_cast<size_t>(
          1 + rng.NextBounded(trial == 0 ? 1 : 97));  // incl. 1-byte reads
      const size_t take = std::min(step, stream.size() - offset);
      chunker.Append(std::string_view(stream).substr(offset, take));
      offset += take;
    }
    const auto lines = Drain(&chunker);
    ASSERT_EQ(lines.size(), expected.size()) << "trial " << trial;
    for (size_t i = 0; i < lines.size(); ++i) {
      EXPECT_EQ(lines[i].text, expected[i].text) << "trial " << trial;
      EXPECT_FALSE(lines[i].overlong);
    }
  }
}

TEST(LineChunkerTest, OverlongLineIsTruncatedFlaggedAndBounded) {
  LineChunker chunker(/*max_line_bytes=*/16);
  // Feed 1000 bytes with no newline: memory must stay at the bound.
  for (int i = 0; i < 100; ++i) chunker.Append("xxxxxxxxxx");
  EXPECT_EQ(chunker.partial_bytes(), 16u);
  LineChunker::Line line;
  EXPECT_FALSE(chunker.Next(&line));  // no newline yet
  chunker.Append("\nok\n");
  auto lines = Drain(&chunker);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].overlong);
  EXPECT_EQ(lines[0].text, std::string(16, 'x'));
  // The stream resynchronizes at the newline: the next line is intact.
  EXPECT_FALSE(lines[1].overlong);
  EXPECT_EQ(lines[1].text, "ok");
}

TEST(LineChunkerTest, ExactBoundIsNotOverlong) {
  LineChunker chunker(/*max_line_bytes=*/4);
  chunker.Append("abcd\nabcde\n");
  auto lines = Drain(&chunker);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_FALSE(lines[0].overlong);
  EXPECT_EQ(lines[0].text, "abcd");
  EXPECT_TRUE(lines[1].overlong);
  EXPECT_EQ(lines[1].text, "abcd");
}

// --- Request-id multiplex framing ----------------------------------------

TEST(TaggedLineTest, FormatParseRoundTrip) {
  const std::string line = FormatTaggedLine(7, "propose seq=3");
  EXPECT_EQ(line, "@7 propose seq=3");
  uint64_t id = 0;
  std::string_view payload;
  ASSERT_TRUE(ParseTaggedLine(line, &id, &payload));
  EXPECT_EQ(id, 7u);
  EXPECT_EQ(payload, "propose seq=3");

  // The largest id round-trips; so does an empty payload.
  const uint64_t huge = UINT64_MAX;
  ASSERT_TRUE(ParseTaggedLine(FormatTaggedLine(huge, ""), &id, &payload));
  EXPECT_EQ(id, huge);
  EXPECT_EQ(payload, "");
}

TEST(TaggedLineTest, UntaggedLinesAreLeftAlone) {
  // A line without a well-formed `@<id> ` prefix is a plain positional
  // line, not an error — and the outputs stay untouched.
  uint64_t id = 99;
  std::string_view payload = "sentinel";
  for (const char* line :
       {"covered 1", "", "@", "@ x", "@x payload", "@12", "@12x payload",
        "@12\tpayload", "@-3 payload",
        // Overflowing the id is a malformed tag, not a wrapped one.
        "@18446744073709551616 payload"}) {
    EXPECT_FALSE(ParseTaggedLine(line, &id, &payload)) << "'" << line << "'";
    EXPECT_EQ(id, 99u);
    EXPECT_EQ(payload, "sentinel");
  }
}

TEST(TaggedLineTest, TagBindsToFirstSpaceOnly) {
  // Payloads may themselves contain `@` and digits.
  uint64_t id = 0;
  std::string_view payload;
  ASSERT_TRUE(ParseTaggedLine("@3 @5 nested", &id, &payload));
  EXPECT_EQ(id, 3u);
  EXPECT_EQ(payload, "@5 nested");
}

#if defined(__unix__) || defined(__APPLE__)

std::shared_ptr<const ServingIndex> MakeIndex() {
  Rng rng(3);
  UniformGraphParams params;
  params.num_nodes = 60;
  params.out_degree = 4;
  auto graph = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(graph.ok());
  auto solution = SolveGreedyLazy(*graph, 12, GreedyOptions());
  EXPECT_TRUE(solution.ok());
  auto index = ServingIndex::Build(*graph, *solution);
  EXPECT_TRUE(index.ok());
  return std::make_shared<const ServingIndex>(std::move(index).value());
}

// Runs ServeConnectionLoop on one end of a socketpair; the test plays
// the client on the other. Returns every response byte the server
// wrote, reading until it closes its end.
std::string RoundTrip(QueryEngine* engine,
                      const std::vector<std::string>& writes) {
  IgnoreSigpipe();  // post-quit writes may hit a closed peer
  int fds[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server(
      [engine, fd = fds[0]] { ServeConnectionLoop(engine, fd); });
  for (const std::string& piece : writes) {
    // A write can legitimately fail (EPIPE) when an earlier piece ended
    // the session; the response assertions catch real breakage.
    (void)WriteFully(fds[1], piece.data(), piece.size());
  }
  ::shutdown(fds[1], SHUT_WR);  // EOF after the last piece
  std::string received;
  char chunk[4096];
  for (;;) {
    auto got = ReadSome(fds[1], chunk, sizeof(chunk));
    if (!got.ok()) {
      ADD_FAILURE() << got.status().ToString();
      break;
    }
    if (*got == 0) break;
    received.append(chunk, *got);
  }
  server.join();
  ::close(fds[1]);
  return received;
}

TEST(ServeConnectionLoopTest, AnswersAcrossArbitrarySplits) {
  auto index = MakeIndex();
  QueryEngine engine(index);
  // One request split into pathological pieces, then a second intact.
  std::string expected =
      AnswerOnIndex(*index, ParseRequest("covered 1").value()).line + "\n" +
      AnswerOnIndex(*index, ParseRequest("subs 2 4").value()).line + "\n";
  const std::string received = RoundTrip(
      &engine, {"cov", "", "ered", " ", "1", "\nsubs 2 4\n"});
  EXPECT_EQ(received, expected);
}

TEST(ServeConnectionLoopTest, ManyLinesInOneWrite) {
  auto index = MakeIndex();
  QueryEngine engine(index);
  std::string blob;
  for (int i = 0; i < 50; ++i) {
    blob += "covered " + std::to_string(i % 60) + "\n";
  }
  const std::string received = RoundTrip(&engine, {blob});
  // 50 newline-terminated replies, one per request, in order.
  size_t newlines = 0;
  for (char c : received) newlines += c == '\n' ? 1 : 0;
  EXPECT_EQ(newlines, 50u);
}

TEST(ServeConnectionLoopTest, GarbageGetsWellFormedErrors) {
  auto index = MakeIndex();
  QueryEngine engine(index);
  const std::string received = RoundTrip(
      &engine,
      {"bogus verb here\n", "covered\n", "covered 999999\n", "\n"});
  // Every reply is a protocol line; none of them crashed the loop.
  size_t pos = 0;
  int replies = 0;
  while (pos < received.size()) {
    size_t eol = received.find('\n', pos);
    ASSERT_NE(eol, std::string::npos);
    const std::string line = received.substr(pos, eol - pos);
    EXPECT_TRUE(line.rfind("ERR ", 0) == 0 || line.rfind("OK", 0) == 0)
        << line;
    pos = eol + 1;
    ++replies;
  }
  EXPECT_EQ(replies, 4);
}

TEST(ServeConnectionLoopTest, OversizedLineRejectedAndRecovered) {
  auto index = MakeIndex();
  QueryEngine engine(index);
  // > kMaxRequestLineBytes of garbage, then a newline, then a real
  // request: the loop must answer ERR for the monster and OK after.
  std::string monster(kMaxRequestLineBytes + 4096, 'z');
  monster.push_back('\n');
  const std::string received =
      RoundTrip(&engine, {monster, "covered 1\n"});
  ASSERT_NE(received.find("ERR InvalidArgument"), std::string::npos);
  const std::string expected_tail =
      AnswerOnIndex(*index, ParseRequest("covered 1").value()).line + "\n";
  ASSERT_GE(received.size(), expected_tail.size());
  EXPECT_EQ(received.substr(received.size() - expected_tail.size()),
            expected_tail);
}

TEST(ServeConnectionLoopTest, InterleavedMetricsAndQuit) {
  auto index = MakeIndex();
  QueryEngine engine(index);
  // One write, so the server ingests every line before acting on quit
  // (bytes written after the peer closes would race into ECONNRESET and
  // could discard the buffered replies). The trailing request tests that
  // lines after quit are dropped, not answered.
  const std::string received = RoundTrip(
      &engine,
      {"covered 1\nmetrics\ncovered 2\nstats\nquit\ncovered 3\n"});
  // The metrics exposition is multi-line and terminated by "# EOF"; the
  // query responses around it still arrive, in order.
  EXPECT_NE(received.find("# EOF\n"), std::string::npos);
  EXPECT_NE(received.find("OK stats requests="), std::string::npos);
  // quit ends the session with OK bye; the post-quit request gets no
  // reply.
  const std::string tail = "OK bye\n";
  ASSERT_GE(received.size(), tail.size());
  EXPECT_EQ(received.substr(received.size() - tail.size()), tail);
}

TEST(ServeConnectionLoopTest, ShutdownVerbStopsAccepting) {
  auto index = MakeIndex();
  QueryEngine engine(index);
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  bool keep_serving = true;
  std::thread server([&engine, &keep_serving, fd = fds[0]] {
    keep_serving = ServeConnectionLoop(&engine, fd);
  });
  const std::string request = "shutdown\n";
  ASSERT_TRUE(WriteFully(fds[1], request.data(), request.size()).ok());
  server.join();
  EXPECT_FALSE(keep_serving);
  ::close(fds[1]);
}

// --- MultiplexedConnection ------------------------------------------------

// Socketpair with a scripted peer: the test drives the client end, the
// peer thread plays a server that answers per `script` (a map from
// received payload to response payload, echoed with the request's tag in
// whatever order `reply_order` lists the payloads).
struct ScriptedPeer {
  int client_fd = -1;

  ScriptedPeer(std::vector<std::pair<std::string, std::string>> script,
               std::vector<std::string> reply_order) {
    int fds[2];
    EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
    client_fd = fds[1];
    thread_ = std::thread([fd = fds[0], script = std::move(script),
                           order = std::move(reply_order)] {
      // Read one tagged request per script entry, remember its tag, then
      // reply in the scripted order.
      LineChunker chunker;
      std::vector<std::pair<uint64_t, std::string>> seen;  // tag, payload
      char buffer[1024];
      while (seen.size() < script.size()) {
        auto got = ReadSome(fd, buffer, sizeof(buffer));
        if (!got.ok() || *got == 0) break;
        chunker.Append(std::string_view(buffer, *got));
        LineChunker::Line line;
        while (chunker.Next(&line)) {
          uint64_t tag = 0;
          std::string_view payload;
          ASSERT_TRUE(ParseTaggedLine(line.text, &tag, &payload))
              << line.text;
          seen.emplace_back(tag, std::string(payload));
        }
      }
      for (const std::string& want : order) {
        for (const auto& [tag, payload] : seen) {
          if (payload != want) continue;
          std::string response;
          for (const auto& [request, reply] : script) {
            if (request == payload) response = reply;
          }
          std::string line = FormatTaggedLine(tag, response);
          line.push_back('\n');
          ASSERT_TRUE(WriteFully(fd, line.data(), line.size()).ok());
        }
      }
      ::close(fd);
    });
  }

  ~ScriptedPeer() {
    thread_.join();
    ::close(client_fd);
  }

 private:
  std::thread thread_;
};

TEST(MultiplexedConnectionTest, ResponsesMatchedByIdNotPosition) {
  // The peer answers the second request first; Await must still hand
  // each caller its own response, parking the early one.
  ScriptedPeer peer({{"alpha", "OK a"}, {"beta", "OK b"}},
                    /*reply_order=*/{"beta", "alpha"});
  MultiplexedConnection mux(peer.client_fd);
  auto id_a = mux.Send("alpha");
  auto id_b = mux.Send("beta");
  ASSERT_TRUE(id_a.ok());
  ASSERT_TRUE(id_b.ok());
  ASSERT_NE(*id_a, *id_b);

  // Awaiting the FIRST send reads past the out-of-order reply for the
  // second, which gets parked for its own Await.
  auto response_a = mux.Await(*id_a, 2000);
  ASSERT_TRUE(response_a.ok()) << response_a.status().ToString();
  EXPECT_EQ(*response_a, "OK a");
  EXPECT_EQ(mux.parked(), 1u);
  auto response_b = mux.Await(*id_b, 2000);
  ASSERT_TRUE(response_b.ok()) << response_b.status().ToString();
  EXPECT_EQ(*response_b, "OK b");
  EXPECT_EQ(mux.parked(), 0u);
}

TEST(MultiplexedConnectionTest, AwaitRejectsUnknownAndSpentIds) {
  ScriptedPeer peer({{"ping", "pong"}}, {"ping"});
  MultiplexedConnection mux(peer.client_fd);
  // Never issued.
  EXPECT_TRUE(mux.Await(42, 100).status().IsNotFound());
  auto id = mux.Send("ping");
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(mux.Await(*id, 2000).ok());
  // Already awaited: the exchange is spent.
  EXPECT_TRUE(mux.Await(*id, 100).status().IsNotFound());
}

TEST(MultiplexedConnectionTest, UntaggedResponseIsCorruption) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread peer([fd = fds[0]] {
    char buffer[256];
    (void)ReadSome(fd, buffer, sizeof(buffer));
    static const char kBare[] = "OK bare\n";
    (void)WriteFully(fd, kBare, sizeof(kBare) - 1);
    ::close(fd);
  });
  MultiplexedConnection mux(fds[1]);
  auto id = mux.Send("ping");
  ASSERT_TRUE(id.ok());
  // A plain positional response on a multiplexed connection is a framing
  // violation, not a match for any id.
  EXPECT_TRUE(mux.Await(*id, 2000).status().IsCorruption());
  peer.join();
  ::close(fds[1]);
}

TEST(MultiplexedConnectionTest, AwaitTimesOutAsIOError) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  MultiplexedConnection mux(fds[1]);
  auto id = mux.Send("ping");  // peer never answers
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(mux.Await(*id, 50).status().IsIOError());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeLineSessionLoopTest, EchoesRequestTags) {
  // The session loop untags requests before the handler and re-tags the
  // replies, so a tag-oblivious handler serves multiplexed clients.
  IgnoreSigpipe();
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  std::thread server([fd = fds[0]] {
    ServeLineSessionLoop(fd, [](const std::string& line, bool* stop_session,
                                bool* /*stop_server*/) {
      if (line == "quit") {
        *stop_session = true;
        return std::string("OK bye");
      }
      return "echo:" + line;
    });
  });
  const std::string requests = "@11 one\nplain\n@12 two\nquit\n";
  ASSERT_TRUE(WriteFully(fds[1], requests.data(), requests.size()).ok());
  std::string received;
  char chunk[1024];
  for (;;) {
    auto got = ReadSome(fds[1], chunk, sizeof(chunk));
    ASSERT_TRUE(got.ok());
    if (*got == 0) break;
    received.append(chunk, *got);
  }
  server.join();
  ::close(fds[1]);
  // The handler saw untagged payloads; tagged requests got tagged
  // replies, the plain request a plain reply, in arrival order.
  EXPECT_EQ(received, "@11 echo:one\necho:plain\n@12 echo:two\nOK bye\n");
}

#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace serve
}  // namespace prefcover
