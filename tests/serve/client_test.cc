// ResilientClient against scripted fake servers: retry-after-close,
// per-request timeouts, the full circuit-breaker cycle (open →
// fast-fail → half-open probe → re-close / re-open), idempotency
// gating, deterministic jittered backoff, and multi-line metrics reads.
//
// The failpoint registry is process-global, so these tests inject
// faults by scripting the SERVER side of a real loopback socket instead
// of arming net.* failpoints (which would hit both ends at once).

#include "serve/client.h"

#if defined(__unix__) || defined(__APPLE__)

#include <sys/socket.h>
#include <unistd.h>

#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "serve/transport.h"

namespace prefcover {
namespace serve {
namespace {

// A loopback listener that plays one scripted handler per accepted
// connection, in order, then stops accepting.
class FakeServer {
 public:
  using Handler = std::function<void(int fd)>;

  explicit FakeServer(std::vector<Handler> handlers)
      : handlers_(std::move(handlers)) {
    auto listener = ListenTcp(0);
    EXPECT_TRUE(listener.ok()) << listener.status().ToString();
    listener_ = listener.ok() ? *listener : -1;
    if (listener_ >= 0) {
      auto port = LocalPort(listener_);
      EXPECT_TRUE(port.ok());
      port_ = port.ok() ? *port : 0;
      thread_ = std::thread([this] { Run(); });
    }
  }

  ~FakeServer() {
    if (listener_ >= 0) {
      ::shutdown(listener_, SHUT_RDWR);  // unblocks AcceptClient
      if (thread_.joinable()) thread_.join();
      ::close(listener_);
    }
  }

  uint16_t port() const { return port_; }

 private:
  void Run() {
    for (const Handler& handler : handlers_) {
      auto fd = AcceptClient(listener_);
      if (!fd.ok()) return;  // listener shut down
      handler(*fd);
      ::close(*fd);
    }
  }

  std::vector<Handler> handlers_;
  int listener_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
};

// Answers every request line with "OK echo <line>" until EOF.
void EchoLines(int fd) {
  LineChunker chunker;
  char chunk[4096];
  for (;;) {
    auto got = ReadSome(fd, chunk, sizeof(chunk));
    if (!got.ok() || *got == 0) return;
    chunker.Append(std::string_view(chunk, *got));
    LineChunker::Line line;
    while (chunker.Next(&line)) {
      const std::string reply = "OK echo " + line.text + "\n";
      if (!WriteFully(fd, reply.data(), reply.size()).ok()) return;
    }
  }
}

// Reads one chunk (the request) and hangs up without replying — the
// classic mid-response connection loss.
void CloseAfterRequest(int fd) {
  char chunk[256];
  (void)ReadSome(fd, chunk, sizeof(chunk));
}

// Swallows everything and never replies; returns once the client gives
// up and disconnects.
void ReadUntilEof(int fd) {
  char chunk[256];
  for (;;) {
    auto got = ReadSome(fd, chunk, sizeof(chunk));
    if (!got.ok() || *got == 0) return;
  }
}

// Serves one multi-line Prometheus-style exposition, then EOF.
void MetricsOnce(int fd) {
  char chunk[256];
  auto got = ReadSome(fd, chunk, sizeof(chunk));
  if (!got.ok() || *got == 0) return;
  const std::string body =
      "# HELP fake_total A fake counter.\n"
      "# TYPE fake_total counter\n"
      "fake_total 42\n"
      "# EOF\n";
  (void)WriteFully(fd, body.data(), body.size());
}

class ClientTest : public ::testing::Test {
 protected:
  // A scripted handler may close its end while the client still writes.
  void SetUp() override { IgnoreSigpipe(); }

  ResilientClientOptions BaseOptions(uint16_t port) {
    ResilientClientOptions options;
    options.port = port;
    options.sleep_ms_fn = [this](int ms) { sleeps_.push_back(ms); };
    return options;
  }

  std::vector<int> sleeps_;
};

TEST_F(ClientTest, IsIdempotentTable) {
  EXPECT_TRUE(ResilientClient::IsIdempotent("covered 7"));
  EXPECT_TRUE(ResilientClient::IsIdempotent("subs 7 4"));
  EXPECT_TRUE(ResilientClient::IsIdempotent("coverk 50"));
  EXPECT_TRUE(ResilientClient::IsIdempotent("batch 1 2 3"));
  EXPECT_TRUE(ResilientClient::IsIdempotent("stats"));
  EXPECT_TRUE(ResilientClient::IsIdempotent("metrics"));
  // Unknown verbs retry so the server's own ERR reply wins.
  EXPECT_TRUE(ResilientClient::IsIdempotent("frobnicate"));
  EXPECT_TRUE(ResilientClient::IsIdempotent(""));
  // The mutating closed list never retries.
  EXPECT_FALSE(ResilientClient::IsIdempotent("reload /tmp/x.pcsidx"));
  EXPECT_FALSE(ResilientClient::IsIdempotent("  reload x"));
  EXPECT_FALSE(ResilientClient::IsIdempotent("quit"));
  EXPECT_FALSE(ResilientClient::IsIdempotent("shutdown"));
}

TEST_F(ClientTest, RoundTripOnHealthyServer) {
  FakeServer server({EchoLines});
  ResilientClient client(BaseOptions(server.port()));
  auto response = client.Call("covered 5");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(*response, "OK echo covered 5");
  // Same connection serves the next call: no extra reconnect.
  response = client.Call("subs 5 2");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(*response, "OK echo subs 5 2");
  EXPECT_EQ(client.counters().requests, 2u);
  EXPECT_EQ(client.counters().attempts, 2u);
  EXPECT_EQ(client.counters().retries, 0u);
  EXPECT_EQ(client.counters().reconnects, 1u);
  EXPECT_EQ(client.counters().failures, 0u);
}

TEST_F(ClientTest, IdempotentRequestRetriesAcrossConnectionLoss) {
  FakeServer server({CloseAfterRequest, EchoLines});
  auto options = BaseOptions(server.port());
  options.max_attempts = 3;
  options.backoff_initial_ms = 8;
  ResilientClient client(options);
  auto response = client.Call("covered 1");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_EQ(*response, "OK echo covered 1");
  EXPECT_EQ(client.counters().attempts, 2u);
  EXPECT_EQ(client.counters().retries, 1u);
  EXPECT_EQ(client.counters().reconnects, 2u);
  EXPECT_EQ(client.counters().failures, 0u);
  // One backoff sleep, full-jitter bounded by the initial ceiling.
  ASSERT_EQ(sleeps_.size(), 1u);
  EXPECT_GE(sleeps_[0], 0);
  EXPECT_LE(sleeps_[0], 8);
}

TEST_F(ClientTest, NonIdempotentRequestIsNeverRetried) {
  FakeServer server({CloseAfterRequest, EchoLines});
  auto options = BaseOptions(server.port());
  options.max_attempts = 5;
  ResilientClient client(options);
  auto response = client.Call("reload /tmp/whatever.pcsidx");
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsIOError()) << response.status().ToString();
  EXPECT_EQ(client.counters().attempts, 1u);
  EXPECT_EQ(client.counters().retries, 0u);
  EXPECT_EQ(client.counters().failures, 1u);
}

TEST_F(ClientTest, RequestTimeoutSurfacesCancelled) {
  FakeServer server({ReadUntilEof});
  auto options = BaseOptions(server.port());
  options.request_timeout_ms = 50;
  options.max_attempts = 1;
  ResilientClient client(options);
  auto response = client.Call("covered 1");
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsCancelled())
      << response.status().ToString();
  EXPECT_EQ(client.counters().timeouts, 1u);
  EXPECT_EQ(client.counters().failures, 1u);
}

TEST_F(ClientTest, BreakerOpensFastFailsProbesAndRecloses) {
  FakeServer server({CloseAfterRequest, CloseAfterRequest, EchoLines});
  auto options = BaseOptions(server.port());
  options.max_attempts = 1;  // isolate breaker behaviour from retries
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 100;
  int64_t fake_now_ms = 0;
  options.now_ms_fn = [&fake_now_ms] { return fake_now_ms; };
  ResilientClient client(options);

  // Two straight failures trip the breaker open.
  EXPECT_FALSE(client.Call("covered 1").ok());
  EXPECT_FALSE(client.breaker_open());
  EXPECT_FALSE(client.Call("covered 1").ok());
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.counters().breaker_opens, 1u);

  // Inside the cooldown: fast-fail, no wire attempt.
  auto fast = client.Call("covered 1");
  ASSERT_FALSE(fast.ok());
  EXPECT_TRUE(fast.status().IsFailedPrecondition())
      << fast.status().ToString();
  EXPECT_EQ(client.counters().breaker_fastfails, 1u);
  EXPECT_EQ(client.counters().attempts, 2u);  // unchanged

  // Cooldown elapses: one half-open probe goes through and succeeds,
  // re-closing the breaker.
  fake_now_ms += 100;
  auto probe = client.Call("covered 1");
  ASSERT_TRUE(probe.ok()) << probe.status().ToString();
  EXPECT_EQ(*probe, "OK echo covered 1");
  EXPECT_EQ(client.counters().breaker_probes, 1u);
  EXPECT_FALSE(client.breaker_open());

  // And normal service resumes on the same connection.
  EXPECT_TRUE(client.Call("covered 2").ok());
}

TEST_F(ClientTest, FailedProbeReopensBreaker) {
  FakeServer server(
      {CloseAfterRequest, CloseAfterRequest, CloseAfterRequest});
  auto options = BaseOptions(server.port());
  options.max_attempts = 1;
  options.breaker_threshold = 2;
  options.breaker_cooldown_ms = 100;
  int64_t fake_now_ms = 0;
  options.now_ms_fn = [&fake_now_ms] { return fake_now_ms; };
  ResilientClient client(options);

  EXPECT_FALSE(client.Call("covered 1").ok());
  EXPECT_FALSE(client.Call("covered 1").ok());
  EXPECT_TRUE(client.breaker_open());
  fake_now_ms += 100;
  // The probe is admitted (one wire attempt) and fails: straight back to
  // open, with a fresh cooldown window.
  EXPECT_FALSE(client.Call("covered 1").ok());
  EXPECT_TRUE(client.breaker_open());
  EXPECT_EQ(client.counters().breaker_probes, 1u);
  EXPECT_EQ(client.counters().breaker_opens, 2u);
  EXPECT_EQ(client.counters().attempts, 3u);
}

TEST_F(ClientTest, BackoffIsDeterministicPerSeedAndBounded) {
  auto run = [](uint16_t port, uint64_t seed) {
    ResilientClientOptions options;
    options.port = port;
    options.max_attempts = 3;
    options.backoff_initial_ms = 8;
    options.backoff_max_ms = 32;
    options.breaker_threshold = 0;  // keep all retries flowing
    options.jitter_seed = seed;
    auto sleeps = std::make_shared<std::vector<int>>();
    options.sleep_ms_fn = [sleeps](int ms) { sleeps->push_back(ms); };
    ResilientClient client(std::move(options));
    EXPECT_FALSE(client.Call("covered 1").ok());
    return *sleeps;
  };

  FakeServer a({CloseAfterRequest, CloseAfterRequest, CloseAfterRequest});
  const std::vector<int> first = run(a.port(), 77);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_GE(first[0], 0);
  EXPECT_LE(first[0], 8);   // retry 1: ceiling = initial
  EXPECT_GE(first[1], 0);
  EXPECT_LE(first[1], 16);  // retry 2: ceiling doubles

  FakeServer b({CloseAfterRequest, CloseAfterRequest, CloseAfterRequest});
  EXPECT_EQ(run(b.port(), 77), first);  // same seed, same jitter
}

TEST_F(ClientTest, MetricsReadsMultiLineThroughEof) {
  FakeServer server({MetricsOnce});
  ResilientClient client(BaseOptions(server.port()));
  auto response = client.Call("metrics");
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_NE(response->find("# HELP fake_total"), std::string::npos);
  EXPECT_NE(response->find("fake_total 42\n"), std::string::npos);
  const std::string tail = "# EOF\n";
  ASSERT_GE(response->size(), tail.size());
  EXPECT_EQ(response->substr(response->size() - tail.size()), tail);
}

TEST_F(ClientTest, ConnectFailureIsRetriedThenSurfaced) {
  // Grab an ephemeral port and close the listener: connects now fail
  // fast with ECONNREFUSED.
  uint16_t dead_port;
  {
    auto listener = ListenTcp(0);
    ASSERT_TRUE(listener.ok());
    dead_port = LocalPort(*listener).value();
    ::close(*listener);
  }
  ResilientClientOptions options = BaseOptions(dead_port);
  options.max_attempts = 3;
  options.breaker_threshold = 0;
  ResilientClient client(options);
  auto response = client.Call("covered 1");
  ASSERT_FALSE(response.ok());
  EXPECT_EQ(client.counters().attempts, 3u);
  EXPECT_EQ(client.counters().retries, 2u);
  EXPECT_EQ(client.counters().reconnects, 0u);  // none ever succeeded
  EXPECT_EQ(client.counters().failures, 1u);
}

}  // namespace
}  // namespace serve
}  // namespace prefcover

#endif  // __unix__ || __APPLE__
