// Graceful degradation under overload: deadline-aware shedding at
// admission and brownout answers past the queue-depth watermark. The
// tests use SetPaused to build a deterministic backlog instead of racing
// the dispatcher with wall-clock load.

#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/serving_index.h"
#include "util/random.h"

namespace prefcover {
namespace serve {
namespace {

std::shared_ptr<const ServingIndex> MakeIndex(uint64_t seed = 3,
                                              uint32_t num_nodes = 60,
                                              size_t k = 12) {
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = num_nodes;
  params.out_degree = 4;
  auto graph = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(graph.ok());
  auto solution = SolveGreedyLazy(*graph, k, GreedyOptions());
  EXPECT_TRUE(solution.ok());
  auto index = ServingIndex::Build(*graph, *solution);
  EXPECT_TRUE(index.ok());
  return std::make_shared<const ServingIndex>(std::move(index).value());
}

Request Covered(NodeId v) {
  Request request;
  request.type = QueryType::kCovered;
  request.v = v;
  return request;
}

Request Subs(NodeId v, uint32_t top_j) {
  Request request;
  request.type = QueryType::kSubstitutes;
  request.v = v;
  request.top_j = top_j;
  return request;
}

// A node with at least two substitutes, so top-1 truncation is visible
// in the response line (the first non-retained node may have just one).
NodeId NodeWithManySubs(const ServingIndex& index) {
  for (NodeId v = 0; v < index.NumNodes(); ++v) {
    if (index.Retained(v)) continue;
    if (AnswerOnIndex(index, Subs(v, 4)).line !=
        AnswerOnIndex(index, Subs(v, 1)).line) {
      return v;
    }
  }
  ADD_FAILURE() << "no node with >= 2 substitutes in the test index";
  return 0;
}

TEST(DeadlineShedTest, ExpiredDeadlineIsShedAtAdmission) {
  auto index = MakeIndex();
  QueryEngine engine(index);

  Request doomed = Covered(1);
  doomed.deadline_ns = SteadyNowNanos() - 1;
  Response response = engine.SubmitAndWait(doomed);
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_NE(response.line.find("shed at admission"), std::string::npos)
      << response.line;

  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.deadline_shed, 1u);
  // Shed work was never admitted: it does not count as served.
  EXPECT_EQ(stats.requests, 0u);

  // The engine is unharmed; a sane request still flows.
  EXPECT_TRUE(engine.SubmitAndWait(Covered(1)).status.ok());
  EXPECT_EQ(engine.Stats().requests, 1u);
}

TEST(DeadlineShedTest, CanBeDisabled) {
  auto index = MakeIndex();
  QueryEngineOptions options;
  options.deadline_shed = false;
  QueryEngine engine(index, options);

  Request doomed = Covered(1);
  doomed.deadline_ns = SteadyNowNanos() - 1;
  Response response = engine.SubmitAndWait(doomed);
  // The request is admitted and dies in the dispatcher instead — the
  // pre-existing deadline_expired path, not the admission shed.
  EXPECT_TRUE(response.status.IsCancelled());
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.deadline_shed, 0u);
  EXPECT_EQ(stats.deadline_expired, 1u);
}

TEST(DeadlineShedTest, TightDeadlineBehindBacklogIsShedImmediately) {
  auto index = MakeIndex();
  QueryEngineOptions options;
  options.batch_window_us = 0;
  QueryEngine engine(index, options);

  // Warm up the service-time EWMA with real traffic.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine.SubmitAndWait(Covered(static_cast<NodeId>(i % 60)))
                    .status.ok());
  }

  engine.SetPaused(true);
  std::vector<std::future<Response>> backlog;
  for (int i = 0; i < 100; ++i) {
    backlog.push_back(engine.Submit(Covered(static_cast<NodeId>(i % 60))));
  }

  // 100 queued requests ahead of it and ~a nanosecond of budget: the
  // admission ETA check rejects without waiting for the dispatcher (which
  // is paused — a queued future could not resolve).
  Request doomed = Covered(1);
  doomed.deadline_ns = SteadyNowNanos() + 1;
  std::future<Response> shed = engine.Submit(std::move(doomed));
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  Response response = shed.get();
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  EXPECT_EQ(engine.Stats().deadline_shed, 1u);

  engine.SetPaused(false);
  for (auto& f : backlog) {
    EXPECT_TRUE(f.get().status.ok());
  }
  EXPECT_EQ(engine.Stats().requests, 150u);
}

TEST(BrownoutTest, DeepBacklogServesTopOneAndBypassesCache) {
  auto index = MakeIndex();
  const NodeId v = NodeWithManySubs(*index);
  const std::string full_line = AnswerOnIndex(*index, Subs(v, 4)).line;
  const std::string brownout_line = AnswerOnIndex(*index, Subs(v, 1)).line;
  ASSERT_NE(full_line, brownout_line);  // truncation must be observable

  QueryEngineOptions options;
  options.batch_limit = 8;
  options.batch_window_us = 0;
  options.brownout_watermark = 10;
  QueryEngine engine(index, options);

  engine.SetPaused(true);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(engine.Submit(Subs(v, 4)));
  }
  engine.SetPaused(false);

  size_t degraded = 0;
  size_t full = 0;
  for (auto& f : futures) {
    Response response = f.get();
    ASSERT_TRUE(response.status.ok()) << response.status.ToString();
    if (response.line == brownout_line) {
      ++degraded;
    } else {
      EXPECT_EQ(response.line, full_line);
      ++full;
    }
  }

  // Backlog after each 8-wide batch: 42, 34, 26, 18, 10 (>= watermark,
  // brownout), then 2 and 0 (normal). 5 * 8 = 40 degraded answers.
  EXPECT_EQ(degraded, 40u);
  EXPECT_EQ(full, 10u);

  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.brownouts, 40u);
  EXPECT_EQ(stats.requests, 50u);
  // Brownout answers bypass the cache entirely (no lookup, no fill), so
  // every request is accounted for by exactly one of hit/miss/brownout.
  EXPECT_EQ(stats.cache_hits + stats.cache_misses + stats.brownouts,
            stats.requests);
  // The 10 normal answers share one cache key: first fills, rest hit.
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 9u);
}

TEST(BrownoutTest, DisabledByDefault) {
  auto index = MakeIndex();
  const NodeId v = NodeWithManySubs(*index);
  const std::string full_line = AnswerOnIndex(*index, Subs(v, 4)).line;

  QueryEngineOptions options;
  options.batch_limit = 8;
  options.batch_window_us = 0;
  ASSERT_EQ(options.brownout_watermark, 0u);  // default: off
  QueryEngine engine(index, options);

  engine.SetPaused(true);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(engine.Submit(Subs(v, 4)));
  }
  engine.SetPaused(false);
  for (auto& f : futures) {
    EXPECT_EQ(f.get().line, full_line);
  }
  EXPECT_EQ(engine.Stats().brownouts, 0u);
}

TEST(BrownoutTest, OnlySubstitutesAreDegraded) {
  auto index = MakeIndex();
  const std::string covered_line =
      AnswerOnIndex(*index, Covered(1)).line;

  QueryEngineOptions options;
  options.batch_limit = 4;
  options.batch_window_us = 0;
  options.brownout_watermark = 2;
  QueryEngine engine(index, options);

  engine.SetPaused(true);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 40; ++i) {
    futures.push_back(engine.Submit(Covered(1)));
  }
  engine.SetPaused(false);
  for (auto& f : futures) {
    // Point lookups have no richness to shed: identical answers whether
    // the batch ran browned-out or not.
    EXPECT_EQ(f.get().line, covered_line);
  }
  EXPECT_EQ(engine.Stats().brownouts, 0u);
}

TEST(PausedEngineTest, ShutdownDrainsPausedQueue) {
  QueryEngine engine(MakeIndex());
  engine.SetPaused(true);
  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(engine.Submit(Covered(static_cast<NodeId>(i))));
  }
  // Shutdown must not deadlock on the paused dispatcher; every queued
  // future still resolves.
  engine.Shutdown();
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
}

}  // namespace
}  // namespace serve
}  // namespace prefcover
