// Differential acceptance test: every serving answer must be
// byte-identical to what a direct CoverFunction/graph lookup produces.
//
// Three implementations of each answer are compared across 20 seeded
// graphs x both cover variants:
//
//   expected  — computed HERE from the raw graph + retained Bitset with
//               CoverOfItem and an independent sort/truncate of the
//               substitute lists (no serve/ code involved);
//   direct    — AnswerOnIndex on the built ServingIndex;
//   engine    — the full QueryEngine path (queue, batch, cache).
//
// Any divergence — a reordered substitute, a probability formatted from a
// rounded value, a cache serving a stale line — fails with the exact
// request that differed.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "graph/graph_transforms.h"
#include "serve/protocol.h"
#include "serve/query_engine.h"
#include "serve/serving_index.h"
#include "util/bitset.h"
#include "util/random.h"

namespace prefcover {
namespace serve {
namespace {

constexpr uint64_t kSeeds = 20;
constexpr size_t kTopM = 6;

struct Instance {
  PreferenceGraph graph;
  Solution solution;
  Bitset retained;
};

Instance MakeInstance(uint64_t seed, Variant variant) {
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = 50 + static_cast<uint32_t>(seed % 7) * 10;
  params.out_degree = 3 + static_cast<uint32_t>(seed % 4);
  auto generated = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(generated.ok());
  // The Normalized variant requires out-weight sums <= 1; clamping is
  // harmless for Independent and keeps the two variants on the same
  // topology.
  auto graph = ClampOutWeights(*generated);
  EXPECT_TRUE(graph.ok());
  GreedyOptions options;
  options.variant = variant;
  auto solution = SolveGreedyLazy(*graph, params.num_nodes / 5, options);
  EXPECT_TRUE(solution.ok());
  Bitset retained(graph->NumNodes());
  for (NodeId v : solution->items) retained.Set(v);
  return {std::move(graph).value(), std::move(solution).value(),
          std::move(retained)};
}

// Independent reconstruction of the substitute list: v's retained
// out-neighbors, weight desc / id asc, truncated to top_m. Deliberately
// re-implemented from the spec, not shared with ServingIndex::Build.
std::vector<std::pair<NodeId, double>> ExpectedSubs(const Instance& in,
                                                    NodeId v) {
  std::vector<std::pair<NodeId, double>> subs;
  if (in.retained.Test(v)) return subs;
  AdjacencyView out = in.graph.OutNeighbors(v);
  for (size_t i = 0; i < out.size(); ++i) {
    if (in.retained.Test(out.nodes[i])) {
      subs.emplace_back(out.nodes[i], out.weights[i]);
    }
  }
  std::sort(subs.begin(), subs.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (subs.size() > kTopM) subs.resize(kTopM);
  return subs;
}

std::string ExpectedCoveredLine(const Instance& in, NodeId v,
                                Variant variant) {
  bool covered = in.retained.Test(v);
  if (!covered) {
    AdjacencyView out = in.graph.OutNeighbors(v);
    for (size_t i = 0; i < out.size() && !covered; ++i) {
      covered = in.retained.Test(out.nodes[i]);
    }
  }
  const double p = CoverOfItem(in.graph, in.retained, v, variant);
  return std::string("OK covered ") + (covered ? "1" : "0") + " " +
         FormatProbability(p);
}

std::string ExpectedSubsLine(const Instance& in, NodeId v, uint32_t top_j) {
  std::vector<std::pair<NodeId, double>> subs = ExpectedSubs(in, v);
  const size_t count = std::min<size_t>(top_j, subs.size());
  std::string line = "OK subs " + std::to_string(count);
  for (size_t i = 0; i < count; ++i) {
    line += " " + std::to_string(subs[i].first) + ":" +
            FormatProbability(subs[i].second);
  }
  return line;
}

TEST(ServeDifferentialTest, EveryAnswerMatchesDirectLookup) {
  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      SCOPED_TRACE("variant=" + std::string(VariantName(variant)) +
                   " seed=" + std::to_string(seed));
      Instance in = MakeInstance(seed, variant);
      ServingIndexOptions index_options;
      index_options.top_m = kTopM;
      auto built = ServingIndex::Build(in.graph, in.solution, index_options);
      ASSERT_TRUE(built.ok()) << built.status().ToString();
      auto index =
          std::make_shared<const ServingIndex>(std::move(built).value());
      QueryEngine engine(index);

      const uint32_t top_js[] = {1, 3, kTopM, kTopM + 5};
      for (NodeId v = 0; v < in.graph.NumNodes(); ++v) {
        // covered
        {
          Request request;
          request.type = QueryType::kCovered;
          request.v = v;
          const std::string expected =
              ExpectedCoveredLine(in, v, variant);
          EXPECT_EQ(AnswerOnIndex(*index, request).line, expected)
              << "covered " << v << " (direct)";
          EXPECT_EQ(engine.SubmitAndWait(request).line, expected)
              << "covered " << v << " (engine)";
        }
        // subs at several j — issued twice through the engine so the
        // second pass exercises the cache path, which must be
        // byte-identical too.
        for (uint32_t top_j : top_js) {
          Request request;
          request.type = QueryType::kSubstitutes;
          request.v = v;
          request.top_j = top_j;
          const std::string expected = ExpectedSubsLine(in, v, top_j);
          EXPECT_EQ(AnswerOnIndex(*index, request).line, expected)
              << "subs " << v << " " << top_j << " (direct)";
          EXPECT_EQ(engine.SubmitAndWait(request).line, expected)
              << "subs " << v << " " << top_j << " (engine, cold)";
          EXPECT_EQ(engine.SubmitAndWait(request).line, expected)
              << "subs " << v << " " << top_j << " (engine, cached)";
        }
      }

      // coverk over the whole prefix: must render the solver's own
      // cover_after_prefix values exactly.
      for (size_t k = 0; k <= in.solution.items.size(); ++k) {
        Request request;
        request.type = QueryType::kCoverageAtK;
        request.coverage_k = k;
        const double expected_value =
            k == 0 ? 0.0 : in.solution.cover_after_prefix[k - 1];
        const std::string expected =
            "OK coverk " + FormatProbability(expected_value);
        EXPECT_EQ(AnswerOnIndex(*index, request).line, expected);
        EXPECT_EQ(engine.SubmitAndWait(request).line, expected);
      }

      // batch: bits agree with per-node covered answers.
      Request batch;
      batch.type = QueryType::kBatchCovered;
      std::string bits;
      for (NodeId v = 0; v < in.graph.NumNodes(); ++v) {
        batch.batch.push_back(v);
        bits += ExpectedCoveredLine(in, v, variant)[11];  // the 0/1 flag
      }
      const std::string expected_batch =
          "OK batch " + std::to_string(batch.batch.size()) + " " + bits;
      EXPECT_EQ(AnswerOnIndex(*index, batch).line, expected_batch);
      EXPECT_EQ(engine.SubmitAndWait(batch).line, expected_batch);
    }
  }
}

}  // namespace
}  // namespace serve
}  // namespace prefcover
