// Protocol grammar: parsing, formatting, and AnswerOnIndex edge cases.

#include "serve/protocol.h"

#include <string>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "serve/serving_index.h"
#include "util/random.h"

namespace prefcover {
namespace serve {
namespace {

ServingIndex MakeIndex() {
  Rng rng(5);
  UniformGraphParams params;
  params.num_nodes = 40;
  params.out_degree = 4;
  auto graph = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(graph.ok());
  auto solution = SolveGreedyLazy(*graph, 8, GreedyOptions());
  EXPECT_TRUE(solution.ok());
  auto index = ServingIndex::Build(*graph, *solution);
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

TEST(ParseRequestTest, ParsesEveryVerb) {
  auto covered = ParseRequest("covered 17");
  ASSERT_TRUE(covered.ok());
  EXPECT_EQ(covered->type, QueryType::kCovered);
  EXPECT_EQ(covered->v, 17u);

  auto subs = ParseRequest("subs 3 5");
  ASSERT_TRUE(subs.ok());
  EXPECT_EQ(subs->type, QueryType::kSubstitutes);
  EXPECT_EQ(subs->v, 3u);
  EXPECT_EQ(subs->top_j, 5u);

  auto coverk = ParseRequest("coverk 12");
  ASSERT_TRUE(coverk.ok());
  EXPECT_EQ(coverk->type, QueryType::kCoverageAtK);
  EXPECT_EQ(coverk->coverage_k, 12u);

  auto batch = ParseRequest("batch 1 2 3");
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch->type, QueryType::kBatchCovered);
  EXPECT_EQ(batch->batch, (std::vector<NodeId>{1, 2, 3}));
}

TEST(ParseRequestTest, TrimsSurroundingWhitespace) {
  auto request = ParseRequest("  covered 4 \n");
  ASSERT_TRUE(request.ok());
  EXPECT_EQ(request->v, 4u);
}

TEST(ParseRequestTest, RejectsMalformedLines) {
  EXPECT_TRUE(ParseRequest("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("   ").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("covered").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("covered 1 2").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("covered  1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("covered x").status().IsInvalidArgument());
  // Negative ids surface as OutOfRange from the uint32 parse.
  EXPECT_FALSE(ParseRequest("covered -1").ok());
  EXPECT_TRUE(ParseRequest("subs 1").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("coverk -2").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("batch").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("batch 1 two").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("frobnicate 1").status().IsInvalidArgument());
  // Control verbs are transport-level, not queries.
  EXPECT_TRUE(ParseRequest("stats").status().IsInvalidArgument());
  EXPECT_TRUE(ParseRequest("quit").status().IsInvalidArgument());
}

TEST(FormatTest, ProbabilityUses17SignificantDigits) {
  EXPECT_EQ(FormatProbability(0.0), "0");
  EXPECT_EQ(FormatProbability(1.0), "1");
  EXPECT_EQ(FormatProbability(0.1), "0.10000000000000001");
  // %.17g always round-trips a double exactly.
  const double value = 0.123456789012345678;
  EXPECT_EQ(std::stod(FormatProbability(value)), value);
}

TEST(FormatTest, ErrorLineCarriesCodeAndMessage) {
  EXPECT_EQ(FormatErrorLine(Status::NotFound("nope")),
            "ERR NotFound nope");
  EXPECT_EQ(FormatErrorLine(Status::OutOfRange("queue full")),
            "ERR OutOfRange queue full");
}

TEST(AnswerOnIndexTest, CoveredAndSubsAnswerFromTheIndex) {
  ServingIndex index = MakeIndex();
  for (NodeId v = 0; v < index.NumNodes(); ++v) {
    Request request;
    request.type = QueryType::kCovered;
    request.v = v;
    Response response = AnswerOnIndex(index, request);
    ASSERT_TRUE(response.status.ok());
    const std::string expected = std::string("OK covered ") +
                                 (index.Covered(v) ? "1" : "0") + " " +
                                 FormatProbability(index.CoverageOf(v));
    EXPECT_EQ(response.line, expected);
  }

  // A retained node has no substitutes; its coverage is exactly 1.
  NodeId retained = index.items()[0];
  Request subs;
  subs.type = QueryType::kSubstitutes;
  subs.v = retained;
  subs.top_j = 8;
  EXPECT_EQ(AnswerOnIndex(index, subs).line, "OK subs 0");
  Request covered;
  covered.type = QueryType::kCovered;
  covered.v = retained;
  EXPECT_EQ(AnswerOnIndex(index, covered).line, "OK covered 1 1");
}

TEST(AnswerOnIndexTest, SubsHonorsTopJ) {
  ServingIndex index = MakeIndex();
  // Find a node with at least 2 substitutes.
  NodeId rich = static_cast<NodeId>(index.NumNodes());
  for (NodeId v = 0; v < index.NumNodes(); ++v) {
    if (index.SubstitutesOf(v).size() >= 2) {
      rich = v;
      break;
    }
  }
  ASSERT_LT(rich, index.NumNodes()) << "test graph too sparse";

  Request request;
  request.type = QueryType::kSubstitutes;
  request.v = rich;
  request.top_j = 1;
  Response one = AnswerOnIndex(index, request);
  AdjacencyView view = index.SubstitutesOf(rich);
  EXPECT_EQ(one.line, "OK subs 1 " + std::to_string(view.nodes[0]) + ":" +
                          FormatProbability(view.weights[0]));

  request.top_j = 1000;  // capped at what the index holds
  Response all = AnswerOnIndex(index, request);
  EXPECT_EQ(all.line.substr(0, 8 + std::to_string(view.size()).size()),
            "OK subs " + std::to_string(view.size()));
}

TEST(AnswerOnIndexTest, OutOfCatalogIdsAreNotFound) {
  ServingIndex index = MakeIndex();
  const NodeId bad = static_cast<NodeId>(index.NumNodes());

  Request covered;
  covered.type = QueryType::kCovered;
  covered.v = bad;
  EXPECT_TRUE(AnswerOnIndex(index, covered).status.IsNotFound());

  Request subs;
  subs.type = QueryType::kSubstitutes;
  subs.v = bad;
  subs.top_j = 1;
  EXPECT_TRUE(AnswerOnIndex(index, subs).status.IsNotFound());

  Request batch;
  batch.type = QueryType::kBatchCovered;
  batch.batch = {0, bad};
  Response response = AnswerOnIndex(index, batch);
  EXPECT_TRUE(response.status.IsNotFound());
  EXPECT_EQ(response.line.substr(0, 12), "ERR NotFound");
}

TEST(AnswerOnIndexTest, CoverkBoundsAndBatchBits) {
  ServingIndex index = MakeIndex();

  Request coverk;
  coverk.type = QueryType::kCoverageAtK;
  coverk.coverage_k = 0;
  EXPECT_EQ(AnswerOnIndex(index, coverk).line, "OK coverk 0");
  coverk.coverage_k = index.NumRetained();
  EXPECT_EQ(AnswerOnIndex(index, coverk).line,
            "OK coverk " +
                FormatProbability(index.CoverageAtK(index.NumRetained())));
  coverk.coverage_k = index.NumRetained() + 1;
  EXPECT_TRUE(AnswerOnIndex(index, coverk).status.IsOutOfRange());

  Request batch;
  batch.type = QueryType::kBatchCovered;
  std::string bits;
  for (NodeId v = 0; v < 10; ++v) {
    batch.batch.push_back(v);
    bits += index.Covered(v) ? '1' : '0';
  }
  EXPECT_EQ(AnswerOnIndex(index, batch).line, "OK batch 10 " + bits);
}

}  // namespace
}  // namespace serve
}  // namespace prefcover
