// LruCache: sharding, eviction, and the small-capacity regression.

#include "serve/lru_cache.h"

#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace prefcover {
namespace serve {
namespace {

TEST(LruCacheTest, SingleShardSmallCapacityIsSafe) {
  // Regression: capacities 1-7 collapse to a single shard; indexing the
  // shard array must stay in bounds for arbitrary keys (an earlier
  // version shifted a uint64_t by 64, which is UB and out-of-bounds on
  // x86). Reachable from `prefcover serve --cache_capacity=5`.
  for (size_t capacity = 1; capacity <= 7; ++capacity) {
    LruCache cache(capacity);
    for (uint64_t key : {0ULL, 1ULL, 42ULL, 0xFFFFFFFFFFFFFFFFULL,
                         0x9E3779B97F4A7C15ULL}) {
      cache.Put(key, "v" + std::to_string(key));
      std::string value;
      EXPECT_TRUE(cache.Get(key, &value));
      EXPECT_EQ(value, "v" + std::to_string(key));
    }
    EXPECT_LE(cache.Size(), capacity);
  }
}

TEST(LruCacheTest, ZeroCapacityDisables) {
  LruCache cache(0);
  EXPECT_FALSE(cache.enabled());
  cache.Put(1, "x");
  std::string value;
  EXPECT_FALSE(cache.Get(1, &value));
  EXPECT_EQ(cache.Size(), 0u);
}

TEST(LruCacheTest, EvictsLeastRecentlyUsed) {
  // One shard so recency order is global and deterministic.
  LruCache cache(2, 1);
  cache.Put(1, "a");
  cache.Put(2, "b");
  std::string value;
  ASSERT_TRUE(cache.Get(1, &value));  // 2 is now least recently used
  cache.Put(3, "c");
  EXPECT_FALSE(cache.Get(2, &value));
  EXPECT_TRUE(cache.Get(1, &value));
  EXPECT_TRUE(cache.Get(3, &value));
}

TEST(LruCacheTest, ConcurrentMixedTraffic) {
  LruCache cache(256, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (uint64_t i = 0; i < 2000; ++i) {
        const uint64_t key = (static_cast<uint64_t>(t) << 32) | (i % 97);
        cache.Put(key, std::to_string(key));
        std::string value;
        if (cache.Get(key, &value)) {
          EXPECT_EQ(value, std::to_string(key));
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.Size(), 256u);
}

}  // namespace
}  // namespace serve
}  // namespace prefcover
