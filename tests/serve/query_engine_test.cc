// QueryEngine: batching, caching, admission control, deadlines, hot
// reload, and shutdown semantics.

#include "serve/query_engine.h"

#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "serve/protocol.h"
#include "serve/serving_index.h"
#include "util/failpoint.h"
#include "util/random.h"

namespace prefcover {
namespace serve {
namespace {

std::shared_ptr<const ServingIndex> MakeIndex(uint64_t seed = 3,
                                              uint32_t num_nodes = 60,
                                              size_t k = 12) {
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = num_nodes;
  params.out_degree = 4;
  auto graph = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(graph.ok());
  auto solution = SolveGreedyLazy(*graph, k, GreedyOptions());
  EXPECT_TRUE(solution.ok());
  auto index = ServingIndex::Build(*graph, *solution);
  EXPECT_TRUE(index.ok());
  return std::make_shared<const ServingIndex>(std::move(index).value());
}

Request Covered(NodeId v) {
  Request request;
  request.type = QueryType::kCovered;
  request.v = v;
  return request;
}

Request Subs(NodeId v, uint32_t top_j) {
  Request request;
  request.type = QueryType::kSubstitutes;
  request.v = v;
  request.top_j = top_j;
  return request;
}

TEST(QueryEngineTest, AnswersMatchAnswerOnIndex) {
  auto index = MakeIndex();
  QueryEngine engine(index);
  for (NodeId v = 0; v < index->NumNodes(); ++v) {
    Response served = engine.SubmitAndWait(Covered(v));
    Response direct = AnswerOnIndex(*index, Covered(v));
    EXPECT_EQ(served.line, direct.line);
    EXPECT_GT(served.done_ns, 0);

    Response served_subs = engine.SubmitAndWait(Subs(v, 4));
    EXPECT_EQ(served_subs.line, AnswerOnIndex(*index, Subs(v, 4)).line);
  }
  // Out-of-catalog errors travel through the engine unchanged.
  const NodeId bad = static_cast<NodeId>(index->NumNodes());
  EXPECT_TRUE(engine.SubmitAndWait(Covered(bad)).status.IsNotFound());
}

TEST(QueryEngineTest, PipelinedSubmissionsCoalesceIntoBatches) {
  auto index = MakeIndex();
  QueryEngineOptions options;
  options.batch_limit = 64;
  options.batch_window_us = 20000;  // generous: let the queue pile up
  QueryEngine engine(index, options);

  constexpr size_t kRequests = 200;
  std::vector<std::future<Response>> futures;
  futures.reserve(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    futures.push_back(
        engine.Submit(Covered(static_cast<NodeId>(i % index->NumNodes()))));
  }
  for (auto& f : futures) {
    EXPECT_TRUE(f.get().status.ok());
  }
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.requests, kRequests);
  // If every request rode its own batch, micro-batching is broken.
  EXPECT_LT(stats.batches, kRequests);
  EXPECT_GE(stats.batches, kRequests / options.batch_limit);
}

TEST(QueryEngineTest, SubsCacheHitsAreDeterministicWhenSequential) {
  auto index = MakeIndex();
  QueryEngine engine(index);  // dispatcher-only: deterministic cache path
  // Pick a non-retained node so the subs line is non-trivial.
  NodeId v = 0;
  while (index->Retained(v)) ++v;

  constexpr uint64_t kRepeats = 50;
  std::string first;
  for (uint64_t i = 0; i < kRepeats; ++i) {
    Response response = engine.SubmitAndWait(Subs(v, 4));
    ASSERT_TRUE(response.status.ok());
    if (i == 0) {
      first = response.line;
    } else {
      EXPECT_EQ(response.line, first);
    }
  }
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, kRepeats - 1);
}

TEST(QueryEngineTest, ZeroCapacityDisablesTheCache) {
  QueryEngineOptions options;
  options.cache_capacity = 0;
  QueryEngine engine(MakeIndex(), options);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.SubmitAndWait(Subs(1, 4)).status.ok());
  }
  // With the cache disabled there is no cache traffic at all — neither
  // hits nor misses are counted.
  QueryEngineStats stats = engine.Stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.cache_misses, 0u);
}

TEST(QueryEngineTest, ExpiredDeadlineIsCancelledNotServed) {
  QueryEngine engine(MakeIndex());
  Request request = Covered(0);
  request.deadline_ns = SteadyNowNanos() - 1;  // already in the past
  Response response = engine.SubmitAndWait(request);
  EXPECT_TRUE(response.status.IsCancelled());
  EXPECT_EQ(response.line.substr(0, 13), "ERR Cancelled");
  // Deadline-aware admission (on by default) rejects it at the door;
  // it never reaches the dispatcher's deadline_expired path (see
  // degradation_test.cc for both paths in isolation).
  EXPECT_GE(engine.Stats().deadline_shed, 1u);
  EXPECT_EQ(engine.Stats().deadline_expired, 0u);

  // A far-future deadline is honored normally.
  request.deadline_ns = SteadyNowNanos() + 60'000'000'000;
  EXPECT_TRUE(engine.SubmitAndWait(request).status.ok());
}

TEST(QueryEngineTest, FullQueueShedsWithOutOfRange) {
  QueryEngineOptions options;
  options.max_queue = 1;
  options.batch_limit = 1;
  options.batch_window_us = 0;
  QueryEngine engine(MakeIndex(3, 200, 20), options);

  // Large batch payloads keep the dispatcher busy long enough for the
  // 1-deep queue to fill. Retry until shedding is observed — timing
  // dependent, but each round makes it more likely, and a broken
  // admission path never sheds at all.
  Request heavy;
  heavy.type = QueryType::kBatchCovered;
  for (NodeId v = 0; v < 200; ++v) heavy.batch.push_back(v);

  bool shed = false;
  for (int round = 0; round < 200 && !shed; ++round) {
    std::vector<std::future<Response>> futures;
    for (int i = 0; i < 64; ++i) futures.push_back(engine.Submit(heavy));
    for (auto& f : futures) {
      Response response = f.get();
      if (response.status.IsOutOfRange()) {
        EXPECT_EQ(response.line.substr(0, 14), "ERR OutOfRange");
        shed = true;
      } else {
        EXPECT_TRUE(response.status.ok()) << response.line;
      }
    }
  }
  EXPECT_TRUE(shed) << "queue of depth 1 never rejected under burst load";
  EXPECT_GE(engine.Stats().admission_rejected, 1u);
}

TEST(QueryEngineTest, SwapIndexPublishesNewAnswersAndFreshCache) {
  auto first = MakeIndex(3, 60, 12);
  auto second = MakeIndex(99, 60, 12);
  QueryEngine engine(first);

  // Warm the cache on the first index.
  NodeId v = 0;
  while (first->Retained(v)) ++v;
  Response before = engine.SubmitAndWait(Subs(v, 4));
  ASSERT_TRUE(before.status.ok());
  EXPECT_EQ(engine.Stats().cache_misses, 1u);

  ASSERT_TRUE(engine.SwapIndex(second).ok());
  EXPECT_EQ(engine.index().get(), second.get());
  EXPECT_EQ(engine.Stats().index_reloads, 1u);

  // Answers now come from the second index, and the cache restarted —
  // a stale cached line from the old index must be unreachable.
  Response after = engine.SubmitAndWait(Subs(v, 4));
  ASSERT_TRUE(after.status.ok());
  EXPECT_EQ(after.line, AnswerOnIndex(*second, Subs(v, 4)).line);
  EXPECT_EQ(engine.Stats().cache_misses, 2u);
}

TEST(QueryEngineTest, SwapIndexRejectsNull) {
  QueryEngine engine(MakeIndex());
  EXPECT_TRUE(engine.SwapIndex(nullptr).IsInvalidArgument());
  EXPECT_EQ(engine.Stats().index_reloads, 0u);
}

TEST(QueryEngineTest, ReloadSwapFailpointInjectsError) {
  if (!failpoint::Enabled()) {
    GTEST_SKIP() << "failpoints compiled out";
  }
  QueryEngine engine(MakeIndex());
  auto replacement = MakeIndex(7);
  ASSERT_TRUE(failpoint::Set("serve.reload_swap", "error").ok());
  Status status = engine.SwapIndex(replacement);
  failpoint::Clear();
  EXPECT_FALSE(status.ok());
  // The failed swap must not have been published.
  EXPECT_NE(engine.index().get(), replacement.get());
  EXPECT_EQ(engine.Stats().index_reloads, 0u);
  // And the engine still serves.
  EXPECT_TRUE(engine.SubmitAndWait(Covered(0)).status.ok());
}

TEST(QueryEngineTest, ShutdownAnswersEverythingThenRejects) {
  auto index = MakeIndex();
  QueryEngineOptions options;
  options.batch_window_us = 5000;
  auto engine = std::make_unique<QueryEngine>(index, options);

  std::vector<std::future<Response>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(engine->Submit(Covered(static_cast<NodeId>(i % 10))));
  }
  engine->Shutdown();
  for (auto& f : futures) {
    Response response = f.get();
    // Every future is ready: answered, or cancelled by the shutdown.
    EXPECT_TRUE(response.status.ok() || response.status.IsCancelled())
        << response.line;
  }
  // Post-shutdown submissions fail fast.
  EXPECT_TRUE(engine->SubmitAndWait(Covered(0)).status.IsCancelled());
  engine->Shutdown();  // idempotent
  engine.reset();      // destructor after explicit Shutdown is safe
}

TEST(QueryEngineTest, ConcurrentShutdownIsSafe) {
  // Regression: two callers racing into Shutdown (e.g. an explicit
  // Shutdown racing the destructor) must not both join the dispatcher.
  for (int round = 0; round < 20; ++round) {
    QueryEngine engine(MakeIndex());
    for (int i = 0; i < 8; ++i) {
      (void)engine.Submit(Covered(static_cast<NodeId>(i)));
    }
    std::vector<std::thread> threads;
    for (int t = 0; t < 3; ++t) {
      threads.emplace_back([&engine] { engine.Shutdown(); });
    }
    for (std::thread& thread : threads) thread.join();
    // Destructor runs a fourth Shutdown.
  }
}

}  // namespace
}  // namespace serve
}  // namespace prefcover
