// ServingIndex: build semantics, PCSIDX01 round-trip, golden byte-lock
// and corruption rejection.

#include "serve/serving_index.h"

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "graph/graph_transforms.h"
#include "util/bitset.h"
#include "util/fs.h"
#include "util/random.h"

#ifndef PREFCOVER_GOLDEN_DIR
#error "PREFCOVER_GOLDEN_DIR must be defined by the build"
#endif

namespace prefcover {
namespace serve {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/serving_index_test_" + name;
}

PreferenceGraph MakeGraph(uint64_t seed = 7, uint32_t num_nodes = 60) {
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = num_nodes;
  params.out_degree = 5;
  auto g = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

Solution Solve(const PreferenceGraph& graph, size_t k,
               Variant variant = Variant::kIndependent) {
  GreedyOptions options;
  options.variant = variant;
  auto solution = SolveGreedyLazy(graph, k, options);
  EXPECT_TRUE(solution.ok());
  return std::move(solution).value();
}

TEST(ServingIndexBuildTest, QueriesMatchTheirDefinitions) {
  PreferenceGraph graph = MakeGraph();
  Solution solution = Solve(graph, 12);
  auto built = ServingIndex::Build(graph, solution);
  ASSERT_TRUE(built.ok()) << built.status().ToString();
  const ServingIndex& index = *built;

  EXPECT_EQ(index.NumNodes(), graph.NumNodes());
  EXPECT_EQ(index.NumRetained(), solution.items.size());
  EXPECT_EQ(index.variant(), solution.variant);
  EXPECT_EQ(index.graph_digest(), GraphDigest(graph));
  EXPECT_GT(index.MemoryBytes(), 0u);

  Bitset retained(graph.NumNodes());
  for (NodeId v : solution.items) retained.Set(v);

  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    EXPECT_EQ(index.Retained(v), retained.Test(v));
    // Coverage must be bit-identical to the direct oracle.
    const double direct =
        CoverOfItem(graph, retained, v, solution.variant);
    EXPECT_EQ(index.CoverageOf(v), direct) << "node " << v;

    AdjacencyView subs = index.SubstitutesOf(v);
    if (retained.Test(v)) {
      EXPECT_EQ(subs.size(), 0u) << "retained node " << v;
      EXPECT_TRUE(index.Covered(v));
    } else {
      EXPECT_LE(subs.size(), index.top_m());
      bool has_retained_neighbor = false;
      AdjacencyView out = graph.OutNeighbors(v);
      for (size_t i = 0; i < out.size(); ++i) {
        if (retained.Test(out.nodes[i])) has_retained_neighbor = true;
      }
      EXPECT_EQ(index.Covered(v), has_retained_neighbor) << "node " << v;
      for (size_t i = 0; i < subs.size(); ++i) {
        EXPECT_TRUE(retained.Test(subs.nodes[i]));
        if (i > 0) {
          // Strongest first, ties to the smaller id.
          EXPECT_TRUE(subs.weights[i - 1] > subs.weights[i] ||
                      (subs.weights[i - 1] == subs.weights[i] &&
                       subs.nodes[i - 1] < subs.nodes[i]))
              << "node " << v << " position " << i;
        }
      }
    }
  }

  EXPECT_EQ(index.CoverageAtK(0), 0.0);
  for (size_t i = 0; i < solution.items.size(); ++i) {
    EXPECT_EQ(index.CoverageAtK(i + 1), solution.cover_after_prefix[i]);
  }
}

TEST(ServingIndexBuildTest, TopMTruncatesSubstituteLists) {
  PreferenceGraph graph = MakeGraph(11, 80);
  Solution solution = Solve(graph, 40);
  ServingIndexOptions options;
  options.top_m = 2;
  auto built = ServingIndex::Build(graph, solution, options);
  ASSERT_TRUE(built.ok());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    EXPECT_LE(built->SubstitutesOf(v).size(), 2u);
  }
}

TEST(ServingIndexBuildTest, RejectsMalformedSolutions) {
  PreferenceGraph graph = MakeGraph();
  Solution solution = Solve(graph, 5);

  Solution dup = solution;
  dup.items.push_back(dup.items[0]);
  dup.cover_after_prefix.push_back(1.0);
  EXPECT_TRUE(
      ServingIndex::Build(graph, dup).status().IsInvalidArgument());

  Solution out_of_range = solution;
  out_of_range.items[0] = static_cast<NodeId>(graph.NumNodes());
  EXPECT_TRUE(ServingIndex::Build(graph, out_of_range)
                  .status()
                  .IsInvalidArgument());

  Solution skewed = solution;
  skewed.cover_after_prefix.pop_back();
  EXPECT_TRUE(
      ServingIndex::Build(graph, skewed).status().IsInvalidArgument());
}

TEST(ServingIndexBuildTest, BuildFromRetainedMatchesBuild) {
  // The Normalized variant requires out-weight sums <= 1.
  auto clamped = ClampOutWeights(MakeGraph(19));
  ASSERT_TRUE(clamped.ok());
  PreferenceGraph graph = std::move(clamped).value();
  Solution solution = Solve(graph, 10, Variant::kNormalized);
  auto from_solution = ServingIndex::Build(graph, solution);
  ASSERT_TRUE(from_solution.ok());
  auto from_retained = ServingIndex::BuildFromRetained(
      graph, solution.items, Variant::kNormalized);
  ASSERT_TRUE(from_retained.ok()) << from_retained.status().ToString();

  // The retained set, per-item coverage and substitute lists are pure
  // functions of (graph, S, variant), so the two construction paths must
  // agree exactly.
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    EXPECT_EQ(from_solution->CoverageOf(v), from_retained->CoverageOf(v));
    EXPECT_EQ(from_solution->Covered(v), from_retained->Covered(v));
    AdjacencyView a = from_solution->SubstitutesOf(v);
    AdjacencyView b = from_retained->SubstitutesOf(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.nodes[i], b.nodes[i]);
      EXPECT_EQ(a.weights[i], b.weights[i]);
    }
  }
  EXPECT_EQ(from_retained->CoverageAtK(solution.items.size()),
            solution.cover);

  EXPECT_TRUE(ServingIndex::BuildFromRetained(graph, {0, 0},
                                              Variant::kIndependent)
                  .status()
                  .IsInvalidArgument());
}

TEST(ServingIndexIoTest, SaveLoadRoundTripIsByteStable) {
  PreferenceGraph graph = MakeGraph(23);
  Solution solution = Solve(graph, 9);
  auto index = ServingIndex::Build(graph, solution);
  ASSERT_TRUE(index.ok());

  std::string path = TempPath("roundtrip.pcsidx");
  ASSERT_TRUE(index->Save(path).ok());
  auto loaded = ServingIndex::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  // Re-serializing the loaded index reproduces the file byte for byte —
  // nothing is lost or reordered on the way through the format.
  EXPECT_EQ(loaded->Serialize(), index->Serialize());
  EXPECT_EQ(loaded->NumRetained(), index->NumRetained());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    EXPECT_EQ(loaded->CoverageOf(v), index->CoverageOf(v));
    EXPECT_EQ(loaded->Retained(v), index->Retained(v));
  }
}

TEST(ServingIndexIoTest, LoadChecksGraphDigest) {
  PreferenceGraph graph = MakeGraph(29);
  auto index = ServingIndex::Build(graph, Solve(graph, 6));
  ASSERT_TRUE(index.ok());
  std::string path = TempPath("digest.pcsidx");
  ASSERT_TRUE(index->Save(path).ok());

  EXPECT_TRUE(ServingIndex::Load(path, GraphDigest(graph)).ok());
  EXPECT_TRUE(ServingIndex::Load(path, GraphDigest(graph) + 1)
                  .status()
                  .IsFailedPrecondition());
}

TEST(ServingIndexIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(ServingIndex::Load(TempPath("never_written.pcsidx"))
                  .status()
                  .IsIOError());
}

TEST(ServingIndexIoTest, EveryTruncationRejected) {
  PreferenceGraph graph = MakeGraph(31, 24);
  auto index = ServingIndex::Build(graph, Solve(graph, 5));
  ASSERT_TRUE(index.ok());
  const std::string bytes = index->Serialize();
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    auto read = ServingIndex::Deserialize(
        std::string_view(bytes).substr(0, cut));
    EXPECT_TRUE(read.status().IsCorruption()) << "cut at " << cut;
  }
}

TEST(ServingIndexIoTest, EveryByteFlipRejected) {
  PreferenceGraph graph = MakeGraph(37, 24);
  auto index = ServingIndex::Build(graph, Solve(graph, 5));
  ASSERT_TRUE(index.ok());
  const std::string bytes = index->Serialize();
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupted = bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    auto read = ServingIndex::Deserialize(corrupted);
    EXPECT_TRUE(read.status().IsCorruption()) << "flip at byte " << i;
  }
}

TEST(ServingIndexIoTest, TrailingGarbageAndForeignFilesRejected) {
  PreferenceGraph graph = MakeGraph(41, 24);
  auto index = ServingIndex::Build(graph, Solve(graph, 5));
  ASSERT_TRUE(index.ok());
  EXPECT_TRUE(ServingIndex::Deserialize(index->Serialize() + "extra")
                  .status()
                  .IsCorruption());
  EXPECT_TRUE(
      ServingIndex::Deserialize("this is not a serving index at all...")
          .status()
          .IsCorruption());
}

// Locks the PCSIDX01 emission byte for byte on a pinned instance. A diff
// here means the format changed: bump the version, don't silently break
// old artifacts. Regenerate with PREFCOVER_REGENERATE_GOLDEN=1.
TEST(ServingIndexGoldenTest, EmissionMatchesCheckedInArtifact) {
  PreferenceGraph graph = MakeGraph(13, 40);
  Solution solution = Solve(graph, 12);
  ServingIndexOptions options;
  options.top_m = 4;
  auto index = ServingIndex::Build(graph, solution, options);
  ASSERT_TRUE(index.ok());
  const std::string bytes = index->Serialize();

  const std::string golden_path =
      std::string(PREFCOVER_GOLDEN_DIR) + "/serving_index_seed13.pcsidx";
  if (std::getenv("PREFCOVER_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path, std::ios::binary);
    out << bytes;
    ASSERT_TRUE(out.good()) << "cannot write " << golden_path;
    GTEST_SKIP() << "regenerated " << golden_path;
  }

  std::ifstream in(golden_path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << golden_path
      << " missing; run with PREFCOVER_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(bytes, buffer.str())
      << "PCSIDX01 emission diverged from the golden artifact. If "
         "intentional, bump kVersion and regenerate with "
         "PREFCOVER_REGENERATE_GOLDEN=1.";

  // The golden artifact must also still parse and validate.
  auto parsed = ServingIndex::Deserialize(buffer.str());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->NumRetained(), 12u);
}

}  // namespace
}  // namespace serve
}  // namespace prefcover
