#include "eval/report.h"

#include <sstream>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "util/csv.h"

namespace prefcover {
namespace {

TEST(ReportTest, SummaryFieldsOnPaperExample) {
  PreferenceGraph g = MakePaperExampleGraph();
  GreedyOptions options;
  options.variant = Variant::kNormalized;
  auto sol = SolveGreedy(g, 2, options);
  ASSERT_TRUE(sol.ok());
  auto report = BuildSolutionReport(g, *sol);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->catalog_size, 5u);
  EXPECT_EQ(report->retained_size, 2u);
  EXPECT_NEAR(report->cover, 0.873, 1e-9);
  // {B, D}: direct weight 0.28, via alternatives 0.593.
  EXPECT_NEAR(report->retained_weight, 0.28, 1e-9);
  EXPECT_NEAR(report->covered_via_alternatives, 0.593, 1e-9);
  ASSERT_EQ(report->retained.size(), 2u);
  EXPECT_EQ(report->retained[0].name, "B");
  EXPECT_EQ(report->retained[1].name, "D");
}

TEST(ReportTest, RiskSectionRanksUnservedDemand) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  auto report = BuildSolutionReport(g, *sol, /*max_unserved=*/2);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->top_unserved.size(), 2u);
  // Unserved demand: A = 0.33 * 1/3 = 0.11, E = 0.17 * 0.1 = 0.017,
  // C = 0. A tops the list.
  EXPECT_EQ(report->top_unserved[0].name, "A");
  EXPECT_EQ(report->top_unserved[1].name, "E");
  // Demand-weighted unretained coverage: (0.22+0.22+0.153)/0.72.
  EXPECT_NEAR(report->mean_unretained_coverage,
              (0.33 * (2.0 / 3.0) + 0.22 * 1.0 + 0.17 * 0.9) / 0.72, 1e-9);
}

TEST(ReportTest, RejectsCorruptSolution) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  Solution broken = *sol;
  broken.cover += 0.5;
  EXPECT_FALSE(BuildSolutionReport(g, broken).ok());
}

TEST(ReportTest, PrintRendersAllSections) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  auto report = BuildSolutionReport(g, *sol);
  ASSERT_TRUE(report.ok());
  std::ostringstream out;
  PrintSolutionReport(*report, &out);
  std::string text = out.str();
  EXPECT_NE(text.find("Preference Cover report"), std::string::npos);
  EXPECT_NE(text.find("87.30%"), std::string::npos);
  EXPECT_NE(text.find("Retained"), std::string::npos);
  EXPECT_NE(text.find("unserved"), std::string::npos);
  EXPECT_NE(text.find("B"), std::string::npos);
}

TEST(ReportTest, PrintTruncatesRetainedListing) {
  Rng rng(3);
  UniformGraphParams params;
  params.num_nodes = 60;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto sol = SolveGreedy(*g, 30);
  ASSERT_TRUE(sol.ok());
  auto report = BuildSolutionReport(*g, *sol);
  ASSERT_TRUE(report.ok());
  std::ostringstream out;
  PrintSolutionReport(*report, &out, /*max_retained_lines=*/5);
  EXPECT_NE(out.str().find("... 25 more"), std::string::npos);
}

TEST(ReportTest, CoverageCsvHasOneRowPerItem) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  std::ostringstream out;
  ASSERT_TRUE(WriteCoverageCsv(g, *sol, &out).ok());
  std::istringstream in(out.str());
  CsvReader reader(&in);
  std::vector<std::string> fields;
  ASSERT_TRUE(reader.Next(&fields));  // header
  EXPECT_EQ(fields[0], "item_id");
  size_t rows = 0;
  size_t retained_rows = 0;
  while (reader.Next(&fields)) {
    ASSERT_EQ(fields.size(), 5u);
    ++rows;
    if (fields[3] == "1") ++retained_rows;
  }
  EXPECT_EQ(rows, 5u);
  EXPECT_EQ(retained_rows, 2u);
}

}  // namespace
}  // namespace prefcover
