#include "eval/metrics.h"

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"

namespace prefcover {
namespace {

TEST(JaccardTest, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1}, {}), 0.0);
}

TEST(JaccardTest, DuplicatesDeduplicated) {
  EXPECT_DOUBLE_EQ(JaccardSimilarity({1, 1, 2}, {2, 2, 1}), 1.0);
}

TEST(PrefixOverlapTest, KnownValues) {
  EXPECT_DOUBLE_EQ(PrefixOverlap({1, 2, 3, 4}, {1, 2, 3, 4}, 4), 1.0);
  EXPECT_DOUBLE_EQ(PrefixOverlap({1, 2, 3, 4}, {4, 3, 2, 1}, 4), 1.0);
  EXPECT_DOUBLE_EQ(PrefixOverlap({1, 2, 3, 4}, {5, 6, 1, 2}, 2), 0.0);
  EXPECT_DOUBLE_EQ(PrefixOverlap({1, 2, 3, 4}, {2, 9, 8, 7}, 2), 0.5);
  EXPECT_DOUBLE_EQ(PrefixOverlap({}, {}, 5), 1.0);
  // k capped at the shorter list.
  EXPECT_DOUBLE_EQ(PrefixOverlap({1, 2}, {1}, 5), 1.0);
}

TEST(RetainedWeightDeltaTest, SumsOnlyAMinusB) {
  PreferenceGraph g = MakePaperExampleGraph();
  // A (0.33) and D (0.06) are in a but not b; B shared.
  EXPECT_NEAR(RetainedWeightDelta(g, {0, 1, 3}, {1, 2}), 0.39, 1e-12);
  EXPECT_DOUBLE_EQ(RetainedWeightDelta(g, {1}, {1}), 0.0);
  EXPECT_NEAR(RetainedWeightDelta(g, {0, 0}, {}), 0.33, 1e-12);  // dedupe
}

TEST(CoverageShiftTest, IdenticalSolutionsShiftNothing) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  auto shift = ComputeCoverageShift(g, *sol, *sol);
  ASSERT_TRUE(shift.ok());
  EXPECT_DOUBLE_EQ(shift->mean_abs_difference, 0.0);
  EXPECT_EQ(shift->items_better_in_a, 0u);
  EXPECT_EQ(shift->items_better_in_b, 0u);
}

TEST(CoverageShiftTest, GreedyVsTopSellers) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto greedy = SolveGreedy(g, 2);  // {B, D}
  ASSERT_TRUE(greedy.ok());
  // Fake a "top sellers" solution {A, B} with its contributions.
  GreedyOptions options;
  options.force_include = {0, 1};
  auto top = SolveGreedy(g, 2, options);
  ASSERT_TRUE(top.ok());
  auto shift = ComputeCoverageShift(g, *greedy, *top);
  ASSERT_TRUE(shift.ok());
  // Greedy covers D and E better; top sellers cover A better.
  EXPECT_EQ(shift->items_better_in_a, 2u);  // D, E
  EXPECT_EQ(shift->items_better_in_b, 1u);  // A
  EXPECT_GT(shift->max_abs_difference, 0.8);  // D: 1.0 vs 0.0
}

TEST(CoverageShiftTest, SizeMismatchRejected) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  Solution broken = *sol;
  broken.item_contributions.resize(2);
  EXPECT_TRUE(
      ComputeCoverageShift(g, *sol, broken).status().IsInvalidArgument());
}

TEST(OrderCorrelationTest, KnownValues) {
  EXPECT_DOUBLE_EQ(SelectionOrderCorrelation({1, 2, 3, 4}, {1, 2, 3, 4}),
                   1.0);
  EXPECT_DOUBLE_EQ(SelectionOrderCorrelation({1, 2, 3, 4}, {4, 3, 2, 1}),
                   -1.0);
  EXPECT_DOUBLE_EQ(SelectionOrderCorrelation({1}, {1}), 0.0);  // < 2 common
  EXPECT_DOUBLE_EQ(SelectionOrderCorrelation({1, 2}, {3, 4}), 0.0);
}

TEST(OrderCorrelationTest, PartialOverlapUsesCommonItemsOnly) {
  // Common items {1, 3}: order 1<3 in both -> tau = 1.
  EXPECT_DOUBLE_EQ(
      SelectionOrderCorrelation({1, 9, 3}, {1, 3, 7}), 1.0);
  // Common {1, 3}: 1 before 3 vs 3 before 1 -> tau = -1.
  EXPECT_DOUBLE_EQ(
      SelectionOrderCorrelation({1, 9, 3}, {3, 8, 1}), -1.0);
}

TEST(OrderCorrelationTest, GreedyExecutionsPerfectlyCorrelated) {
  Rng rng(3);
  UniformGraphParams params;
  params.num_nodes = 100;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto plain = SolveGreedy(*g, 25);
  auto lazy = SolveGreedyLazy(*g, 25);
  ASSERT_TRUE(plain.ok() && lazy.ok());
  EXPECT_DOUBLE_EQ(
      SelectionOrderCorrelation(plain->items, lazy->items), 1.0);
}

}  // namespace
}  // namespace prefcover
