#include "eval/experiment.h"

#include <gtest/gtest.h>

namespace prefcover {
namespace {

Status ParseArgs(ExperimentEnv* env, std::vector<const char*> argv) {
  argv.insert(argv.begin(), "bench");
  return env->Parse(static_cast<int>(argv.size()), argv.data());
}

TEST(ExperimentEnvTest, Defaults) {
  ExperimentEnv env("test");
  ASSERT_TRUE(ParseArgs(&env, {}).ok());
  EXPECT_FALSE(env.csv);
  EXPECT_EQ(env.seed, 42u);
  EXPECT_EQ(env.threads, 1u);
  EXPECT_DOUBLE_EQ(env.scale, 0.0);
  EXPECT_DOUBLE_EQ(env.ScaleOr(0.25), 0.25);
}

TEST(ExperimentEnvTest, ExplicitScaleWinsOverDefault) {
  ExperimentEnv env("test");
  ASSERT_TRUE(ParseArgs(&env, {"--scale=0.5"}).ok());
  EXPECT_DOUBLE_EQ(env.ScaleOr(0.25), 0.5);
}

TEST(ExperimentEnvTest, FullBeatsScale) {
  ExperimentEnv env("test");
  ASSERT_TRUE(ParseArgs(&env, {"--scale=0.5", "--full"}).ok());
  EXPECT_DOUBLE_EQ(env.scale, 1.0);
}

TEST(ExperimentEnvTest, BadScaleRejected) {
  ExperimentEnv env("test");
  EXPECT_FALSE(ParseArgs(&env, {"--scale=1.5"}).ok());
  ExperimentEnv env2("test");
  EXPECT_FALSE(ParseArgs(&env2, {"--scale=-0.1"}).ok());
}

TEST(ExperimentEnvTest, BadThreadsRejected) {
  ExperimentEnv env("test");
  EXPECT_FALSE(ParseArgs(&env, {"--threads=0"}).ok());
}

TEST(ExperimentEnvTest, SeedAndCsvParsed) {
  ExperimentEnv env("test");
  ASSERT_TRUE(ParseArgs(&env, {"--seed=7", "--csv", "--threads=3"}).ok());
  EXPECT_EQ(env.seed, 7u);
  EXPECT_TRUE(env.csv);
  EXPECT_EQ(env.threads, 3u);
}

TEST(ExperimentEnvTest, HelpIsOutOfRange) {
  ExperimentEnv env("test");
  EXPECT_TRUE(ParseArgs(&env, {"--help"}).IsOutOfRange());
}

TEST(ExperimentEnvTest, ExtraFlagsComposable) {
  ExperimentEnv env("test");
  env.flags.AddInt("n", 100, "custom knob");
  ASSERT_TRUE(ParseArgs(&env, {"--n=32", "--seed=9"}).ok());
  EXPECT_EQ(env.flags.GetInt("n"), 32);
  EXPECT_EQ(env.seed, 9u);
}

}  // namespace
}  // namespace prefcover
