#include "eval/runner.h"

#include <gtest/gtest.h>

#include "graph/graph_generators.h"

namespace prefcover {
namespace {

TEST(RunnerTest, DisplayNamesMatchPaper) {
  EXPECT_EQ(AlgorithmDisplayName(Algorithm::kGreedy), "Greedy");
  EXPECT_EQ(AlgorithmDisplayName(Algorithm::kBruteForce), "BF");
  EXPECT_EQ(AlgorithmDisplayName(Algorithm::kTopKWeight), "TopK-W");
  EXPECT_EQ(AlgorithmDisplayName(Algorithm::kTopKCoverage), "TopK-C");
  EXPECT_EQ(AlgorithmDisplayName(Algorithm::kRandom), "Random");
}

TEST(RunnerTest, RunAlgorithmDispatchesEachSolver) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(1);
  for (Algorithm algorithm :
       {Algorithm::kGreedy, Algorithm::kGreedyLazy,
        Algorithm::kGreedyParallel, Algorithm::kBruteForce,
        Algorithm::kTopKWeight, Algorithm::kTopKCoverage,
        Algorithm::kRandom}) {
    auto sol = RunAlgorithm(algorithm, g, 2, Variant::kNormalized, &rng,
                            /*num_threads=*/2);
    ASSERT_TRUE(sol.ok()) << AlgorithmDisplayName(algorithm) << ": "
                          << sol.status().ToString();
    EXPECT_EQ(sol->items.size(), 2u);
    EXPECT_TRUE(sol->Validate(g).ok()) << AlgorithmDisplayName(algorithm);
  }
}

TEST(RunnerTest, GreedyFamilyAgreesThroughRunner) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(2);
  auto plain = RunAlgorithm(Algorithm::kGreedy, g, 2,
                            Variant::kIndependent, &rng);
  auto lazy = RunAlgorithm(Algorithm::kGreedyLazy, g, 2,
                           Variant::kIndependent, &rng);
  auto parallel = RunAlgorithm(Algorithm::kGreedyParallel, g, 2,
                               Variant::kIndependent, &rng, 4);
  ASSERT_TRUE(plain.ok() && lazy.ok() && parallel.ok());
  EXPECT_EQ(plain->items, lazy->items);
  EXPECT_EQ(plain->items, parallel->items);
}

TEST(RunnerTest, SuiteRunsAllAndPreservesOrder) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(3);
  std::vector<Algorithm> algorithms = {
      Algorithm::kGreedy, Algorithm::kTopKWeight, Algorithm::kRandom};
  auto entries = RunSuite(algorithms, g, 2, Variant::kNormalized, &rng);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 3u);
  EXPECT_EQ((*entries)[0].algorithm, Algorithm::kGreedy);
  EXPECT_EQ((*entries)[1].algorithm, Algorithm::kTopKWeight);
  EXPECT_EQ((*entries)[2].algorithm, Algorithm::kRandom);
  // Greedy is optimal here (0.873) and dominates the others.
  EXPECT_GE((*entries)[0].solution.cover, (*entries)[1].solution.cover);
  EXPECT_GE((*entries)[0].solution.cover, (*entries)[2].solution.cover);
}

TEST(RunnerTest, ErrorsPropagateFromSolvers) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(4);
  auto bad = RunAlgorithm(Algorithm::kGreedy, g, 10, Variant::kIndependent,
                          &rng);
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

}  // namespace
}  // namespace prefcover
