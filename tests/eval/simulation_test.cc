// Monte-Carlo validation: the empirical match rate of simulated consumer
// sessions converges to the analytical cover C(S) under both variants'
// behavioral models.

#include "eval/simulation.h"

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"

namespace prefcover {
namespace {

constexpr uint64_t kRequests = 200'000;

class SimulationTest : public ::testing::TestWithParam<Variant> {};

TEST_P(SimulationTest, EmpiricalMatchesAnalyticalOnPaperExample) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::vector<NodeId> retained = {1, 3};  // {B, D}: C(S) = 0.873
  Rng rng(5);
  auto sim = SimulateMatchRate(g, retained, GetParam(), kRequests, &rng);
  ASSERT_TRUE(sim.ok()) << sim.status().ToString();
  double analytical = EvaluateCover(g, retained, GetParam()).value();
  EXPECT_NEAR(sim->MatchRate(), analytical, 4.0 * sim->StandardError());
  // Direct matches alone equal the retained weight (0.28).
  double direct = static_cast<double>(sim->matched_directly) /
                  static_cast<double>(sim->requests);
  EXPECT_NEAR(direct, 0.28, 0.01);
}

TEST_P(SimulationTest, EmpiricalMatchesAnalyticalOnRandomGraphs) {
  for (uint64_t seed : {11u, 12u}) {
    Rng rng(seed);
    UniformGraphParams params;
    params.num_nodes = 60;
    params.out_degree = 5;
    params.normalized_out_weights = GetParam() == Variant::kNormalized;
    auto g = GenerateUniformGraph(params, &rng);
    ASSERT_TRUE(g.ok());
    GreedyOptions options;
    options.variant = GetParam();
    auto sol = SolveGreedy(*g, 12, options);
    ASSERT_TRUE(sol.ok());
    auto sim =
        SimulateMatchRate(*g, sol->items, GetParam(), kRequests, &rng);
    ASSERT_TRUE(sim.ok());
    EXPECT_NEAR(sim->MatchRate(), sol->cover,
                4.0 * sim->StandardError() + 1e-4)
        << "seed " << seed;
  }
}

TEST_P(SimulationTest, FullRetentionAlwaysMatches) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::vector<NodeId> all = {0, 1, 2, 3, 4};
  Rng rng(7);
  auto sim = SimulateMatchRate(g, all, GetParam(), 10'000, &rng);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->matched, sim->requests);
  EXPECT_EQ(sim->matched_directly, sim->requests);
}

TEST_P(SimulationTest, EmptyRetentionNeverMatches) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(8);
  auto sim = SimulateMatchRate(g, {}, GetParam(), 10'000, &rng);
  ASSERT_TRUE(sim.ok());
  EXPECT_EQ(sim->matched, 0u);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, SimulationTest,
                         ::testing::Values(Variant::kIndependent,
                                           Variant::kNormalized),
                         [](const auto& param_info) {
                           return std::string(VariantName(param_info.param));
                         });

TEST(SimulationTest, RejectsBadInput) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(1);
  EXPECT_FALSE(
      SimulateMatchRate(g, {99}, Variant::kIndependent, 10, &rng).ok());
  EXPECT_FALSE(
      SimulateMatchRate(g, {1, 1}, Variant::kIndependent, 10, &rng).ok());
}

TEST(SimulationTest, StandardErrorShrinksWithRequests) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(9);
  auto small = SimulateMatchRate(g, {1}, Variant::kIndependent, 1'000, &rng);
  auto large =
      SimulateMatchRate(g, {1}, Variant::kIndependent, 100'000, &rng);
  ASSERT_TRUE(small.ok() && large.ok());
  EXPECT_GT(small->StandardError(), large->StandardError());
}

}  // namespace
}  // namespace prefcover
