#include "bench/bench_runner.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/compare.h"
#include "bench/json.h"
#include "bench/metrics_json.h"

namespace prefcover {
namespace {

BenchConfig TestConfig() {
  BenchConfig config;
  config.suite = "harness_test";
  config.seed = 7;
  config.warmup = 2;
  config.repetitions = 3;
  return config;
}

BenchCase CountingCase(const std::string& name, int* invocations) {
  BenchCase bench_case;
  bench_case.name = name;
  bench_case.run = [invocations](BenchRecorder* recorder) -> Status {
    ++*invocations;
    recorder->Record("zeta", 1.0);
    recorder->Record("alpha", 2.0);
    return Status::OK();
  };
  return bench_case;
}

TEST(BenchRunnerTest, RunsWarmupPlusRepetitions) {
  BenchRunner runner(TestConfig());
  int invocations = 0;
  ASSERT_TRUE(runner.Run(CountingCase("case/a", &invocations)).ok());
  EXPECT_EQ(invocations, 5);  // 2 warmup + 3 timed
  ASSERT_EQ(runner.results().size(), 1u);
  const BenchResult& r = runner.results()[0];
  EXPECT_EQ(r.name, "case/a");
  EXPECT_GE(r.wall.min_ms, 0.0);
  EXPECT_LE(r.wall.min_ms, r.wall.p50_ms);
  EXPECT_LE(r.wall.p50_ms, r.wall.p95_ms);
  EXPECT_LE(r.wall.p95_ms, r.wall.max_ms);
}

TEST(BenchRunnerTest, CountersAreNameSorted) {
  BenchRunner runner(TestConfig());
  int invocations = 0;
  ASSERT_TRUE(runner.Run(CountingCase("case/a", &invocations)).ok());
  const BenchResult& r = runner.results()[0];
  ASSERT_EQ(r.counters.size(), 2u);
  EXPECT_EQ(r.counters[0].first, "alpha");
  EXPECT_EQ(r.counters[1].first, "zeta");
}

TEST(BenchRunnerTest, RejectsDuplicateAndInvalidCases) {
  BenchRunner runner(TestConfig());
  int invocations = 0;
  ASSERT_TRUE(runner.Run(CountingCase("case/a", &invocations)).ok());
  EXPECT_FALSE(runner.Run(CountingCase("case/a", &invocations)).ok());
  EXPECT_FALSE(runner.Run(CountingCase("", &invocations)).ok());
  BenchCase no_body;
  no_body.name = "case/no_body";
  EXPECT_FALSE(runner.Run(no_body).ok());
}

TEST(BenchRunnerTest, CaseErrorPropagates) {
  BenchRunner runner(TestConfig());
  BenchCase failing;
  failing.name = "case/fails";
  failing.run = [](BenchRecorder*) -> Status {
    return Status::Internal("boom");
  };
  Status st = runner.Run(failing);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("boom"), std::string::npos);
}

TEST(BenchRunnerTest, EmittedDocumentValidates) {
  BenchRunner runner(TestConfig());
  int invocations = 0;
  BenchCase bench_case = CountingCase("solve/x", &invocations);
  bench_case.profile = "PE";
  bench_case.variant = "independent";
  bench_case.solver = "lazy";
  bench_case.n = 100;
  bench_case.k = 10;
  bench_case.threads = 4;
  ASSERT_TRUE(runner.Run(bench_case).ok());
  JsonValue doc = runner.ToJson();
  Status st = ValidateBenchDocument(doc);
  EXPECT_TRUE(st.ok()) << st.ToString();

  ASSERT_NE(doc.Find("schema_version"), nullptr);
  EXPECT_DOUBLE_EQ(doc.Find("schema_version")->number_value(),
                   kBenchSchemaVersion);
  EXPECT_EQ(doc.Find("suite")->string_value(), "harness_test");
  const JsonValue* config = doc.Find("config");
  ASSERT_NE(config, nullptr);
  EXPECT_DOUBLE_EQ(config->Find("seed")->number_value(), 7.0);
  EXPECT_DOUBLE_EQ(config->Find("warmup")->number_value(), 2.0);
  EXPECT_DOUBLE_EQ(config->Find("repetitions")->number_value(), 3.0);
  const JsonValue* cases = doc.Find("cases");
  ASSERT_NE(cases, nullptr);
  ASSERT_EQ(cases->size(), 1u);
  const JsonValue& c = cases->at(0);
  EXPECT_EQ(c.Find("name")->string_value(), "solve/x");
  EXPECT_EQ(c.Find("profile")->string_value(), "PE");
  EXPECT_DOUBLE_EQ(c.Find("n")->number_value(), 100.0);
  EXPECT_DOUBLE_EQ(c.Find("k")->number_value(), 10.0);
  EXPECT_DOUBLE_EQ(c.Find("threads")->number_value(), 4.0);
  ASSERT_NE(c.Find("wall_ms"), nullptr);
  ASSERT_NE(c.Find("cpu_ms"), nullptr);
  ASSERT_NE(c.Find("counters"), nullptr);
  EXPECT_DOUBLE_EQ(c.Find("counters")->Find("alpha")->number_value(), 2.0);
}

TEST(BenchRunnerTest, EveryCaseCarriesAPerfCountersSubtree) {
  BenchRunner runner(TestConfig());
  int invocations = 0;
  ASSERT_TRUE(runner.Run(CountingCase("case/a", &invocations)).ok());
  JsonValue doc = runner.ToJson();
  EXPECT_TRUE(ValidateBenchDocument(doc).ok());

  const JsonValue& c = doc.Find("cases")->at(0);
  const JsonValue* perf = c.Find("perf_counters");
  ASSERT_NE(perf, nullptr);
  ASSERT_NE(perf->Find("schema_version"), nullptr);
  EXPECT_DOUBLE_EQ(perf->Find("schema_version")->number_value(),
                   kPerfCountersSchemaVersion);
  const JsonValue* supported = perf->Find("supported");
  ASSERT_NE(supported, nullptr);
  if (supported->bool_value()) {
    // Measured hosts report raw event values; derived ratios are
    // optional (a PMU-less VM has no cycles/instructions).
    EXPECT_NE(perf->Find("events"), nullptr);
  } else {
    EXPECT_NE(perf->Find("unsupported_reason"), nullptr);
  }

  // The standalone perf document mirrors the per-case subtrees.
  JsonValue perf_doc = runner.PerfCountersJson();
  ASSERT_NE(perf_doc.Find("cases"), nullptr);
  ASSERT_EQ(perf_doc.Find("cases")->size(), 1u);
  EXPECT_EQ(perf_doc.Find("cases")->at(0).Find("name")->string_value(),
            "case/a");
}

TEST(BenchRunnerTest, TwoRunsAgreeOnAllNonTimingFields) {
  auto make_doc = []() {
    BenchRunner runner(TestConfig());
    int invocations = 0;
    EXPECT_TRUE(runner.Run(CountingCase("case/a", &invocations)).ok());
    EXPECT_TRUE(runner.Run(CountingCase("case/b", &invocations)).ok());
    return runner.ToJson();
  };
  JsonValue first = make_doc();
  JsonValue second = make_doc();
  BenchCompareOptions options;
  options.determinism = true;
  auto report = CompareBenchDocuments(first, second, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << (report->problems.empty()
                                    ? ""
                                    : report->problems.front());
}

TEST(BenchRunnerTest, WriteJsonFileRoundTrips) {
  BenchRunner runner(TestConfig());
  int invocations = 0;
  ASSERT_TRUE(runner.Run(CountingCase("case/a", &invocations)).ok());
  std::string path = ::testing::TempDir() + "/bench_harness_test.json";
  ASSERT_TRUE(runner.WriteJsonFile(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string text;
  char buffer[4096];
  size_t got;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, got);
  }
  std::fclose(f);
  auto parsed = JsonValue::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == runner.ToJson());
  std::remove(path.c_str());
}

TEST(BenchConfigFromFlagsTest, ValidatesRepsAndWarmup) {
  FlagParser flags("t");
  AddBenchFlags(&flags, /*default_reps=*/5, /*default_warmup=*/1);
  const char* argv_bad[] = {"prog", "--reps=0"};
  ASSERT_TRUE(flags.Parse(2, argv_bad).ok());
  EXPECT_FALSE(BenchConfigFromFlags(flags, "s", 1).ok());

  FlagParser flags2("t");
  AddBenchFlags(&flags2, /*default_reps=*/5, /*default_warmup=*/1);
  const char* argv_neg[] = {"prog", "--warmup=-1"};
  ASSERT_TRUE(flags2.Parse(2, argv_neg).ok());
  EXPECT_FALSE(BenchConfigFromFlags(flags2, "s", 1).ok());

  FlagParser flags3("t");
  AddBenchFlags(&flags3, /*default_reps=*/5, /*default_warmup=*/1);
  const char* argv_ok[] = {"prog", "--reps=2", "--warmup=0"};
  ASSERT_TRUE(flags3.Parse(3, argv_ok).ok());
  auto config = BenchConfigFromFlags(flags3, "s", 9);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->suite, "s");
  EXPECT_EQ(config->seed, 9u);
  EXPECT_EQ(config->repetitions, 2u);
  EXPECT_EQ(config->warmup, 0u);
}

}  // namespace
}  // namespace prefcover
