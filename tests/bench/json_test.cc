#include "bench/json.h"

#include <cmath>
#include <limits>
#include <string>

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(JsonValueTest, DefaultIsNull) {
  JsonValue v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.Dump(), "null\n");
}

TEST(JsonValueTest, ScalarFactoriesAndAccessors) {
  EXPECT_TRUE(JsonValue::Bool(true).bool_value());
  EXPECT_FALSE(JsonValue::Bool(false).bool_value());
  EXPECT_DOUBLE_EQ(JsonValue::Number(2.5).number_value(), 2.5);
  EXPECT_DOUBLE_EQ(JsonValue::Int(-7).number_value(), -7.0);
  EXPECT_DOUBLE_EQ(JsonValue::Uint(42).number_value(), 42.0);
  EXPECT_EQ(JsonValue::Str("hi").string_value(), "hi");
}

TEST(JsonValueTest, ObjectPreservesInsertionOrder) {
  JsonValue obj = JsonValue::Object();
  obj.Set("zebra", JsonValue::Int(1));
  obj.Set("alpha", JsonValue::Int(2));
  obj.Set("mid", JsonValue::Int(3));
  ASSERT_EQ(obj.members().size(), 3u);
  EXPECT_EQ(obj.members()[0].first, "zebra");
  EXPECT_EQ(obj.members()[1].first, "alpha");
  EXPECT_EQ(obj.members()[2].first, "mid");
  ASSERT_NE(obj.Find("alpha"), nullptr);
  EXPECT_DOUBLE_EQ(obj.Find("alpha")->number_value(), 2.0);
  EXPECT_EQ(obj.Find("missing"), nullptr);
}

TEST(JsonValueTest, DuplicateKeyDies) {
  JsonValue obj = JsonValue::Object();
  obj.Set("k", JsonValue::Int(1));
  EXPECT_DEATH(obj.Set("k", JsonValue::Int(2)), "duplicate");
}

TEST(JsonValueTest, NonFiniteNumberDies) {
  EXPECT_DEATH(JsonValue::Number(std::numeric_limits<double>::quiet_NaN()),
               "finite");
  EXPECT_DEATH(JsonValue::Number(std::numeric_limits<double>::infinity()),
               "finite");
}

TEST(JsonValueTest, DumpIsStableAndIndented) {
  JsonValue doc = JsonValue::Object();
  doc.Set("name", JsonValue::Str("s"));
  JsonValue arr = JsonValue::Array();
  arr.Append(JsonValue::Int(1));
  arr.Append(JsonValue::Bool(false));
  arr.Append(JsonValue::Null());
  doc.Set("values", std::move(arr));
  doc.Set("empty_obj", JsonValue::Object());
  doc.Set("empty_arr", JsonValue::Array());
  const std::string expected =
      "{\n"
      "  \"name\": \"s\",\n"
      "  \"values\": [\n"
      "    1,\n"
      "    false,\n"
      "    null\n"
      "  ],\n"
      "  \"empty_obj\": {},\n"
      "  \"empty_arr\": []\n"
      "}\n";
  EXPECT_EQ(doc.Dump(), expected);
  // Deterministic: dumping twice is byte-identical.
  EXPECT_EQ(doc.Dump(), expected);
}

TEST(JsonValueTest, NumberFormatting) {
  EXPECT_EQ(FormatJsonNumber(0.0), "0");
  EXPECT_EQ(FormatJsonNumber(42.0), "42");
  EXPECT_EQ(FormatJsonNumber(-3.0), "-3");
  EXPECT_EQ(FormatJsonNumber(9007199254740992.0), "9007199254740992");
  EXPECT_EQ(FormatJsonNumber(2.5), "2.5");
  EXPECT_EQ(FormatJsonNumber(0.1), "0.1");
  // Shortest round-trip representation parses back to the same double.
  for (double v : {1.0 / 3.0, 1e-9, 123.456789, 1.7976931348623157e308}) {
    std::string s = FormatJsonNumber(v);
    EXPECT_DOUBLE_EQ(std::stod(s), v) << s;
  }
}

TEST(JsonValueTest, ParseRoundTrip) {
  JsonValue doc = JsonValue::Object();
  doc.Set("a", JsonValue::Number(1.5));
  doc.Set("b", JsonValue::Str("text with \"quotes\" and \\ and \n"));
  JsonValue nested = JsonValue::Object();
  nested.Set("t", JsonValue::Bool(true));
  doc.Set("c", std::move(nested));
  auto parsed = JsonValue::Parse(doc.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(*parsed == doc);
  EXPECT_EQ(parsed->Dump(), doc.Dump());
}

TEST(JsonValueTest, ParseScalars) {
  auto v = JsonValue::Parse("  -12.5e2 ");
  ASSERT_TRUE(v.ok());
  EXPECT_DOUBLE_EQ(v->number_value(), -1250.0);
  EXPECT_TRUE(JsonValue::Parse("true")->bool_value());
  EXPECT_TRUE(JsonValue::Parse("null")->is_null());
  EXPECT_EQ(JsonValue::Parse("\"a\\u0041b\"")->string_value(), "aAb");
}

TEST(JsonValueTest, ParseUnicodeEscapeToUtf8) {
  auto v = JsonValue::Parse("\"\\u00e9\\u20ac\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->string_value(), "\xC3\xA9\xE2\x82\xAC");  // é €
}

TEST(JsonValueTest, ParseErrors) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("nan").ok());
  EXPECT_FALSE(JsonValue::Parse("+1").ok());
  EXPECT_FALSE(JsonValue::Parse("01").ok());
  // Duplicate keys are rejected (the harness never writes them).
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1,\"a\":2}").ok());
  // Unterminated string, bad escape.
  EXPECT_FALSE(JsonValue::Parse("\"abc").ok());
  EXPECT_FALSE(JsonValue::Parse("\"\\x\"").ok());
}

TEST(JsonValueTest, ParseDepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(JsonValue::Parse(deep).ok());
  std::string shallow(10, '[');
  shallow += std::string(10, ']');
  EXPECT_TRUE(JsonValue::Parse(shallow).ok());
}

TEST(JsonValueTest, EqualityIsOrderSensitiveForObjects) {
  JsonValue a = JsonValue::Object();
  a.Set("x", JsonValue::Int(1));
  a.Set("y", JsonValue::Int(2));
  JsonValue b = JsonValue::Object();
  b.Set("y", JsonValue::Int(2));
  b.Set("x", JsonValue::Int(1));
  // Key order is part of the determinism contract.
  EXPECT_FALSE(a == b);
  JsonValue c = JsonValue::Object();
  c.Set("x", JsonValue::Int(1));
  c.Set("y", JsonValue::Int(2));
  EXPECT_TRUE(a == c);
}

}  // namespace
}  // namespace prefcover
