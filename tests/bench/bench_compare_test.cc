#include "bench/compare.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_runner.h"
#include "bench/json.h"

namespace prefcover {
namespace {

JsonValue MakeLatency(double base) {
  JsonValue lat = JsonValue::Object();
  lat.Set("p50", JsonValue::Number(base));
  lat.Set("p90", JsonValue::Number(base * 1.2));
  lat.Set("p95", JsonValue::Number(base * 1.3));
  lat.Set("mean", JsonValue::Number(base * 1.05));
  lat.Set("min", JsonValue::Number(base * 0.9));
  lat.Set("max", JsonValue::Number(base * 1.4));
  return lat;
}

JsonValue MakeCase(const std::string& name, double p50_ms,
                   double cover = 0.5) {
  JsonValue c = JsonValue::Object();
  c.Set("name", JsonValue::Str(name));
  c.Set("profile", JsonValue::Str("PE"));
  c.Set("variant", JsonValue::Str("independent"));
  c.Set("solver", JsonValue::Str("lazy"));
  c.Set("n", JsonValue::Uint(1000));
  c.Set("k", JsonValue::Uint(50));
  c.Set("threads", JsonValue::Uint(1));
  c.Set("wall_ms", MakeLatency(p50_ms));
  c.Set("cpu_ms", MakeLatency(p50_ms * 0.98));
  JsonValue counters = JsonValue::Object();
  counters.Set("cover", JsonValue::Number(cover));
  counters.Set("gain_evaluations", JsonValue::Number(1234));
  c.Set("counters", std::move(counters));
  return c;
}

JsonValue MakeDoc(std::vector<JsonValue> cases,
                  const std::string& git_sha = "abc123") {
  JsonValue doc = JsonValue::Object();
  doc.Set("schema_version", JsonValue::Int(kBenchSchemaVersion));
  doc.Set("suite", JsonValue::Str("compare_test"));
  JsonValue env = JsonValue::Object();
  env.Set("git_sha", JsonValue::Str(git_sha));
  env.Set("build_type", JsonValue::Str("Release"));
  env.Set("compiler", JsonValue::Str("gcc 12"));
  env.Set("cxx_flags", JsonValue::Str("-O3"));
  env.Set("os", JsonValue::Str("Linux"));
  env.Set("hardware_threads", JsonValue::Uint(8));
  doc.Set("env", std::move(env));
  JsonValue config = JsonValue::Object();
  config.Set("seed", JsonValue::Uint(42));
  config.Set("warmup", JsonValue::Uint(1));
  config.Set("repetitions", JsonValue::Uint(5));
  doc.Set("config", std::move(config));
  JsonValue case_array = JsonValue::Array();
  for (JsonValue& c : cases) case_array.Append(std::move(c));
  doc.Set("cases", std::move(case_array));
  return doc;
}

TEST(ValidateBenchDocumentTest, AcceptsWellFormedDocument) {
  JsonValue doc = MakeDoc({MakeCase("a", 1.0), MakeCase("b", 2.0)});
  Status st = ValidateBenchDocument(doc);
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ValidateBenchDocumentTest, RejectsBadDocuments) {
  // Not an object.
  EXPECT_FALSE(ValidateBenchDocument(JsonValue::Array()).ok());

  // Wrong schema version (patched in the serialized text, then re-parsed).
  {
    std::string text = MakeDoc({MakeCase("a", 1.0)}).Dump();
    size_t pos = text.find("\"schema_version\": 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 19, "\"schema_version\": 99");
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(ValidateBenchDocument(*parsed).ok());
  }

  // Duplicate case names.
  EXPECT_FALSE(
      ValidateBenchDocument(MakeDoc({MakeCase("a", 1.0), MakeCase("a", 2.0)}))
          .ok());

  // Empty case name.
  EXPECT_FALSE(ValidateBenchDocument(MakeDoc({MakeCase("", 1.0)})).ok());

  // Missing top-level key.
  {
    JsonValue doc = JsonValue::Object();
    doc.Set("schema_version", JsonValue::Int(kBenchSchemaVersion));
    doc.Set("suite", JsonValue::Str("s"));
    EXPECT_FALSE(ValidateBenchDocument(doc).ok());
  }

  // Negative latency.
  {
    JsonValue c = MakeCase("a", 1.0);
    std::string text = MakeDoc({std::move(c)}).Dump();
    size_t pos = text.find("\"p50\": 1");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 8, "\"p50\": -1");
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(ValidateBenchDocument(*parsed).ok());
  }

  // Latency object with an extra field.
  {
    std::string text = MakeDoc({MakeCase("a", 1.0)}).Dump();
    size_t pos = text.find("\"p50\": 1,");
    ASSERT_NE(pos, std::string::npos);
    text.insert(pos, "\"p49\": 1,\n      ");
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(ValidateBenchDocument(*parsed).ok());
  }

  // Non-numeric counter.
  {
    std::string text = MakeDoc({MakeCase("a", 1.0)}).Dump();
    size_t pos = text.find("\"gain_evaluations\": 1234");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 24, "\"gain_evaluations\": \"many\"");
    auto parsed = JsonValue::Parse(text);
    ASSERT_TRUE(parsed.ok());
    EXPECT_FALSE(ValidateBenchDocument(*parsed).ok());
  }
}

TEST(CompareBenchDocumentsTest, IdenticalDocumentsPass) {
  JsonValue doc = MakeDoc({MakeCase("a", 1.0)});
  auto report = CompareBenchDocuments(doc, doc, BenchCompareOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
  ASSERT_EQ(report->cases.size(), 1u);
  EXPECT_DOUBLE_EQ(report->cases[0].ratio, 1.0);
  EXPECT_FALSE(report->cases[0].regressed);
}

TEST(CompareBenchDocumentsTest, FlagsRegressionPastThreshold) {
  JsonValue baseline = MakeDoc({MakeCase("a", 10.0), MakeCase("b", 10.0)});
  JsonValue current = MakeDoc({MakeCase("a", 15.1), MakeCase("b", 11.0)});
  BenchCompareOptions options;
  options.p50_regression_threshold = 0.20;
  auto report = CompareBenchDocuments(baseline, current, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->cases.size(), 2u);
  EXPECT_TRUE(report->cases[0].regressed);   // +51%
  EXPECT_FALSE(report->cases[1].regressed);  // +10%
  EXPECT_EQ(report->problems.size(), 1u);
}

TEST(CompareBenchDocumentsTest, MinEffectFloorSuppressesMicroNoise) {
  // +100% but only 0.01 ms absolute — below the floor, not a regression.
  JsonValue baseline = MakeDoc({MakeCase("a", 0.01)});
  JsonValue current = MakeDoc({MakeCase("a", 0.02)});
  BenchCompareOptions options;
  options.min_effect_ms = 0.05;
  auto report = CompareBenchDocuments(baseline, current, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());
}

TEST(CompareBenchDocumentsTest, MissingBaselineCaseIsAProblem) {
  JsonValue baseline = MakeDoc({MakeCase("a", 1.0), MakeCase("gone", 1.0)});
  JsonValue current = MakeDoc({MakeCase("a", 1.0), MakeCase("fresh", 1.0)});
  auto report = CompareBenchDocuments(baseline, current,
                                      BenchCompareOptions());
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->new_cases.size(), 1u);
  EXPECT_EQ(report->new_cases[0], "fresh");
}

TEST(CompareBenchDocumentsTest, DeterminismIgnoresTimingsAndEnv) {
  JsonValue a = MakeDoc({MakeCase("a", 1.0)}, "sha_one");
  JsonValue b = MakeDoc({MakeCase("a", 99.0)}, "sha_two");
  BenchCompareOptions options;
  options.determinism = true;
  auto report = CompareBenchDocuments(a, b, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << (report->problems.empty()
                                    ? ""
                                    : report->problems.front());
}

TEST(CompareBenchDocumentsTest, DeterminismCatchesCounterDrift) {
  JsonValue a = MakeDoc({MakeCase("a", 1.0, /*cover=*/0.5)});
  JsonValue b = MakeDoc({MakeCase("a", 1.0, /*cover=*/0.5000001)});
  BenchCompareOptions options;
  options.determinism = true;
  auto report = CompareBenchDocuments(a, b, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());

  // With a tolerance above the drift it passes (the golden-file mode).
  options.tolerance = 1e-3;
  report = CompareBenchDocuments(a, b, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok());

  // With a tolerance below the drift it still fails.
  options.tolerance = 1e-9;
  report = CompareBenchDocuments(a, b, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST(CompareBenchDocumentsTest, DeterminismCatchesMissingCase) {
  JsonValue a = MakeDoc({MakeCase("a", 1.0), MakeCase("b", 1.0)});
  JsonValue b = MakeDoc({MakeCase("a", 1.0)});
  BenchCompareOptions options;
  options.determinism = true;
  auto report = CompareBenchDocuments(a, b, options);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());
}

TEST(CompareBenchDocumentsTest, RejectsInvalidInputs) {
  JsonValue good = MakeDoc({MakeCase("a", 1.0)});
  JsonValue bad = JsonValue::Object();
  EXPECT_FALSE(
      CompareBenchDocuments(bad, good, BenchCompareOptions()).ok());
  EXPECT_FALSE(
      CompareBenchDocuments(good, bad, BenchCompareOptions()).ok());
}

TEST(CompareCaseRatioTest, GatesSiblingCaseWithinOneDocument) {
  JsonValue doc = MakeDoc({MakeCase("solve/lazy/n10000", 10.0),
                           MakeCase("solve/budget_greedy/n10000", 10.4)});
  auto within = CompareCaseRatio(doc, "solve/budget_greedy/n10000",
                                 "solve/lazy/n10000", 1.05);
  ASSERT_TRUE(within.ok()) << within.status().ToString();
  EXPECT_TRUE(within->within_bound);
  EXPECT_NEAR(within->ratio, 1.04, 1e-12);

  JsonValue slow = MakeDoc({MakeCase("solve/lazy/n10000", 10.0),
                            MakeCase("solve/budget_greedy/n10000", 11.0)});
  auto beyond = CompareCaseRatio(slow, "solve/budget_greedy/n10000",
                                 "solve/lazy/n10000", 1.05);
  ASSERT_TRUE(beyond.ok());
  EXPECT_FALSE(beyond->within_bound);
  EXPECT_NEAR(beyond->ratio, 1.10, 1e-12);
}

TEST(CompareCaseRatioTest, RejectsMissingCasesAndBadBound) {
  JsonValue doc = MakeDoc({MakeCase("a", 1.0), MakeCase("b", 1.0)});
  EXPECT_TRUE(
      CompareCaseRatio(doc, "missing", "a", 1.05).status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      CompareCaseRatio(doc, "a", "missing", 1.05).status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      CompareCaseRatio(doc, "a", "b", 0.0).status().IsInvalidArgument());
}

}  // namespace
}  // namespace prefcover
