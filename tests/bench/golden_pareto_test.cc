// Golden-file lockdown of the BENCH_pareto JSON emission: a pinned
// frontier sweep on a small PE-shaped graph with deterministic
// quarter-step costs must serialize byte-for-byte to the checked-in
// document — the artifact intentionally carries no timings or
// environment capture, so the whole byte stream is comparable.
//
// To refresh after an intentional change, run bench_test with
// PREFCOVER_REGENERATE_GOLDEN=1, then commit the rewritten
// tests/golden/bench_pareto_pe_small.json.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/pareto_json.h"
#include "core/constrained_solver.h"
#include "synth/dataset_profiles.h"

#ifndef PREFCOVER_GOLDEN_DIR
#error "PREFCOVER_GOLDEN_DIR must be defined by the build"
#endif

namespace prefcover {
namespace {

constexpr uint64_t kSeed = 4242;
constexpr uint32_t kNodes = 500;

std::string GoldenPath() {
  return std::string(PREFCOVER_GOLDEN_DIR) + "/bench_pareto_pe_small.json";
}

std::string RenderPinnedArtifact() {
  auto graph = GenerateProfileGraphWithNodes(DatasetProfile::kPE, kNodes,
                                             kSeed);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();

  ParetoSweepOptions options;
  // Deterministic non-unit costs without an Rng: quarter steps cycling
  // through {0.25 .. 2.0} by node id.
  options.costs.resize(kNodes);
  for (uint32_t v = 0; v < kNodes; ++v) {
    options.costs[v] = 0.25 * static_cast<double>(1 + v % 8);
  }
  options.num_points = 10;
  options.max_items = 64;
  auto frontier = SolveParetoFrontier(*graph, options);
  EXPECT_TRUE(frontier.ok()) << frontier.status().ToString();

  ParetoArtifactMeta meta;
  meta.instance = "synthetic://PE/n500/seed4242";
  meta.variant = Variant::kIndependent;
  meta.num_nodes = kNodes;
  meta.points_requested = options.num_points;
  return ParetoFrontierToJson(*frontier, meta).Dump();
}

TEST(GoldenParetoTest, MatchesCheckedInDocumentByteForByte) {
  const std::string rendered = RenderPinnedArtifact();

  if (std::getenv("PREFCOVER_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    out << rendered;
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << GoldenPath()
      << " missing; run with PREFCOVER_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), rendered)
      << "BENCH_pareto emission diverged from " << GoldenPath()
      << "\nIf intentional, regenerate with PREFCOVER_REGENERATE_GOLDEN=1.";
}

TEST(GoldenParetoTest, EmissionIsRunToRunByteIdentical) {
  EXPECT_EQ(RenderPinnedArtifact(), RenderPinnedArtifact());
}

TEST(ParetoJsonTest, DocumentShape) {
  std::vector<ParetoPoint> frontier(1);
  frontier[0].budget = 2.0;
  frontier[0].total_cost = 1.5;
  frontier[0].cover = 0.25;
  frontier[0].items = {3, 1};
  ParetoArtifactMeta meta;
  meta.instance = "test.pcg";
  meta.variant = Variant::kNormalized;
  meta.num_nodes = 4;
  meta.points_requested = 1;
  JsonValue doc = ParetoFrontierToJson(frontier, meta);
  const std::string dump = doc.Dump();
  EXPECT_NE(dump.find("\"suite\": \"pareto_frontier\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"schema_version\": 1"), std::string::npos) << dump;
  EXPECT_NE(dump.find("\"variant\": \"normalized\""), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("\"num_items\": 2"), std::string::npos) << dump;
}

}  // namespace
}  // namespace prefcover
