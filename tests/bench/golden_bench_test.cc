// Golden-file lockdown of the BENCH_core.json emission: a fig4-style
// coverage-vs-k experiment on a small synthetic PE-shaped graph with a
// pinned seed must serialize to exactly the checked-in document — schema
// byte-for-byte, numbers within 1e-9, timing values free to vary.
//
// To refresh after an intentional change, run bench_test with
// PREFCOVER_REGENERATE_GOLDEN=1 in the environment, then commit the
// rewritten tests/golden/bench_core_pe_small.json.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_runner.h"
#include "bench/compare.h"
#include "bench/json.h"
#include "core/greedy_solver.h"
#include "synth/dataset_profiles.h"

#ifndef PREFCOVER_GOLDEN_DIR
#error "PREFCOVER_GOLDEN_DIR must be defined by the build"
#endif

namespace prefcover {
namespace {

constexpr uint64_t kSeed = 4242;
constexpr uint32_t kNodes = 2'000;

std::string GoldenPath() {
  return std::string(PREFCOVER_GOLDEN_DIR) + "/bench_core_pe_small.json";
}

// The pinned experiment: greedy coverage at three budgets on the small
// PE profile. Everything that lands in counters is bit-deterministic in
// (profile, n, seed).
JsonValue RunPinnedExperiment() {
  BenchConfig config;
  config.suite = "golden_pe_small";
  config.seed = kSeed;
  config.warmup = 0;
  config.repetitions = 1;
  BenchRunner runner(config);

  auto graph = GenerateProfileGraphWithNodes(DatasetProfile::kPE, kNodes,
                                             kSeed);
  EXPECT_TRUE(graph.ok()) << graph.status().ToString();

  for (size_t k : {10u, 50u, 200u}) {
    BenchCase bench_case;
    bench_case.name = "solve/lazy/k" + std::to_string(k);
    bench_case.profile = "PE";
    bench_case.variant = "independent";
    bench_case.solver = "lazy";
    bench_case.n = kNodes;
    bench_case.k = k;
    bench_case.run = [&graph, k](BenchRecorder* recorder) -> Status {
      auto sol = SolveGreedyLazy(*graph, k);
      if (!sol.ok()) return sol.status();
      recorder->Record("cover", sol->cover);
      recorder->Record("gain_evaluations",
                       static_cast<double>(sol->stats.gain_evaluations));
      recorder->Record("heap_pops",
                       static_cast<double>(sol->stats.heap_pops));
      // Order-sensitive checksum: any change to the selected sequence
      // shows up even when the cover value happens to match.
      double checksum = 0.0;
      for (size_t i = 0; i < sol->items.size(); ++i) {
        checksum += static_cast<double>(i + 1) *
                    static_cast<double>(sol->items[i]);
      }
      recorder->Record("selection_checksum", checksum);
      return Status::OK();
    };
    EXPECT_TRUE(runner.Run(bench_case).ok());
  }
  return runner.ToJson();
}

TEST(GoldenBenchTest, MatchesCheckedInDocument) {
  JsonValue doc = RunPinnedExperiment();
  ASSERT_TRUE(ValidateBenchDocument(doc).ok());

  if (std::getenv("PREFCOVER_REGENERATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath(), std::ios::binary);
    out << doc.Dump();
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    GTEST_SKIP() << "regenerated " << GoldenPath();
  }

  std::ifstream in(GoldenPath(), std::ios::binary);
  ASSERT_TRUE(in.good())
      << GoldenPath()
      << " missing; run with PREFCOVER_REGENERATE_GOLDEN=1 to create it";
  std::ostringstream buffer;
  buffer << in.rdbuf();
  auto golden = JsonValue::Parse(buffer.str());
  ASSERT_TRUE(golden.ok()) << golden.status().ToString();

  BenchCompareOptions options;
  options.determinism = true;
  options.tolerance = 1e-9;
  auto report = CompareBenchDocuments(*golden, doc, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  std::string diffs;
  for (const std::string& p : report->problems) diffs += "\n  " + p;
  EXPECT_TRUE(report->ok())
      << "emitted document diverged from " << GoldenPath() << ":" << diffs
      << "\nIf intentional, regenerate with PREFCOVER_REGENERATE_GOLDEN=1.";
}

TEST(GoldenBenchTest, ExperimentIsRunToRunDeterministic) {
  JsonValue first = RunPinnedExperiment();
  JsonValue second = RunPinnedExperiment();
  BenchCompareOptions options;
  options.determinism = true;  // tolerance 0: bit-identical counters
  auto report = CompareBenchDocuments(first, second, options);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->ok()) << (report->problems.empty()
                                    ? ""
                                    : report->problems.front());
}

}  // namespace
}  // namespace prefcover
