// End-to-end tests of the `bench_compare` binary: real subprocess runs
// against temp BENCH_core.json files, exercising the documented exit
// codes (0 pass, 1 regression/mismatch, 2 usage/IO/parse error).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_runner.h"
#include "bench/json.h"

#ifndef PREFCOVER_BENCH_COMPARE_PATH
#error "PREFCOVER_BENCH_COMPARE_PATH must be defined by the build"
#endif

namespace prefcover {
namespace {

std::string ToolPath() { return PREFCOVER_BENCH_COMPARE_PATH; }

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/bench_compare_cli_" + name;
}

int RunTool(const std::string& arguments) {
  int rc =
      std::system((ToolPath() + " " + arguments + " > /dev/null 2>&1").c_str());
  return rc == -1 ? -1 : WEXITSTATUS(rc);
}

// A minimal valid document produced by the real harness, with the wall
// timings replaced by pinned values scaled by `slowdown` — the measured
// micro-timings of the empty case bodies are pure noise and would make
// the regression direction random.
std::string WriteDoc(const std::string& name, double slowdown) {
  BenchConfig config;
  config.suite = "cli_test";
  config.seed = 1;
  config.warmup = 0;
  config.repetitions = 2;
  BenchRunner runner(config);
  for (const char* case_name : {"case/a", "case/b"}) {
    BenchCase bench_case;
    bench_case.name = case_name;
    bench_case.run = [](BenchRecorder* recorder) -> Status {
      recorder->Record("cover", 0.5);
      return Status::OK();
    };
    EXPECT_TRUE(runner.Run(bench_case).ok());
  }
  // Replace the wall_ms subtrees with pinned values so the document
  // stays schema-valid but the timings are deterministic.
  auto doc = JsonValue::Parse(runner.ToJson().Dump());
  EXPECT_TRUE(doc.ok());
  JsonValue patched = JsonValue::Object();
  for (const auto& [key, value] : doc->members()) {
    if (key != "cases") {
      patched.Set(key, value);
      continue;
    }
    JsonValue cases = JsonValue::Array();
    for (size_t i = 0; i < value.size(); ++i) {
      JsonValue c = JsonValue::Object();
      for (const auto& [ckey, cvalue] : value.at(i).members()) {
        if (ckey != "wall_ms") {
          c.Set(ckey, cvalue);
          continue;
        }
        JsonValue lat = JsonValue::Object();
        for (const auto& [lkey, lvalue] : cvalue.members()) {
          (void)lvalue;
          lat.Set(lkey, JsonValue::Number(10.0 * slowdown));
        }
        c.Set(ckey, std::move(lat));
      }
      cases.Append(std::move(c));
    }
    patched.Set(key, std::move(cases));
  }
  std::string text = patched.Dump();
  std::string path = TempPath(name);
  std::ofstream out(path, std::ios::binary);
  out << text;
  EXPECT_TRUE(out.good());
  return path;
}

TEST(BenchCompareCliTest, IdenticalInputsExitZero) {
  std::string path = WriteDoc("identical.json", 1.0);
  EXPECT_EQ(RunTool(path + " " + path), 0);
}

TEST(BenchCompareCliTest, InjectedSlowdownExitsNonzero) {
  std::string baseline = WriteDoc("base.json", 1.0);
  std::string slow = WriteDoc("slow.json", 1.5);
  EXPECT_EQ(RunTool(baseline + " " + slow), 1);
  // The reverse direction is a speedup, not a regression.
  EXPECT_EQ(RunTool(slow + " " + baseline), 0);
}

TEST(BenchCompareCliTest, DeterminismModeIgnoresTimings) {
  std::string baseline = WriteDoc("det_base.json", 1.0);
  std::string slow = WriteDoc("det_slow.json", 3.0);
  EXPECT_EQ(RunTool("--determinism " + baseline + " " + slow), 0);
}

TEST(BenchCompareCliTest, UsageAndIoErrorsExitTwo) {
  std::string path = WriteDoc("usage.json", 1.0);
  EXPECT_EQ(RunTool(""), 2);
  EXPECT_EQ(RunTool(path), 2);
  EXPECT_EQ(RunTool(path + " /nonexistent/missing.json"), 2);

  std::string garbage = TempPath("garbage.json");
  std::ofstream(garbage) << "{not json";
  EXPECT_EQ(RunTool(path + " " + garbage), 2);

  // Valid JSON that violates the schema is also an input error.
  std::string invalid = TempPath("invalid.json");
  std::ofstream(invalid) << "{\"schema_version\": 1}\n";
  EXPECT_EQ(RunTool(path + " " + invalid), 2);
}

}  // namespace
}  // namespace prefcover
