#include "graph/graph_generators.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "util/random.h"

namespace prefcover {
namespace {

TEST(PaperExampleGraphTest, MatchesFigureOne) {
  PreferenceGraph g = MakePaperExampleGraph();
  ASSERT_EQ(g.NumNodes(), 5u);
  EXPECT_EQ(g.NumEdges(), 6u);
  // Weights from Examples 1.1 / 3.2.
  EXPECT_DOUBLE_EQ(g.NodeWeight(0), 0.33);  // A
  EXPECT_DOUBLE_EQ(g.NodeWeight(1), 0.22);  // B
  EXPECT_DOUBLE_EQ(g.NodeWeight(2), 0.22);  // C
  EXPECT_DOUBLE_EQ(g.NodeWeight(3), 0.06);  // D
  EXPECT_DOUBLE_EQ(g.NodeWeight(4), 0.17);  // E
  EXPECT_NEAR(g.TotalNodeWeight(), 1.0, 1e-12);
  // Key edges.
  EXPECT_NEAR(g.EdgeWeight(0, 1), 2.0 / 3.0, 1e-12);  // A -> B
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 1), 1.0);          // C -> B
  EXPECT_DOUBLE_EQ(g.EdgeWeight(4, 3), 0.9);          // E -> D
  // No transitive E -> C edge (Example 1.1's point).
  EXPECT_FALSE(g.HasEdge(4, 2));
  // Admissible for the Normalized variant.
  EXPECT_TRUE(IsNormalizedAdmissible(g));
  EXPECT_TRUE(g.HasLabels());
  EXPECT_EQ(g.Label(3), "D");
}

class UniformGraphTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(UniformGraphTest, ShapeMatchesParams) {
  Rng rng(GetParam());
  UniformGraphParams params;
  params.num_nodes = 300;
  params.out_degree = 5;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 300u);
  EXPECT_EQ(g->NumEdges(), 300u * 5u);  // exact out-degree per node
  EXPECT_NEAR(g->TotalNodeWeight(), 1.0, 1e-9);
  // No self-loops, weights in range.
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    AdjacencyView out = g->OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_NE(out.nodes[i], v);
      EXPECT_GT(out.weights[i], 0.0);
      EXPECT_LE(out.weights[i], 1.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformGraphTest,
                         ::testing::Values(1, 2, 3, 42));

TEST(UniformGraphTest, DeterministicInSeed) {
  UniformGraphParams params;
  params.num_nodes = 50;
  Rng rng1(99), rng2(99);
  auto g1 = GenerateUniformGraph(params, &rng1);
  auto g2 = GenerateUniformGraph(params, &rng2);
  ASSERT_TRUE(g1.ok() && g2.ok());
  ASSERT_EQ(g1->NumEdges(), g2->NumEdges());
  for (NodeId v = 0; v < g1->NumNodes(); ++v) {
    EXPECT_DOUBLE_EQ(g1->NodeWeight(v), g2->NodeWeight(v));
    AdjacencyView a = g1->OutNeighbors(v), b = g2->OutNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.nodes[i], b.nodes[i]);
      EXPECT_DOUBLE_EQ(a.weights[i], b.weights[i]);
    }
  }
}

TEST(UniformGraphTest, NormalizedModeRespectsOutSums) {
  Rng rng(7);
  UniformGraphParams params;
  params.num_nodes = 200;
  params.out_degree = 8;
  params.normalized_out_weights = true;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsNormalizedAdmissible(*g));
}

TEST(UniformGraphTest, DegreeCappedAtNMinusOne) {
  Rng rng(8);
  UniformGraphParams params;
  params.num_nodes = 4;
  params.out_degree = 100;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  for (NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(g->OutDegree(v), 3u);
  }
}

TEST(UniformGraphTest, InvalidParamsRejected) {
  Rng rng(1);
  UniformGraphParams params;
  params.num_nodes = 0;
  EXPECT_FALSE(GenerateUniformGraph(params, &rng).ok());
  params.num_nodes = 10;
  params.min_edge_weight = 0.0;
  EXPECT_FALSE(GenerateUniformGraph(params, &rng).ok());
  params.min_edge_weight = 0.9;
  params.max_edge_weight = 0.1;
  EXPECT_FALSE(GenerateUniformGraph(params, &rng).ok());
}

TEST(UniformGraphTest, ZipfSkewConcentratesWeight) {
  Rng rng(11);
  UniformGraphParams params;
  params.num_nodes = 1000;
  params.popularity_skew = 1.5;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g);
  EXPECT_GT(stats.node_weight_gini, 0.5);  // strongly skewed

  Rng rng2(11);
  params.popularity_skew = 0.0;
  auto uniform = GenerateUniformGraph(params, &rng2);
  ASSERT_TRUE(uniform.ok());
  GraphStats uniform_stats = ComputeGraphStats(*uniform);
  EXPECT_LT(uniform_stats.node_weight_gini, 0.01);  // near-equal weights
}

TEST(ClusteredGraphTest, EdgesMostlyWithinClusters) {
  Rng rng(13);
  ClusteredGraphParams params;
  params.num_nodes = 500;
  params.num_clusters = 25;
  params.intra_cluster_degree = 5.0;
  params.inter_cluster_degree = 0.3;
  auto g = GenerateClusteredGraph(params, &rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_EQ(g->NumNodes(), 500u);
  EXPECT_GT(g->NumEdges(), 500u);  // roughly 5.3 * 500 expected
  // Cluster assignment is round-robin (v % 25); count intra edges.
  size_t intra = 0;
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    AdjacencyView out = g->OutNeighbors(v);
    for (NodeId u : out.nodes) {
      if (u % 25 == v % 25) ++intra;
    }
  }
  EXPECT_GT(static_cast<double>(intra),
            0.8 * static_cast<double>(g->NumEdges()));
}

TEST(ClusteredGraphTest, NormalizedModeAdmissible) {
  Rng rng(17);
  ClusteredGraphParams params;
  params.num_nodes = 300;
  params.num_clusters = 30;
  params.normalized_out_weights = true;
  auto g = GenerateClusteredGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(IsNormalizedAdmissible(*g));
}

TEST(ClusteredGraphTest, InvalidParamsRejected) {
  Rng rng(1);
  ClusteredGraphParams params;
  params.num_nodes = 10;
  params.num_clusters = 20;
  EXPECT_FALSE(GenerateClusteredGraph(params, &rng).ok());
  params.num_clusters = 0;
  EXPECT_FALSE(GenerateClusteredGraph(params, &rng).ok());
}

TEST(GraphStatsTest, PaperExampleStats) {
  PreferenceGraph g = MakePaperExampleGraph();
  GraphStats stats = ComputeGraphStats(g);
  EXPECT_EQ(stats.num_nodes, 5u);
  EXPECT_EQ(stats.num_edges, 6u);
  EXPECT_NEAR(stats.total_node_weight, 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(stats.mean_out_degree, 6.0 / 5.0);
  EXPECT_EQ(stats.max_out_degree, 2u);  // A has 2 outgoing edges
  EXPECT_EQ(stats.max_in_degree, 3u);   // C: in-edges from A, B and D
  EXPECT_EQ(stats.isolated_nodes, 0u);
  EXPECT_DOUBLE_EQ(stats.max_edge_weight, 1.0);
  EXPECT_DOUBLE_EQ(stats.min_edge_weight, 0.2);
  EXPECT_LE(stats.max_out_weight_sum, 1.0 + 1e-12);
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(GraphStatsTest, IsolatedNodesCounted) {
  GraphBuilder b;
  b.AddNode(0.5);
  b.AddNode(0.25);
  b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.5).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g);
  EXPECT_EQ(stats.isolated_nodes, 1u);  // node 2
}

TEST(GraphStatsTest, EmptyGraph) {
  GraphBuilder b;
  GraphValidationOptions options;
  options.require_normalized_node_weights = false;
  auto g = b.Finalize(options);
  ASSERT_TRUE(g.ok());
  GraphStats stats = ComputeGraphStats(*g);
  EXPECT_EQ(stats.num_nodes, 0u);
  EXPECT_EQ(stats.num_edges, 0u);
}

}  // namespace
}  // namespace prefcover
