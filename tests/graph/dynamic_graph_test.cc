#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

#include "core/greedy_solver.h"

namespace prefcover {
namespace {

// Structural equality of two snapshots: nodes, labels, weights, adjacency.
void ExpectSameSnapshot(const PreferenceGraph& a, const PreferenceGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_EQ(a.Label(v), b.Label(v));
    EXPECT_DOUBLE_EQ(a.NodeWeight(v), b.NodeWeight(v));
    AdjacencyView oa = a.OutNeighbors(v), ob = b.OutNeighbors(v);
    ASSERT_EQ(oa.size(), ob.size());
    for (size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa.nodes[i], ob.nodes[i]);
      EXPECT_DOUBLE_EQ(oa.weights[i], ob.weights[i]);
    }
  }
}

TEST(DynamicGraphTest, AddItemsAndSnapshot) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(3.0, "A");
  StableId b = g.AddItem(1.0, "B");
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.5).ok());
  EXPECT_EQ(g.NumItems(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);

  std::vector<StableId> ids;
  auto snap = g.Snapshot(&ids);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->NumNodes(), 2u);
  EXPECT_EQ(ids, (std::vector<StableId>{a, b}));
  // Raw weights 3:1 normalize to 0.75 / 0.25.
  EXPECT_DOUBLE_EQ(snap->NodeWeight(0), 0.75);
  EXPECT_DOUBLE_EQ(snap->NodeWeight(1), 0.25);
  EXPECT_DOUBLE_EQ(snap->EdgeWeight(0, 1), 0.5);
  EXPECT_EQ(snap->Label(0), "A");
}

TEST(DynamicGraphTest, UpsertOverwritesProbability) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.3).ok());
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.8).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, b), 0.8);
}

TEST(DynamicGraphTest, RemoveEdge) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.3).ok());
  ASSERT_TRUE(g.RemoveEdge(a, b).ok());
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.RemoveEdge(a, b).IsNotFound());
}

TEST(DynamicGraphTest, RemoveItemDropsIncidentEdges) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  StableId c = g.AddItem(1.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.UpsertEdge(b, c, 0.5).ok());
  ASSERT_TRUE(g.UpsertEdge(c, b, 0.5).ok());
  ASSERT_TRUE(g.RemoveItem(b).ok());
  EXPECT_EQ(g.NumItems(), 2u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.HasItem(b));
  // Mutations on a removed item fail.
  EXPECT_TRUE(g.SetItemWeight(b, 1.0).IsFailedPrecondition());
  EXPECT_TRUE(g.UpsertEdge(a, b, 0.5).IsFailedPrecondition());
  EXPECT_TRUE(g.RemoveItem(b).IsFailedPrecondition());
}

TEST(DynamicGraphTest, SnapshotSkipsRemovedWithDenseIds) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0, "A");
  StableId b = g.AddItem(1.0, "B");
  StableId c = g.AddItem(2.0, "C");
  ASSERT_TRUE(g.UpsertEdge(a, c, 0.4).ok());
  ASSERT_TRUE(g.RemoveItem(b).ok());

  std::vector<StableId> ids;
  auto snap = g.Snapshot(&ids);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->NumNodes(), 2u);
  EXPECT_EQ(ids, (std::vector<StableId>{a, c}));
  EXPECT_EQ(snap->Label(0), "A");
  EXPECT_EQ(snap->Label(1), "C");
  EXPECT_DOUBLE_EQ(snap->EdgeWeight(0, 1), 0.4);
}

TEST(DynamicGraphTest, StableIdsNeverReused) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  ASSERT_TRUE(g.RemoveItem(a).ok());
  StableId b = g.AddItem(1.0);
  EXPECT_NE(a, b);
}

TEST(DynamicGraphTest, ValidationErrors) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  EXPECT_TRUE(g.UpsertEdge(a, a, 0.5).IsInvalidArgument());  // self edge
  EXPECT_TRUE(g.UpsertEdge(a, 99, 0.5).IsInvalidArgument());
  StableId b = g.AddItem(1.0);
  EXPECT_TRUE(g.UpsertEdge(a, b, 0.0).IsInvalidArgument());
  EXPECT_TRUE(g.UpsertEdge(a, b, 1.5).IsInvalidArgument());
  EXPECT_TRUE(g.SetItemWeight(a, -1.0).IsInvalidArgument());
}

TEST(DynamicGraphTest, SnapshotFailsWithZeroTotalWeight) {
  DynamicPreferenceGraph g;
  g.AddItem(0.0);
  EXPECT_TRUE(g.Snapshot().status().IsFailedPrecondition());
}

TEST(DynamicGraphTest, VersionAdvancesOnEveryMutation) {
  DynamicPreferenceGraph g;
  uint64_t v0 = g.version();
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  EXPECT_GT(g.version(), v0);
  uint64_t v1 = g.version();
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.5).ok());
  EXPECT_GT(g.version(), v1);
  uint64_t v2 = g.version();
  ASSERT_TRUE(g.SetItemWeight(a, 2.0).ok());
  EXPECT_GT(g.version(), v2);
  uint64_t v3 = g.version();
  // Failed mutations do not advance the version.
  EXPECT_FALSE(g.UpsertEdge(a, 99, 0.5).ok());
  EXPECT_EQ(g.version(), v3);
}

TEST(DynamicGraphTest, EdgeProbabilityQueries) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, b), 0.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.7).ok());
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, b), 0.7);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(b, a), 0.0);  // directed
  EXPECT_DOUBLE_EQ(g.ItemWeight(a), 1.0);
}

TEST(DynamicGraphTest, LargeChurnKeepsCountsConsistent) {
  DynamicPreferenceGraph g;
  std::vector<StableId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(g.AddItem(1.0 + i));
  }
  size_t edges = 0;
  for (int i = 0; i < 200; ++i) {
    for (int d = 1; d <= 3; ++d) {
      StableId to = ids[static_cast<size_t>((i + d * 37) % 200)];
      if (to == ids[static_cast<size_t>(i)]) continue;
      ASSERT_TRUE(g.UpsertEdge(ids[static_cast<size_t>(i)], to, 0.4).ok());
      ++edges;
    }
  }
  EXPECT_EQ(g.NumEdges(), edges);
  // Remove every third item.
  for (int i = 0; i < 200; i += 3) {
    ASSERT_TRUE(g.RemoveItem(ids[static_cast<size_t>(i)]).ok());
  }
  auto snap = g.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->NumNodes(), g.NumItems());
  EXPECT_EQ(snap->NumEdges(), g.NumEdges());
  EXPECT_NEAR(snap->TotalNodeWeight(), 1.0, 1e-9);
}

// A mutated graph's snapshot is indistinguishable from a graph built
// fresh with only the surviving structure — so a re-solve after removals
// selects exactly what a fresh solve on the mutated catalog selects.
TEST(DynamicGraphTest, RemovalThenResolveMatchesFreshBuild) {
  constexpr uint32_t kItems = 60;

  // Mutated path: build everything, then remove items 0,5,10,... plus a
  // handful of edges.
  DynamicPreferenceGraph mutated;
  std::vector<StableId> ids;
  std::vector<std::tuple<uint32_t, uint32_t, double>> edges;
  for (uint32_t i = 0; i < kItems; ++i) {
    ids.push_back(mutated.AddItem(0.5 + static_cast<double>(i % 7),
                                  "item" + std::to_string(i)));
  }
  for (uint32_t i = 0; i < kItems; ++i) {
    for (uint32_t d = 1; d <= 3; ++d) {
      uint32_t j = (i + d * 11) % kItems;
      if (j == i) continue;
      // Per-node out-weights sum to 0.9, valid under both variants.
      double p = 0.1 + 0.1 * static_cast<double>(d);
      ASSERT_TRUE(mutated.UpsertEdge(ids[i], ids[j], p).ok());
      edges.emplace_back(i, j, p);
    }
  }
  auto removed = [](uint32_t i) { return i % 5 == 0; };
  for (uint32_t i = 0; i < kItems; ++i) {
    if (removed(i)) {
      ASSERT_TRUE(mutated.RemoveItem(ids[i]).ok());
    }
  }
  auto edge_dropped = [&](uint32_t i, uint32_t j) {
    return !removed(i) && !removed(j) && (i + j) % 9 == 0;
  };
  for (const auto& [i, j, p] : edges) {
    if (edge_dropped(i, j)) {
      ASSERT_TRUE(mutated.RemoveEdge(ids[i], ids[j]).ok());
    }
  }

  // Fresh path: only the survivors, same insertion order.
  DynamicPreferenceGraph fresh;
  std::vector<StableId> fresh_ids(kItems, 0);
  for (uint32_t i = 0; i < kItems; ++i) {
    if (removed(i)) continue;
    fresh_ids[i] = fresh.AddItem(0.5 + static_cast<double>(i % 7),
                                 "item" + std::to_string(i));
  }
  for (const auto& [i, j, p] : edges) {
    if (removed(i) || removed(j) || edge_dropped(i, j)) continue;
    ASSERT_TRUE(fresh.UpsertEdge(fresh_ids[i], fresh_ids[j], p).ok());
  }

  auto mutated_snap = mutated.Snapshot();
  auto fresh_snap = fresh.Snapshot();
  ASSERT_TRUE(mutated_snap.ok() && fresh_snap.ok());
  ExpectSameSnapshot(*mutated_snap, *fresh_snap);

  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    GreedyOptions options;
    options.variant = variant;
    auto a = SolveGreedyLazy(*mutated_snap, 12, options);
    auto b = SolveGreedyLazy(*fresh_snap, 12, options);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->items, b->items) << VariantName(variant);
    EXPECT_DOUBLE_EQ(a->cover, b->cover);
  }
}

// Zero-weight items are legal: they normalize to weight 0, stay solvable
// (never worth retaining on their own, but still able to cover others as
// edge targets contribute nothing — and as edge SOURCES their outgoing
// coverage of real demand still counts).
TEST(DynamicGraphTest, ZeroWeightItemsRenormalizeAndSolve) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(3.0, "A");
  StableId z = g.AddItem(0.0, "Z");  // zero demand
  StableId b = g.AddItem(1.0, "B");
  // Z can serve A's demand at 0.9; B is an alternative for Z's demand,
  // but Z has no demand to cover.
  ASSERT_TRUE(g.UpsertEdge(a, z, 0.9).ok());
  ASSERT_TRUE(g.UpsertEdge(z, b, 1.0).ok());

  std::vector<StableId> ids;
  auto snap = g.Snapshot(&ids);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ASSERT_EQ(snap->NumNodes(), 3u);
  EXPECT_DOUBLE_EQ(snap->NodeWeight(0), 0.75);
  EXPECT_DOUBLE_EQ(snap->NodeWeight(1), 0.0);
  EXPECT_DOUBLE_EQ(snap->NodeWeight(2), 0.25);

  auto sol = SolveGreedyLazy(*snap, 1);
  ASSERT_TRUE(sol.ok());
  // Best single item: A retains its own 0.75 of demand, beating Z (covers
  // A's demand at 0.9 -> 0.675) and B (0.25).
  EXPECT_EQ(sol->items, std::vector<NodeId>{0});

  // Drop every positive-weight item: normalization has nothing to work
  // with and the snapshot must fail rather than divide by zero.
  ASSERT_TRUE(g.RemoveItem(a).ok());
  ASSERT_TRUE(g.RemoveItem(b).ok());
  EXPECT_FALSE(g.Snapshot().ok());

  // Weight updates re-enter the normalization: give Z demand and the
  // snapshot recovers.
  ASSERT_TRUE(g.SetItemWeight(z, 2.0).ok());
  auto revived = g.Snapshot();
  ASSERT_TRUE(revived.ok());
  EXPECT_DOUBLE_EQ(revived->NodeWeight(0), 1.0);
  EXPECT_EQ(revived->NumEdges(), 0u);  // both incident edges died with A, B
}

// Edges whose endpoint is removed must not dangle: they disappear from
// counts, snapshots, and probability queries, and do not resurrect when
// new items reuse the catalog.
TEST(DynamicGraphTest, RemovalLeavesNoDanglingEdges) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0, "A");
  StableId b = g.AddItem(1.0, "B");
  StableId c = g.AddItem(1.0, "C");
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.UpsertEdge(b, a, 0.5).ok());
  ASSERT_TRUE(g.UpsertEdge(c, b, 0.4).ok());
  ASSERT_TRUE(g.UpsertEdge(b, c, 0.3).ok());
  ASSERT_EQ(g.NumEdges(), 4u);

  ASSERT_TRUE(g.RemoveItem(b).ok());
  EXPECT_EQ(g.NumEdges(), 0u);  // every edge touched B
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, b), 0.0);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(c, b), 0.0);

  // Mutating edges of a dead item is an error, in both directions.
  EXPECT_FALSE(g.UpsertEdge(a, b, 0.5).ok());
  EXPECT_FALSE(g.UpsertEdge(b, c, 0.5).ok());
  EXPECT_FALSE(g.RemoveEdge(a, b).ok());

  // A new item does not inherit B's dead edges.
  StableId d = g.AddItem(1.0, "D");
  EXPECT_NE(d, b);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, d), 0.0);
  auto snap = g.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->NumNodes(), 3u);
  EXPECT_EQ(snap->NumEdges(), 0u);
}

}  // namespace
}  // namespace prefcover
