#include "graph/dynamic_graph.h"

#include <gtest/gtest.h>

namespace prefcover {
namespace {

TEST(DynamicGraphTest, AddItemsAndSnapshot) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(3.0, "A");
  StableId b = g.AddItem(1.0, "B");
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.5).ok());
  EXPECT_EQ(g.NumItems(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);

  std::vector<StableId> ids;
  auto snap = g.Snapshot(&ids);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_EQ(snap->NumNodes(), 2u);
  EXPECT_EQ(ids, (std::vector<StableId>{a, b}));
  // Raw weights 3:1 normalize to 0.75 / 0.25.
  EXPECT_DOUBLE_EQ(snap->NodeWeight(0), 0.75);
  EXPECT_DOUBLE_EQ(snap->NodeWeight(1), 0.25);
  EXPECT_DOUBLE_EQ(snap->EdgeWeight(0, 1), 0.5);
  EXPECT_EQ(snap->Label(0), "A");
}

TEST(DynamicGraphTest, UpsertOverwritesProbability) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.3).ok());
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.8).ok());
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, b), 0.8);
}

TEST(DynamicGraphTest, RemoveEdge) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.3).ok());
  ASSERT_TRUE(g.RemoveEdge(a, b).ok());
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_TRUE(g.RemoveEdge(a, b).IsNotFound());
}

TEST(DynamicGraphTest, RemoveItemDropsIncidentEdges) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  StableId c = g.AddItem(1.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.5).ok());
  ASSERT_TRUE(g.UpsertEdge(b, c, 0.5).ok());
  ASSERT_TRUE(g.UpsertEdge(c, b, 0.5).ok());
  ASSERT_TRUE(g.RemoveItem(b).ok());
  EXPECT_EQ(g.NumItems(), 2u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_FALSE(g.HasItem(b));
  // Mutations on a removed item fail.
  EXPECT_TRUE(g.SetItemWeight(b, 1.0).IsFailedPrecondition());
  EXPECT_TRUE(g.UpsertEdge(a, b, 0.5).IsFailedPrecondition());
  EXPECT_TRUE(g.RemoveItem(b).IsFailedPrecondition());
}

TEST(DynamicGraphTest, SnapshotSkipsRemovedWithDenseIds) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0, "A");
  StableId b = g.AddItem(1.0, "B");
  StableId c = g.AddItem(2.0, "C");
  ASSERT_TRUE(g.UpsertEdge(a, c, 0.4).ok());
  ASSERT_TRUE(g.RemoveItem(b).ok());

  std::vector<StableId> ids;
  auto snap = g.Snapshot(&ids);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->NumNodes(), 2u);
  EXPECT_EQ(ids, (std::vector<StableId>{a, c}));
  EXPECT_EQ(snap->Label(0), "A");
  EXPECT_EQ(snap->Label(1), "C");
  EXPECT_DOUBLE_EQ(snap->EdgeWeight(0, 1), 0.4);
}

TEST(DynamicGraphTest, StableIdsNeverReused) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  ASSERT_TRUE(g.RemoveItem(a).ok());
  StableId b = g.AddItem(1.0);
  EXPECT_NE(a, b);
}

TEST(DynamicGraphTest, ValidationErrors) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  EXPECT_TRUE(g.UpsertEdge(a, a, 0.5).IsInvalidArgument());  // self edge
  EXPECT_TRUE(g.UpsertEdge(a, 99, 0.5).IsInvalidArgument());
  StableId b = g.AddItem(1.0);
  EXPECT_TRUE(g.UpsertEdge(a, b, 0.0).IsInvalidArgument());
  EXPECT_TRUE(g.UpsertEdge(a, b, 1.5).IsInvalidArgument());
  EXPECT_TRUE(g.SetItemWeight(a, -1.0).IsInvalidArgument());
}

TEST(DynamicGraphTest, SnapshotFailsWithZeroTotalWeight) {
  DynamicPreferenceGraph g;
  g.AddItem(0.0);
  EXPECT_TRUE(g.Snapshot().status().IsFailedPrecondition());
}

TEST(DynamicGraphTest, VersionAdvancesOnEveryMutation) {
  DynamicPreferenceGraph g;
  uint64_t v0 = g.version();
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  EXPECT_GT(g.version(), v0);
  uint64_t v1 = g.version();
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.5).ok());
  EXPECT_GT(g.version(), v1);
  uint64_t v2 = g.version();
  ASSERT_TRUE(g.SetItemWeight(a, 2.0).ok());
  EXPECT_GT(g.version(), v2);
  uint64_t v3 = g.version();
  // Failed mutations do not advance the version.
  EXPECT_FALSE(g.UpsertEdge(a, 99, 0.5).ok());
  EXPECT_EQ(g.version(), v3);
}

TEST(DynamicGraphTest, EdgeProbabilityQueries) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(1.0);
  StableId b = g.AddItem(1.0);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, b), 0.0);
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.7).ok());
  EXPECT_DOUBLE_EQ(g.EdgeProbability(a, b), 0.7);
  EXPECT_DOUBLE_EQ(g.EdgeProbability(b, a), 0.0);  // directed
  EXPECT_DOUBLE_EQ(g.ItemWeight(a), 1.0);
}

TEST(DynamicGraphTest, LargeChurnKeepsCountsConsistent) {
  DynamicPreferenceGraph g;
  std::vector<StableId> ids;
  for (int i = 0; i < 200; ++i) {
    ids.push_back(g.AddItem(1.0 + i));
  }
  size_t edges = 0;
  for (int i = 0; i < 200; ++i) {
    for (int d = 1; d <= 3; ++d) {
      StableId to = ids[static_cast<size_t>((i + d * 37) % 200)];
      if (to == ids[static_cast<size_t>(i)]) continue;
      ASSERT_TRUE(g.UpsertEdge(ids[static_cast<size_t>(i)], to, 0.4).ok());
      ++edges;
    }
  }
  EXPECT_EQ(g.NumEdges(), edges);
  // Remove every third item.
  for (int i = 0; i < 200; i += 3) {
    ASSERT_TRUE(g.RemoveItem(ids[static_cast<size_t>(i)]).ok());
  }
  auto snap = g.Snapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->NumNodes(), g.NumItems());
  EXPECT_EQ(snap->NumEdges(), g.NumEdges());
  EXPECT_NEAR(snap->TotalNodeWeight(), 1.0, 1e-9);
}

}  // namespace
}  // namespace prefcover
