#include "graph/graph_transforms.h"

#include "core/cover_function.h"
#include "core/greedy_solver.h"

#include <gtest/gtest.h>

#include "graph/graph_generators.h"
#include "graph/graph_stats.h"
#include "util/random.h"

namespace prefcover {
namespace {

TEST(ReverseGraphTest, ReversesEdges) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto r = ReverseGraph(g);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->NumNodes(), g.NumNodes());
  EXPECT_EQ(r->NumEdges(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    AdjacencyView out = g.OutNeighbors(v);
    for (size_t i = 0; i < out.size(); ++i) {
      EXPECT_TRUE(r->HasEdge(out.nodes[i], v));
      EXPECT_DOUBLE_EQ(r->EdgeWeight(out.nodes[i], v), out.weights[i]);
    }
    EXPECT_DOUBLE_EQ(r->NodeWeight(v), g.NodeWeight(v));
  }
}

TEST(ReverseGraphTest, DoubleReverseIsIdentity) {
  Rng rng(3);
  UniformGraphParams params;
  params.num_nodes = 100;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto rr = ReverseGraph(ReverseGraph(*g).value());
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(rr->NumEdges(), g->NumEdges());
  for (NodeId v = 0; v < g->NumNodes(); ++v) {
    AdjacencyView a = g->OutNeighbors(v);
    AdjacencyView b = rr->OutNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.nodes[i], b.nodes[i]);
      EXPECT_DOUBLE_EQ(a.weights[i], b.weights[i]);
    }
  }
}

TEST(InducedSubgraphTest, KeepsInternalEdgesOnly) {
  PreferenceGraph g = MakePaperExampleGraph();  // A,B,C,D,E = 0..4
  auto sub = InducedSubgraph(g, {1, 2}, /*renormalize=*/false);
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->NumNodes(), 2u);
  // B<->C survive; edges to/from A, D, E are dropped.
  EXPECT_EQ(sub->NumEdges(), 2u);
  EXPECT_TRUE(sub->HasEdge(0, 1));
  EXPECT_TRUE(sub->HasEdge(1, 0));
  EXPECT_DOUBLE_EQ(sub->NodeWeight(0), 0.22);
  EXPECT_EQ(sub->Label(0), "B");
  EXPECT_EQ(sub->Label(1), "C");
}

TEST(InducedSubgraphTest, RenormalizesWeights) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sub = InducedSubgraph(g, {0, 1}, /*renormalize=*/true);  // A, B
  ASSERT_TRUE(sub.ok());
  EXPECT_NEAR(sub->TotalNodeWeight(), 1.0, 1e-12);
  EXPECT_NEAR(sub->NodeWeight(0), 0.33 / 0.55, 1e-12);
}

TEST(InducedSubgraphTest, RejectsDuplicatesAndOutOfRange) {
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(InducedSubgraph(g, {0, 0}).status().IsInvalidArgument());
  EXPECT_TRUE(InducedSubgraph(g, {99}).status().IsInvalidArgument());
}

TEST(InducedSubgraphTest, OrderDefinesNewIds) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sub = InducedSubgraph(g, {4, 3}, /*renormalize=*/false);  // E, D
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->Label(0), "E");
  EXPECT_EQ(sub->Label(1), "D");
  EXPECT_TRUE(sub->HasEdge(0, 1));  // E -> D, weight 0.9
  EXPECT_DOUBLE_EQ(sub->EdgeWeight(0, 1), 0.9);
}

TEST(TopWeightSubgraphTest, KeepsHeaviestNodes) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sub = TopWeightSubgraph(g, 2, /*renormalize=*/false);
  ASSERT_TRUE(sub.ok());
  ASSERT_EQ(sub->NumNodes(), 2u);
  // A (0.33) is heaviest; B and C tie at 0.22, stable sort keeps B.
  EXPECT_EQ(sub->Label(0), "A");
  EXPECT_EQ(sub->Label(1), "B");
}

TEST(TopWeightSubgraphTest, FullSizeIsWholeGraph) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sub = TopWeightSubgraph(g, g.NumNodes());
  ASSERT_TRUE(sub.ok());
  EXPECT_EQ(sub->NumNodes(), g.NumNodes());
  EXPECT_EQ(sub->NumEdges(), g.NumEdges());
}

TEST(TopWeightSubgraphTest, TooLargeRejected) {
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(TopWeightSubgraph(g, 10).status().IsInvalidArgument());
}

TEST(NormalizeNodeWeightsTest, ScalesToOne) {
  GraphBuilder b;
  b.AddNode(0.2);
  b.AddNode(0.2);
  GraphValidationOptions permissive;
  permissive.require_normalized_node_weights = false;
  auto g = b.Finalize(permissive);
  ASSERT_TRUE(g.ok());
  auto norm = NormalizeNodeWeights(*g);
  ASSERT_TRUE(norm.ok());
  EXPECT_NEAR(norm->TotalNodeWeight(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(norm->NodeWeight(0), 0.5);
}

TEST(CompleteWithSelfLoopsTest, AddsResidualLoops) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto completed = CompleteWithSelfLoops(g);
  ASSERT_TRUE(completed.ok());
  // Every node's out-sum must now be exactly 1.
  for (NodeId v = 0; v < completed->NumNodes(); ++v) {
    EXPECT_NEAR(completed->OutWeightSum(v), 1.0, 1e-9) << "node " << v;
  }
  // A had out-sum 2/3 + 0.2; its loop weight is the residual.
  EXPECT_NEAR(completed->EdgeWeight(0, 0), 1.0 - (2.0 / 3.0 + 0.2), 1e-12);
  // C already sums to 1 (single edge of weight 1): no loop added.
  EXPECT_FALSE(completed->HasEdge(2, 2));
}

TEST(CompleteWithSelfLoopsTest, RejectsOverweightNodes) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.25);
  NodeId d = b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(a, c, 0.8).ok());
  ASSERT_TRUE(b.AddEdge(a, d, 0.8).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(CompleteWithSelfLoops(*g).status().IsFailedPrecondition());
}

TEST(ClampOutWeightsTest, ScalesOverweightNodesOnly) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.25);
  NodeId d = b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(a, c, 0.8).ok());
  ASSERT_TRUE(b.AddEdge(a, d, 0.8).ok());  // sum 1.6 -> scaled to 1.0
  ASSERT_TRUE(b.AddEdge(c, d, 0.5).ok());  // already fine
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  auto clamped = ClampOutWeights(*g);
  ASSERT_TRUE(clamped.ok());
  EXPECT_NEAR(clamped->OutWeightSum(a), 1.0, 1e-12);
  EXPECT_NEAR(clamped->EdgeWeight(a, c), 0.5, 1e-12);
  EXPECT_DOUBLE_EQ(clamped->EdgeWeight(c, d), 0.5);
  EXPECT_TRUE(IsNormalizedAdmissible(*clamped));
}

TEST(KeepStrongestEdgesTest, PrunesToRequestedDegree) {
  PreferenceGraph g = MakePaperExampleGraph();  // A has 2 out edges
  auto pruned = KeepStrongestEdges(g, 1);
  ASSERT_TRUE(pruned.ok());
  for (NodeId v = 0; v < pruned->NumNodes(); ++v) {
    EXPECT_LE(pruned->OutDegree(v), 1u);
  }
  // A keeps its strongest edge (A -> B, 2/3) and drops A -> C (0.2).
  EXPECT_TRUE(pruned->HasEdge(0, 1));
  EXPECT_FALSE(pruned->HasEdge(0, 2));
  // Node weights untouched.
  EXPECT_DOUBLE_EQ(pruned->NodeWeight(0), 0.33);
}

TEST(KeepStrongestEdgesTest, NoOpWhenDegreeAlreadyBounded) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto pruned = KeepStrongestEdges(g, 10);
  ASSERT_TRUE(pruned.ok());
  EXPECT_EQ(pruned->NumEdges(), g.NumEdges());
}

TEST(KeepStrongestEdgesTest, TiesBreakToSmallerTarget) {
  GraphBuilder b;
  NodeId v = b.AddNode(0.4);
  NodeId x = b.AddNode(0.3);
  NodeId y = b.AddNode(0.3);
  ASSERT_TRUE(b.AddEdge(v, y, 0.5).ok());
  ASSERT_TRUE(b.AddEdge(v, x, 0.5).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  auto pruned = KeepStrongestEdges(*g, 1);
  ASSERT_TRUE(pruned.ok());
  EXPECT_TRUE(pruned->HasEdge(v, x));
  EXPECT_FALSE(pruned->HasEdge(v, y));
}

TEST(KeepStrongestEdgesTest, ZeroDegreeRejected) {
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(KeepStrongestEdges(g, 0).status().IsInvalidArgument());
}

TEST(KeepStrongestEdgesTest, CoverLossSmallOnConstructedGraphs) {
  // Pruning to the top-8 edges of a dense random graph barely moves the
  // greedy cover — the operational claim the transform exists for.
  Rng rng(21);
  UniformGraphParams params;
  params.num_nodes = 300;
  params.out_degree = 20;
  params.min_edge_weight = 0.01;
  params.max_edge_weight = 0.9;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto pruned = KeepStrongestEdges(*g, 8);
  ASSERT_TRUE(pruned.ok());
  EXPECT_LT(pruned->NumEdges(), g->NumEdges());
  // Covers of the same greedy budget, each solved on its own graph but
  // both evaluated on the FULL graph.
  auto full_sol = SolveGreedyLazy(*g, 30);
  auto pruned_sol = SolveGreedyLazy(*pruned, 30);
  ASSERT_TRUE(full_sol.ok() && pruned_sol.ok());
  auto pruned_on_full =
      EvaluateCover(*g, pruned_sol->items, Variant::kIndependent);
  ASSERT_TRUE(pruned_on_full.ok());
  EXPECT_GT(*pruned_on_full, 0.9 * full_sol->cover);
}

}  // namespace
}  // namespace prefcover
