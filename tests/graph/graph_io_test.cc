#include "graph/graph_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

// Structural equality check between two graphs.
void ExpectGraphsEqual(const PreferenceGraph& a, const PreferenceGraph& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.HasLabels(), b.HasLabels());
  for (NodeId v = 0; v < a.NumNodes(); ++v) {
    EXPECT_DOUBLE_EQ(a.NodeWeight(v), b.NodeWeight(v)) << "node " << v;
    if (a.HasLabels()) {
      EXPECT_EQ(a.Label(v), b.Label(v));
    }
    AdjacencyView oa = a.OutNeighbors(v);
    AdjacencyView ob = b.OutNeighbors(v);
    ASSERT_EQ(oa.size(), ob.size()) << "node " << v;
    for (size_t i = 0; i < oa.size(); ++i) {
      EXPECT_EQ(oa.nodes[i], ob.nodes[i]);
      EXPECT_DOUBLE_EQ(oa.weights[i], ob.weights[i]);
    }
  }
}

TEST(GraphBinaryIoTest, RoundTripPaperExample) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, &buf).ok());
  auto read = ReadGraphBinary(&buf);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectGraphsEqual(g, *read);
}

TEST(GraphBinaryIoTest, RoundTripRandomGraph) {
  Rng rng(5);
  UniformGraphParams params;
  params.num_nodes = 200;
  params.out_degree = 6;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(*g, &buf).ok());
  auto read = ReadGraphBinary(&buf);
  ASSERT_TRUE(read.ok());
  ExpectGraphsEqual(*g, *read);
}

TEST(GraphBinaryIoTest, RoundTripUnlabeledGraph) {
  GraphBuilder b;
  b.AddNode(0.5);
  b.AddNode(0.5);
  ASSERT_TRUE(b.AddEdge(0, 1, 0.3).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(*g, &buf).ok());
  auto read = ReadGraphBinary(&buf);
  ASSERT_TRUE(read.ok());
  EXPECT_FALSE(read->HasLabels());
  ExpectGraphsEqual(*g, *read);
}

TEST(GraphBinaryIoTest, BadMagicRejected) {
  std::stringstream buf;
  buf << "NOTAGRAPHFILE_____";
  auto read = ReadGraphBinary(&buf);
  EXPECT_TRUE(read.status().IsCorruption());
}

TEST(GraphBinaryIoTest, TruncationDetected) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, &buf).ok());
  std::string data = buf.str();
  for (size_t cut : {data.size() - 1, data.size() / 2, size_t{10}}) {
    std::stringstream truncated(data.substr(0, cut));
    auto read = ReadGraphBinary(&truncated);
    EXPECT_TRUE(read.status().IsCorruption()) << "cut at " << cut;
  }
}

TEST(GraphBinaryIoTest, BitFlipDetectedByChecksum) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::stringstream buf;
  ASSERT_TRUE(WriteGraphBinary(g, &buf).ok());
  std::string data = buf.str();
  // Flip a bit in the node-weight payload region (after magic+header).
  data[32] = static_cast<char>(data[32] ^ 0x40);
  std::stringstream corrupted(data);
  auto read = ReadGraphBinary(&corrupted);
  EXPECT_FALSE(read.ok());
}

TEST(GraphBinaryIoTest, FileRoundTrip) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::string path = ::testing::TempDir() + "/graph_io_test.pcg";
  ASSERT_TRUE(WriteGraphBinaryFile(g, path).ok());
  auto read = ReadGraphBinaryFile(path);
  ASSERT_TRUE(read.ok());
  ExpectGraphsEqual(g, *read);
}

TEST(GraphBinaryIoTest, MissingFileIsIOError) {
  auto read = ReadGraphBinaryFile("/nonexistent/path/graph.pcg");
  EXPECT_TRUE(read.status().IsIOError());
}

TEST(GraphCsvIoTest, RoundTripLabeled) {
  PreferenceGraph g = MakePaperExampleGraph();
  std::stringstream nodes, edges;
  ASSERT_TRUE(WriteGraphCsv(g, &nodes, &edges).ok());
  GraphValidationOptions options;
  options.require_normalized_out_weights = true;
  auto read = ReadGraphCsv(&nodes, &edges, options);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  ExpectGraphsEqual(g, *read);
}

TEST(GraphCsvIoTest, NodesHeaderValidated) {
  std::stringstream nodes("wrong,header\n"), edges("from,to,weight\n");
  EXPECT_FALSE(ReadGraphCsv(&nodes, &edges).ok());
}

TEST(GraphCsvIoTest, EdgesHeaderValidated) {
  std::stringstream nodes("id,weight\n0,1.0\n"), edges("bad\n");
  EXPECT_FALSE(ReadGraphCsv(&nodes, &edges).ok());
}

TEST(GraphCsvIoTest, NonDenseIdsRejected) {
  std::stringstream nodes("id,weight\n0,0.5\n2,0.5\n");
  std::stringstream edges("from,to,weight\n");
  auto read = ReadGraphCsv(&nodes, &edges);
  EXPECT_TRUE(read.status().IsInvalidArgument());
}

TEST(GraphCsvIoTest, EdgeReferencingUnknownNodeRejected) {
  std::stringstream nodes("id,weight\n0,1.0\n");
  std::stringstream edges("from,to,weight\n0,9,0.5\n");
  EXPECT_FALSE(ReadGraphCsv(&nodes, &edges).ok());
}

TEST(GraphCsvIoTest, WeightsSurviveFullPrecision) {
  GraphBuilder b;
  b.AddNode(1.0 / 3.0);
  b.AddNode(2.0 / 3.0);
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0 / 7.0).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  std::stringstream nodes, edges;
  ASSERT_TRUE(WriteGraphCsv(*g, &nodes, &edges).ok());
  auto read = ReadGraphCsv(&nodes, &edges);
  ASSERT_TRUE(read.ok());
  EXPECT_DOUBLE_EQ(read->NodeWeight(0), 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(read->EdgeWeight(0, 1), 1.0 / 7.0);
}

}  // namespace
}  // namespace prefcover
