#include "graph/graph_builder.h"

#include <gtest/gtest.h>

#include "graph/preference_graph.h"

namespace prefcover {
namespace {

TEST(GraphBuilderTest, BuildsSmallGraph) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5, "A");
  NodeId c = b.AddNode(0.5, "C");
  ASSERT_TRUE(b.AddEdge(a, c, 0.7).ok());
  auto result = b.Finalize();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const PreferenceGraph& g = *result;
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g.NodeWeight(a), 0.5);
  EXPECT_TRUE(g.HasEdge(a, c));
  EXPECT_FALSE(g.HasEdge(c, a));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(a, c), 0.7);
  EXPECT_TRUE(g.HasLabels());
  EXPECT_EQ(g.Label(a), "A");
}

TEST(GraphBuilderTest, InOutAdjacencyConsistent) {
  GraphBuilder b;
  NodeId n0 = b.AddNode(0.25);
  NodeId n1 = b.AddNode(0.25);
  NodeId n2 = b.AddNode(0.25);
  NodeId n3 = b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(n0, n2, 0.1).ok());
  ASSERT_TRUE(b.AddEdge(n1, n2, 0.2).ok());
  ASSERT_TRUE(b.AddEdge(n3, n2, 0.3).ok());
  ASSERT_TRUE(b.AddEdge(n2, n0, 0.4).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->InDegree(n2), 3u);
  EXPECT_EQ(g->OutDegree(n2), 1u);
  AdjacencyView in = g->InNeighbors(n2);
  double sum = 0.0;
  for (size_t i = 0; i < in.size(); ++i) {
    EXPECT_DOUBLE_EQ(g->EdgeWeight(in.nodes[i], n2), in.weights[i]);
    sum += in.weights[i];
  }
  EXPECT_NEAR(sum, 0.6, 1e-12);
}

TEST(GraphBuilderTest, RejectsBadNodeWeight) {
  {
    GraphBuilder b;
    b.AddNode(-0.1);
    b.AddNode(1.1);
    EXPECT_TRUE(b.Finalize().status().IsInvalidArgument());
  }
  {
    GraphBuilder b;
    b.AddNode(1.5);
    EXPECT_TRUE(b.Finalize().status().IsInvalidArgument());
  }
}

TEST(GraphBuilderTest, RequiresWeightsSumToOneByDefault) {
  GraphBuilder b;
  b.AddNode(0.3);
  b.AddNode(0.3);
  EXPECT_TRUE(b.Finalize().status().IsInvalidArgument());
}

TEST(GraphBuilderTest, NormalizeNodeWeightsFixesSum) {
  GraphBuilder b;
  b.AddNode(0.3);
  b.AddNode(0.3);
  ASSERT_TRUE(b.NormalizeNodeWeights().ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->NodeWeight(0), 0.5);
  EXPECT_DOUBLE_EQ(g->NodeWeight(1), 0.5);
}

TEST(GraphBuilderTest, NormalizeFailsOnZeroSum) {
  GraphBuilder b;
  b.AddNode(0.0);
  EXPECT_TRUE(b.NormalizeNodeWeights().IsFailedPrecondition());
}

TEST(GraphBuilderTest, DisableNodeWeightCheck) {
  GraphBuilder b;
  b.AddNode(0.3);
  GraphValidationOptions options;
  options.require_normalized_node_weights = false;
  EXPECT_TRUE(b.Finalize(options).ok());
}

TEST(GraphBuilderTest, RejectsSelfLoopByDefault) {
  GraphBuilder b;
  NodeId v = b.AddNode(1.0);
  ASSERT_TRUE(b.AddEdge(v, v, 0.5).ok());
  EXPECT_TRUE(b.Finalize().status().IsInvalidArgument());
}

TEST(GraphBuilderTest, AllowsSelfLoopWhenConfigured) {
  GraphBuilder b;
  NodeId v = b.AddNode(1.0);
  ASSERT_TRUE(b.AddEdge(v, v, 0.5).ok());
  GraphValidationOptions options;
  options.allow_self_loops = true;
  auto g = b.Finalize(options);
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(g->HasEdge(v, v));
}

TEST(GraphBuilderTest, RejectsEdgeWeightOutOfRange) {
  for (double w : {0.0, -0.5, 1.5}) {
    GraphBuilder b;
    NodeId a = b.AddNode(0.5);
    NodeId c = b.AddNode(0.5);
    ASSERT_TRUE(b.AddEdge(a, c, w).ok());
    EXPECT_TRUE(b.Finalize().status().IsInvalidArgument()) << "w=" << w;
  }
}

TEST(GraphBuilderTest, RejectsDuplicateEdges) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.5);
  ASSERT_TRUE(b.AddEdge(a, c, 0.2).ok());
  ASSERT_TRUE(b.AddEdge(a, c, 0.3).ok());
  EXPECT_TRUE(b.Finalize().status().IsInvalidArgument());
}

TEST(GraphBuilderTest, RejectsUnknownEndpoints) {
  GraphBuilder b;
  b.AddNode(1.0);
  EXPECT_TRUE(b.AddEdge(0, 5, 0.5).IsInvalidArgument());
  EXPECT_TRUE(b.AddEdge(5, 0, 0.5).IsInvalidArgument());
}

TEST(GraphBuilderTest, NormalizedOutWeightValidation) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.25);
  NodeId d = b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(a, c, 0.7).ok());
  ASSERT_TRUE(b.AddEdge(a, d, 0.7).ok());  // sums to 1.4
  GraphValidationOptions options;
  options.require_normalized_out_weights = true;
  EXPECT_TRUE(b.Finalize(options).status().IsInvalidArgument());
}

TEST(GraphBuilderTest, NormalizedOutWeightAcceptsExactlyOne) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.25);
  NodeId d = b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(a, c, 0.4).ok());
  ASSERT_TRUE(b.AddEdge(a, d, 0.6).ok());
  GraphValidationOptions options;
  options.require_normalized_out_weights = true;
  EXPECT_TRUE(b.Finalize(options).ok());
}

TEST(GraphBuilderTest, AddOrAccumulateEdgeSums) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.5);
  ASSERT_TRUE(b.AddOrAccumulateEdge(a, c, 0.2).ok());
  ASSERT_TRUE(b.AddOrAccumulateEdge(a, c, 0.3).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_NEAR(g->EdgeWeight(a, c), 0.5, 1e-12);
}

TEST(GraphBuilderTest, AddNodesBulk) {
  GraphBuilder b;
  NodeId first = b.AddNodes(5);
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(b.NumNodes(), 5u);
  for (NodeId v = 0; v < 5; ++v) {
    ASSERT_TRUE(b.SetNodeWeight(v, 0.2).ok());
  }
  EXPECT_TRUE(b.Finalize().ok());
}

TEST(GraphBuilderTest, SetNodeWeightUnknownNodeFails) {
  GraphBuilder b;
  b.AddNode(1.0);
  EXPECT_TRUE(b.SetNodeWeight(3, 0.5).IsInvalidArgument());
}

TEST(GraphBuilderTest, BuilderReusableAfterFinalize) {
  GraphBuilder b;
  b.AddNode(1.0);
  ASSERT_TRUE(b.Finalize().ok());
  EXPECT_EQ(b.NumNodes(), 0u);
  b.AddNode(1.0);
  auto g2 = b.Finalize();
  ASSERT_TRUE(g2.ok());
  EXPECT_EQ(g2->NumNodes(), 1u);
}

TEST(GraphBuilderTest, EmptyGraph) {
  GraphBuilder b;
  GraphValidationOptions options;
  options.require_normalized_node_weights = false;
  auto g = b.Finalize(options);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumNodes(), 0u);
  EXPECT_EQ(g->NumEdges(), 0u);
}

TEST(PreferenceGraphTest, AccessorsOnPaperExampleShape) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.6, "A");
  NodeId c = b.AddNode(0.4, "C");
  ASSERT_TRUE(b.AddEdge(a, c, 0.9).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->TotalNodeWeight(), 1.0);
  EXPECT_DOUBLE_EQ(g->OutWeightSum(a), 0.9);
  EXPECT_DOUBLE_EQ(g->OutWeightSum(c), 0.0);
  EXPECT_EQ(g->MaxInDegree(), 1u);
  EXPECT_EQ(g->DisplayName(a), "A");
}

TEST(PreferenceGraphTest, StaticGainBoundIndex) {
  // bound(v) = W(v) + sum over in-edges (u, v), u != v, of W(u)*W(u,v);
  // the order lists ids by descending bound, ties by ascending id.
  GraphBuilder b;
  NodeId n0 = b.AddNode(0.1);
  NodeId n1 = b.AddNode(0.2);
  NodeId n2 = b.AddNode(0.3);
  NodeId n3 = b.AddNode(0.4);
  ASSERT_TRUE(b.AddEdge(n0, n2, 0.5).ok());  // n2 gains 0.1 * 0.5
  ASSERT_TRUE(b.AddEdge(n1, n2, 1.0).ok());  // n2 gains 0.2 * 1.0
  ASSERT_TRUE(b.AddEdge(n3, n0, 0.25).ok());  // n0 gains 0.4 * 0.25
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  const auto bounds = g->StaticGainBounds();
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[n0], 0.1 + 0.4 * 0.25);
  EXPECT_DOUBLE_EQ(bounds[n1], 0.2);
  EXPECT_DOUBLE_EQ(bounds[n2], 0.3 + 0.1 * 0.5 + 0.2 * 1.0);
  EXPECT_DOUBLE_EQ(bounds[n3], 0.4);
  const auto order = g->NodesByStaticGainBound();
  ASSERT_EQ(order.size(), 4u);
  // Bounds: n2 = 0.55, n3 = 0.4, n0 = 0.2, n1 = 0.2 (tie -> smaller id).
  EXPECT_EQ(order[0], n2);
  EXPECT_EQ(order[1], n3);
  EXPECT_EQ(order[2], n0);
  EXPECT_EQ(order[3], n1);
}

TEST(PreferenceGraphTest, StaticGainBoundSkipsSelfLoops) {
  GraphBuilder b;
  b.AddNode(0.5);
  b.AddNode(0.5);
  GraphValidationOptions options;
  options.allow_self_loops = true;
  ASSERT_TRUE(b.AddEdge(0, 0, 1.0).ok());
  auto g = b.Finalize(options);
  ASSERT_TRUE(g.ok());
  // The Gain procedures mask u == v, so the bound excludes it too.
  EXPECT_DOUBLE_EQ(g->StaticGainBounds()[0], 0.5);
}

TEST(PreferenceGraphTest, DisplayNameWithoutLabels) {
  GraphBuilder b;
  b.AddNode(1.0);
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->HasLabels());
  EXPECT_EQ(g->DisplayName(0), "item0");
}

}  // namespace
}  // namespace prefcover
