// Edge-case coverage for the solver family: degenerate graphs, extreme
// weights, early-termination paths, and agreement of all executions on
// unusual inputs.

#include <gtest/gtest.h>

#include "core/baseline_solvers.h"
#include "core/brute_force_solver.h"
#include "core/complementary_solver.h"
#include "core/greedy_solver.h"
#include "graph/graph_builder.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

PreferenceGraph SingleNodeGraph() {
  GraphBuilder b;
  b.AddNode(1.0, "only");
  auto g = b.Finalize();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

// All weight on one node, the rest zero; edges from the zero nodes in.
PreferenceGraph StarGraph(uint32_t spokes) {
  GraphBuilder b;
  NodeId hub = b.AddNode(1.0, "hub");
  for (uint32_t i = 0; i < spokes; ++i) {
    NodeId spoke = b.AddNode(0.0);
    EXPECT_TRUE(b.AddEdge(spoke, hub, 0.5).ok());
  }
  auto g = b.Finalize();
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

TEST(EdgeCaseTest, SingleNodeGraphAllSolvers) {
  PreferenceGraph g = SingleNodeGraph();
  Rng rng(1);
  for (size_t k : {0u, 1u}) {
    auto greedy = SolveGreedy(g, k);
    auto lazy = SolveGreedyLazy(g, k);
    auto bf = SolveBruteForce(g, k);
    auto topw = SolveTopKWeight(g, k, Variant::kIndependent);
    ASSERT_TRUE(greedy.ok() && lazy.ok() && bf.ok() && topw.ok());
    double expected = k == 0 ? 0.0 : 1.0;
    EXPECT_NEAR(greedy->cover, expected, 1e-12);
    EXPECT_NEAR(lazy->cover, expected, 1e-12);
    EXPECT_NEAR(bf->cover, expected, 1e-12);
    EXPECT_NEAR(topw->cover, expected, 1e-12);
  }
}

TEST(EdgeCaseTest, EmptyGraphSolvers) {
  GraphBuilder b;
  GraphValidationOptions options;
  options.require_normalized_node_weights = false;
  auto g = b.Finalize(options);
  ASSERT_TRUE(g.ok());
  auto greedy = SolveGreedy(*g, 0);
  ASSERT_TRUE(greedy.ok());
  EXPECT_TRUE(greedy->items.empty());
  EXPECT_DOUBLE_EQ(greedy->cover, 0.0);
  EXPECT_TRUE(SolveGreedy(*g, 1).status().IsInvalidArgument());
}

TEST(EdgeCaseTest, ZeroWeightSpokesSelectedLastButCorrectly) {
  PreferenceGraph g = StarGraph(4);
  auto sol = SolveGreedy(g, 5);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items.size(), 5u);
  EXPECT_EQ(sol->items[0], 0u);  // the hub carries all the weight
  EXPECT_NEAR(sol->cover, 1.0, 1e-12);
  // Prefix covers flat after the hub: spokes add nothing.
  for (size_t i = 1; i < 5; ++i) {
    EXPECT_NEAR(sol->cover_after_prefix[i], 1.0, 1e-12);
  }
}

TEST(EdgeCaseTest, GraphWithNoEdgesBehavesLikeTopKWeight) {
  GraphBuilder b;
  b.AddNode(0.4);
  b.AddNode(0.3);
  b.AddNode(0.2);
  b.AddNode(0.1);
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    GreedyOptions options;
    options.variant = variant;
    auto greedy = SolveGreedy(*g, 2, options);
    auto topw = SolveTopKWeight(*g, 2, variant);
    ASSERT_TRUE(greedy.ok() && topw.ok());
    EXPECT_EQ(greedy->items, topw->items);
    EXPECT_NEAR(greedy->cover, 0.7, 1e-12);
  }
}

TEST(EdgeCaseTest, EdgeWeightOneMakesPerfectSubstitute) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.5);
  ASSERT_TRUE(b.AddEdge(a, c, 1.0).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  auto sol = SolveGreedy(*g, 1);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items, std::vector<NodeId>{c});  // covers everything
  EXPECT_NEAR(sol->cover, 1.0, 1e-12);
}

TEST(EdgeCaseTest, StopAtCoverAgreesAcrossExecutions) {
  Rng rng(9);
  GraphBuilder b;
  for (int i = 0; i < 40; ++i) b.AddNode(1.0 / 40.0);
  for (int i = 0; i < 40; ++i) {
    int to = (i * 7 + 3) % 40;
    if (to != i) {
      ASSERT_TRUE(b.AddEdge(static_cast<NodeId>(i),
                            static_cast<NodeId>(to), 0.5)
                      .ok());
    }
  }
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  GreedyOptions options;
  options.stop_at_cover = 0.6;
  auto plain = SolveGreedy(*g, 40, options);
  auto lazy = SolveGreedyLazy(*g, 40, options);
  ThreadPool pool(2);
  auto parallel = SolveGreedyParallel(*g, 40, &pool, options);
  ASSERT_TRUE(plain.ok() && lazy.ok() && parallel.ok());
  EXPECT_EQ(plain->items, lazy->items);
  EXPECT_EQ(plain->items, parallel->items);
  EXPECT_GE(plain->cover, 0.6);
  EXPECT_LT(plain->items.size(), 40u);
}

TEST(EdgeCaseTest, TinyWeightsPreserveDeterminism) {
  GraphBuilder b;
  // Weights differing at the 1e-15 level: ordering must stay stable and
  // identical across executions.
  double base = 1.0 / 8.0;
  for (int i = 0; i < 8; ++i) {
    b.AddNode(base + (i % 2 == 0 ? 1e-15 : -1e-15));
  }
  GraphValidationOptions options;
  options.weight_sum_tolerance = 1e-6;
  auto g = b.Finalize(options);
  ASSERT_TRUE(g.ok());
  auto plain = SolveGreedy(*g, 4);
  auto lazy = SolveGreedyLazy(*g, 4);
  ASSERT_TRUE(plain.ok() && lazy.ok());
  EXPECT_EQ(plain->items, lazy->items);
}

TEST(EdgeCaseTest, ThresholdOnGraphWithUncoverableTail) {
  // Node 2 has zero weight and node 1 carries 0.3 with no alternatives;
  // threshold 0.8 requires retaining both heavy nodes.
  GraphBuilder b;
  b.AddNode(0.7);
  b.AddNode(0.3);
  b.AddNode(0.0);
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  auto result = SolveCoverageThreshold(*g, 0.8, Variant::kIndependent,
                                       ThresholdAlgorithm::kGreedy);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->reached);
  EXPECT_EQ(result->set_size, 2u);
}

TEST(EdgeCaseTest, RandomSolverOnFullBudget) {
  PreferenceGraph g = StarGraph(3);
  Rng rng(5);
  auto sol = SolveRandom(g, 4, Variant::kIndependent, &rng);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items.size(), 4u);
  EXPECT_NEAR(sol->cover, 1.0, 1e-12);
}

TEST(EdgeCaseTest, BruteForceOnStarPicksHub) {
  PreferenceGraph g = StarGraph(3);
  auto sol = SolveBruteForce(g, 1);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items, std::vector<NodeId>{0});
}

TEST(EdgeCaseTest, LazyGreedyHandlesAllZeroGains) {
  // After the hub, every remaining candidate has gain exactly 0; the lazy
  // heap must still emit k items deterministically (smallest ids).
  PreferenceGraph g = StarGraph(5);
  auto sol = SolveGreedyLazy(g, 4);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->items.size(), 4u);
  EXPECT_EQ(sol->items[0], 0u);
  EXPECT_EQ(sol->items[1], 1u);
  EXPECT_EQ(sol->items[2], 2u);
  EXPECT_EQ(sol->items[3], 3u);
}

}  // namespace
}  // namespace prefcover
