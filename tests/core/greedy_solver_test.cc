#include "core/greedy_solver.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/brute_force_solver.h"
#include "core/cover_function.h"
#include "graph/graph_generators.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

constexpr NodeId kB = 1, kD = 3;

TEST(GreedySolverTest, PaperExampleWalkthrough) {
  // Example 3.2: greedy picks B (66%), then D (+21.3%), total 87.3%.
  PreferenceGraph g = MakePaperExampleGraph();
  for (Variant variant : {Variant::kNormalized, Variant::kIndependent}) {
    GreedyOptions options;
    options.variant = variant;
    auto sol = SolveGreedy(g, 2, options);
    ASSERT_TRUE(sol.ok()) << sol.status().ToString();
    ASSERT_EQ(sol->items.size(), 2u);
    EXPECT_EQ(sol->items[0], kB);
    EXPECT_EQ(sol->items[1], kD);
    EXPECT_NEAR(sol->cover_after_prefix[0], 0.66, 1e-9);
    EXPECT_NEAR(sol->cover, 0.873, 1e-9);
    EXPECT_TRUE(sol->Validate(g).ok());
  }
}

TEST(GreedySolverTest, KZeroReturnsEmpty) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 0);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->items.empty());
  EXPECT_DOUBLE_EQ(sol->cover, 0.0);
}

TEST(GreedySolverTest, KEqualsNCoversEverything) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, g.NumNodes());
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items.size(), g.NumNodes());
  EXPECT_NEAR(sol->cover, 1.0, 1e-9);
}

TEST(GreedySolverTest, KTooLargeRejected) {
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(SolveGreedy(g, 6).status().IsInvalidArgument());
}

TEST(GreedySolverTest, PrefixCoversAreMonotone) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 5);
  ASSERT_TRUE(sol.ok());
  for (size_t i = 1; i < sol->cover_after_prefix.size(); ++i) {
    EXPECT_GE(sol->cover_after_prefix[i], sol->cover_after_prefix[i - 1]);
  }
}

TEST(GreedySolverTest, OrderedPrefixPropertyFromSectionThreeTwo) {
  // Solving for k = n yields, as prefixes, the solutions for every k' < n.
  Rng rng(5);
  UniformGraphParams params;
  params.num_nodes = 60;
  params.out_degree = 5;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto full = SolveGreedy(*g, g->NumNodes());
  ASSERT_TRUE(full.ok());
  for (size_t k : {1u, 5u, 17u, 33u}) {
    auto partial = SolveGreedy(*g, k);
    ASSERT_TRUE(partial.ok());
    EXPECT_EQ(partial->items, full->PrefixItems(k)) << "k=" << k;
    EXPECT_NEAR(partial->cover, full->PrefixCover(k), 1e-12);
  }
}

TEST(GreedySolverTest, StopAtCoverStopsEarly) {
  PreferenceGraph g = MakePaperExampleGraph();
  GreedyOptions options;
  options.variant = Variant::kNormalized;
  options.stop_at_cover = 0.6;  // B alone reaches 0.66
  auto sol = SolveGreedy(g, 5, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items.size(), 1u);
  EXPECT_EQ(sol->items[0], kB);
}

class GreedyEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<Variant, uint64_t, size_t>> {
};

TEST_P(GreedyEquivalenceTest, ThreeExecutionsProduceIdenticalSolutions) {
  auto [variant, seed, threads] = GetParam();
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = 150;
  params.out_degree = 7;
  params.normalized_out_weights = variant == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());

  GreedyOptions options;
  options.variant = variant;
  const size_t k = 40;
  auto plain = SolveGreedy(*g, k, options);
  auto lazy = SolveGreedyLazy(*g, k, options);
  ThreadPool pool(threads);
  auto parallel = SolveGreedyParallel(*g, k, &pool, options);
  ASSERT_TRUE(plain.ok() && lazy.ok() && parallel.ok());

  EXPECT_EQ(plain->items, lazy->items);
  EXPECT_EQ(plain->items, parallel->items);
  EXPECT_NEAR(plain->cover, lazy->cover, 1e-12);
  EXPECT_NEAR(plain->cover, parallel->cover, 1e-12);
  EXPECT_TRUE(plain->Validate(*g).ok());
  EXPECT_TRUE(lazy->Validate(*g).ok());
  EXPECT_TRUE(parallel->Validate(*g).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GreedyEquivalenceTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Values(1, 7, 21),
                       ::testing::Values(1, 4)),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param)) + "_threads" +
             std::to_string(std::get<2>(param_info.param));
    });

TEST(GreedySolverTest, ParallelWithNullPoolMatchesPlain) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto plain = SolveGreedy(g, 3);
  auto parallel = SolveGreedyParallel(g, 3, nullptr);
  ASSERT_TRUE(plain.ok() && parallel.ok());
  EXPECT_EQ(plain->items, parallel->items);
}

class GreedyApproximationTest
    : public ::testing::TestWithParam<std::tuple<Variant, uint64_t>> {};

TEST_P(GreedyApproximationTest, MeetsTheoreticalGuaranteeAgainstOptimum) {
  auto [variant, seed] = GetParam();
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = 12;
  params.out_degree = 3;
  params.normalized_out_weights = variant == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  for (size_t k : {2u, 4u, 6u}) {
    GreedyOptions greedy_options;
    greedy_options.variant = variant;
    auto greedy = SolveGreedy(*g, k, greedy_options);
    BruteForceOptions bf_options;
    bf_options.variant = variant;
    auto optimal = SolveBruteForce(*g, k, bf_options);
    ASSERT_TRUE(greedy.ok() && optimal.ok());
    double guarantee =
        GreedyApproximationGuarantee(variant, k, g->NumNodes());
    EXPECT_GE(greedy->cover, guarantee * optimal->cover - 1e-9)
        << "k=" << k << " greedy=" << greedy->cover
        << " optimal=" << optimal->cover;
    EXPECT_LE(greedy->cover, optimal->cover + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, GreedyApproximationTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Values(31, 32, 33, 34)),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(GreedyGuaranteeTest, FormulaMatchesTableOne) {
  const double e_bound = 1.0 - 1.0 / std::exp(1.0);
  // Independent: always 1 - 1/e.
  EXPECT_NEAR(GreedyApproximationGuarantee(Variant::kIndependent, 1, 100),
              e_bound, 1e-12);
  EXPECT_NEAR(GreedyApproximationGuarantee(Variant::kIndependent, 99, 100),
              e_bound, 1e-12);
  // Normalized: max{1 - 1/e, 1 - (1 - k/n)^2}; the VC bound takes over
  // around k/n ~ 0.39 (Table 1).
  EXPECT_NEAR(GreedyApproximationGuarantee(Variant::kNormalized, 10, 100),
              e_bound, 1e-12);
  EXPECT_NEAR(GreedyApproximationGuarantee(Variant::kNormalized, 50, 100),
              0.75, 1e-12);
  EXPECT_NEAR(GreedyApproximationGuarantee(Variant::kNormalized, 80, 100),
              0.96, 1e-12);
  // Crossover point: 1 - (1 - r)^2 == 1 - 1/e at r = 1 - 1/sqrt(e) ~ 0.3935.
  double r = 1.0 - 1.0 / std::sqrt(std::exp(1.0));
  EXPECT_NEAR(GreedyApproximationGuarantee(
                  Variant::kNormalized,
                  static_cast<size_t>(r * 1000000), 1000000),
              e_bound, 1e-3);
}

TEST(GreedySolverTest, LazyMatchesPlainOnClusteredGraphs) {
  // Clustered graphs have heavier gain overlap, stressing CELF staleness.
  Rng rng(55);
  ClusteredGraphParams params;
  params.num_nodes = 400;
  params.num_clusters = 20;
  params.intra_cluster_degree = 6.0;
  auto g = GenerateClusteredGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto plain = SolveGreedy(*g, 60);
  auto lazy = SolveGreedyLazy(*g, 60);
  ASSERT_TRUE(plain.ok() && lazy.ok());
  EXPECT_EQ(plain->items, lazy->items);
}

TEST(GreedySolverTest, SolveSecondsPopulated) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  EXPECT_GE(sol->solve_seconds, 0.0);
  EXPECT_EQ(sol->algorithm, "greedy");
  auto lazy = SolveGreedyLazy(g, 2);
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(lazy->algorithm, "greedy-lazy");
}

TEST(SolutionTest, SmallestPrefixReaching) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 5);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->SmallestPrefixReaching(0.0), 0u);   // empty prefix
  EXPECT_EQ(sol->SmallestPrefixReaching(0.5), 1u);   // B alone: 0.66
  EXPECT_EQ(sol->SmallestPrefixReaching(0.7), 2u);   // B + D: 0.873
  EXPECT_EQ(sol->SmallestPrefixReaching(0.999), 4u);  // {B,D,A,E} covers 1.0
  EXPECT_EQ(sol->SmallestPrefixReaching(1.5), 6u);   // unreachable
}

TEST(SolutionTest, ItemCoverageHelper) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 2);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->ItemCoverage(g, kB), 1.0);
  EXPECT_NEAR(sol->ItemCoverage(g, 0), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace prefcover
