// Differential battery for the coverage kernels: every dispatch level
// (scalar / word / AVX2 when the build and CPU provide it) must produce
// BIT-identical doubles to the scalar oracle — per GainOf call, per
// AddNode update, and end to end through all four greedy executions.
// No tolerances anywhere: the contract is byte equality, which is what
// makes solutions independent of the host CPU.
//
// Also covered: ragged in-edge counts (0, 1, and non-multiple-of-4/8
// tails, straddling the 64-bit word boundary at 63/64/65), the
// PREFCOVER_SIMD_LEVEL hook reaching CoverState, ClampKernelLevel
// demotion, and Reset/RefreshResiduals re-establishing the fresh-
// subtraction invariant.

#include "core/coverage_kernels.h"

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cover_state.h"
#include "core/greedy_solver.h"
#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "util/random.h"
#include "util/simd_dispatch.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

constexpr uint64_t kNumSeeds = 50;

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar, SimdLevel::kWord};
  if (MaxSupportedSimdLevel() == SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

// Exact bit equality for doubles: distinguishes +0.0 from -0.0 and makes
// the failure message show the raw patterns.
::testing::AssertionResult BitsEqual(double expected, double actual) {
  const uint64_t e = std::bit_cast<uint64_t>(expected);
  const uint64_t a = std::bit_cast<uint64_t>(actual);
  if (e == a) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "expected " << expected << " (0x" << std::hex << e << ") got "
         << actual << " (0x" << a << ")";
}

// Derives a deterministic instance from (seed, variant), mirroring the
// greedy equivalence suite's shapes: 40-200 nodes, varying degree and
// popularity skew.
PreferenceGraph MakeSeededGraph(uint64_t seed, Variant variant) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 7);
  UniformGraphParams params;
  params.num_nodes = static_cast<uint32_t>(40 + (seed * 13) % 160);
  params.out_degree = static_cast<uint32_t>(3 + seed % 6);
  params.popularity_skew = 0.4 + 0.4 * static_cast<double>(seed % 4);
  params.normalized_out_weights = variant == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// A graph whose "hub" nodes carry exactly the requested in-degrees —
// 0, 1 and the word/vector boundary cases (non-multiple-of-4/8 tails,
// 63/64/65 straddling a bitset word, and one multi-word case).
constexpr size_t kHubDegrees[] = {0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 100};

struct RaggedGraph {
  PreferenceGraph graph;
  std::vector<NodeId> hubs;     // hubs[i] has in-degree kHubDegrees[i]
  std::vector<NodeId> sources;  // in-degree 0, out-edges into the hubs
};

RaggedGraph MakeRaggedGraph() {
  constexpr size_t kNumSources = 100;  // == max hub degree
  GraphBuilder b;
  RaggedGraph out{PreferenceGraph{}, {}, {}};
  for (size_t d = 0; d < std::size(kHubDegrees); ++d) {
    out.hubs.push_back(b.AddNode(1.0, "hub" + std::to_string(d)));
  }
  for (size_t s = 0; s < kNumSources; ++s) {
    out.sources.push_back(b.AddNode(1.0, "src" + std::to_string(s)));
  }
  // Hub d draws its in-edges from sources 0..degree-1, so source s fans
  // out to every hub with degree > s. Source 0 has the max out-degree
  // (12 edges); 0.08 per edge keeps every out-weight sum under 1 for the
  // Normalized variant.
  for (size_t d = 0; d < std::size(kHubDegrees); ++d) {
    for (size_t s = 0; s < kHubDegrees[d]; ++s) {
      const double w = 0.08 - 0.0001 * static_cast<double>(s % 7);
      EXPECT_TRUE(b.AddEdge(out.sources[s], out.hubs[d], w).ok());
    }
  }
  EXPECT_TRUE(b.NormalizeNodeWeights().ok());
  auto g = b.Finalize();
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  out.graph = std::move(g).value();
  return out;
}

// Replays one random AddNode order through a scalar-oracle state and a
// state at `level`, asserting bit-identical GainOf for every non-retained
// node and bit-identical cover / item contributions after every add.
void RunLockstepDifferential(const PreferenceGraph& g, Variant variant,
                             SimdLevel level,
                             const std::vector<NodeId>& add_order,
                             const std::string& label) {
  CoverState oracle(&g, variant, SimdLevel::kScalar);
  CoverState fast(&g, variant, level);
  ASSERT_EQ(oracle.simd_level(), SimdLevel::kScalar);
  ASSERT_EQ(fast.simd_level(), level) << label;

  for (size_t step = 0; step <= add_order.size(); ++step) {
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (oracle.IsRetained(v)) continue;
      ASSERT_TRUE(BitsEqual(oracle.GainOf(v), fast.GainOf(v)))
          << label << " GainOf(" << v << ") step " << step;
    }
    if (step == add_order.size()) break;
    const NodeId v = add_order[step];
    oracle.AddNode(v);
    fast.AddNode(v);
    ASSERT_TRUE(BitsEqual(oracle.cover(), fast.cover()))
        << label << " cover after step " << step;
    for (NodeId u = 0; u < g.NumNodes(); ++u) {
      ASSERT_TRUE(BitsEqual(oracle.item_contributions()[u],
                            fast.item_contributions()[u]))
          << label << " I[" << u << "] after step " << step;
    }
  }
}

class KernelDifferentialTest
    : public ::testing::TestWithParam<std::tuple<Variant, SimdLevel>> {
 protected:
  Variant variant() const { return std::get<0>(GetParam()); }
  SimdLevel level() const { return std::get<1>(GetParam()); }

  // AVX2 rows are instantiated unconditionally so the suite shape is
  // stable; on builds/CPUs without AVX2 they verify the clamp instead.
  bool LevelRunnable() const {
    return level() <= MaxSupportedSimdLevel();
  }
};

TEST_P(KernelDifferentialTest, GainAndAddNodeMatchOracleOnSeededGraphs) {
  if (!LevelRunnable()) {
    GTEST_SKIP() << "level not supported by this build/CPU";
  }
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    PreferenceGraph g = MakeSeededGraph(seed, variant());
    Rng rng(seed + 31);
    std::vector<NodeId> shuffled(g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) shuffled[v] = v;
    rng.Shuffle(&shuffled);
    const std::vector<NodeId> order(
        shuffled.begin(),
        shuffled.begin() +
            static_cast<ptrdiff_t>(std::min<size_t>(shuffled.size(), 24)));
    RunLockstepDifferential(
        g, variant(), level(), order,
        "seed=" + std::to_string(seed) + " n=" +
            std::to_string(g.NumNodes()) + " level=" +
            std::string(SimdLevelName(level())));
  }
}

TEST_P(KernelDifferentialTest, RaggedInDegreesMatchOracle) {
  if (!LevelRunnable()) {
    GTEST_SKIP() << "level not supported by this build/CPU";
  }
  RaggedGraph ragged = MakeRaggedGraph();
  // Retain a spread of sources first (so gathers hit retained words with
  // mixed bits), then the hubs themselves, largest degree first.
  std::vector<NodeId> order;
  for (size_t s = 0; s < ragged.sources.size(); s += 3) {
    order.push_back(ragged.sources[s]);
  }
  for (size_t d = std::size(kHubDegrees); d-- > 0;) {
    order.push_back(ragged.hubs[d]);
  }
  RunLockstepDifferential(ragged.graph, variant(), level(), order,
                          std::string("ragged level=") +
                              std::string(SimdLevelName(level())));
}

TEST_P(KernelDifferentialTest, ResetRestoresBitIdenticalGains) {
  if (!LevelRunnable()) {
    GTEST_SKIP() << "level not supported by this build/CPU";
  }
  PreferenceGraph g = MakeSeededGraph(3, variant());
  CoverState fresh(&g, variant(), level());
  CoverState cycled(&g, variant(), level());
  for (NodeId v = 0; v < 20; ++v) cycled.AddNode(v);
  cycled.Reset();  // exercises RefreshResidualsKernel at this level
  EXPECT_TRUE(BitsEqual(fresh.cover(), cycled.cover()));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_TRUE(BitsEqual(fresh.GainOf(v), cycled.GainOf(v)))
        << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndLevels, KernelDifferentialTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Values(SimdLevel::kScalar, SimdLevel::kWord,
                                         SimdLevel::kAvx2)),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) + "_" +
             std::string(SimdLevelName(std::get<1>(param_info.param)));
    });

// ---------------------------------------------------------------------
// End-to-end: all four greedy executions, forced to each level via the
// PREFCOVER_SIMD_LEVEL hook, produce Solutions byte-identical to the
// scalar run — items, per-prefix covers, final cover and the I array.

class ScopedSimdLevelEnv {
 public:
  explicit ScopedSimdLevelEnv(const char* value) {
    const char* old = std::getenv("PREFCOVER_SIMD_LEVEL");
    if (old != nullptr) saved_ = old;
    ::setenv("PREFCOVER_SIMD_LEVEL", value, 1);
    ReinitActiveSimdLevelForTest();
  }
  ~ScopedSimdLevelEnv() {
    if (!saved_.empty()) {
      ::setenv("PREFCOVER_SIMD_LEVEL", saved_.c_str(), 1);
    } else {
      ::unsetenv("PREFCOVER_SIMD_LEVEL");
    }
    ReinitActiveSimdLevelForTest();
  }

 private:
  std::string saved_;
};

void ExpectSolutionsIdentical(const Solution& reference,
                              const Solution& other,
                              const std::string& label) {
  EXPECT_EQ(reference.items, other.items)
      << label << " [" << other.algorithm << "]";
  EXPECT_EQ(reference.cover_after_prefix, other.cover_after_prefix)
      << label << " [" << other.algorithm << "]";
  EXPECT_EQ(reference.cover, other.cover)
      << label << " [" << other.algorithm << "]";
  EXPECT_EQ(reference.item_contributions, other.item_contributions)
      << label << " [" << other.algorithm << "]";
}

struct LevelSolutions {
  Solution plain, lazy, parallel, lazy_parallel;
};

LevelSolutions SolveAllExecutions(const PreferenceGraph& g, size_t k,
                                  Variant variant, ThreadPool* pool,
                                  const std::string& label) {
  GreedyOptions options;
  options.variant = variant;
  LevelSolutions out;
  auto plain = SolveGreedy(g, k, options);
  auto lazy = SolveGreedyLazy(g, k, options);
  auto parallel = SolveGreedyParallel(g, k, pool, options);
  GreedyOptions batched = options;
  batched.batch_size = 16;
  auto lazy_parallel = SolveGreedyLazyParallel(g, k, pool, batched);
  EXPECT_TRUE(plain.ok() && lazy.ok() && parallel.ok() &&
              lazy_parallel.ok())
      << label;
  out.plain = std::move(plain).value();
  out.lazy = std::move(lazy).value();
  out.parallel = std::move(parallel).value();
  out.lazy_parallel = std::move(lazy_parallel).value();
  return out;
}

TEST(KernelSolverDifferentialTest,
     AllExecutionsByteIdenticalAcrossDispatchLevels) {
  ThreadPool pool(4);
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    const Variant variant =
        seed % 2 == 0 ? Variant::kIndependent : Variant::kNormalized;
    PreferenceGraph g = MakeSeededGraph(seed, variant);
    const size_t k = std::max<size_t>(1, g.NumNodes() / 4);
    const std::string label = "seed=" + std::to_string(seed) +
                              " n=" + std::to_string(g.NumNodes()) +
                              " k=" + std::to_string(k);

    LevelSolutions reference;
    {
      ScopedSimdLevelEnv env("scalar");
      reference = SolveAllExecutions(g, k, variant, &pool, label);
      // The scalar run is internally consistent across executions.
      ExpectSolutionsIdentical(reference.plain, reference.lazy, label);
      ExpectSolutionsIdentical(reference.plain, reference.parallel, label);
      ExpectSolutionsIdentical(reference.plain, reference.lazy_parallel,
                               label);
    }
    for (SimdLevel level : SupportedLevels()) {
      if (level == SimdLevel::kScalar) continue;
      ScopedSimdLevelEnv env(std::string(SimdLevelName(level)).c_str());
      const std::string level_label =
          label + " level=" + std::string(SimdLevelName(level));
      LevelSolutions fast = SolveAllExecutions(g, k, variant, &pool,
                                               level_label);
      ExpectSolutionsIdentical(reference.plain, fast.plain, level_label);
      ExpectSolutionsIdentical(reference.plain, fast.lazy, level_label);
      ExpectSolutionsIdentical(reference.plain, fast.parallel, level_label);
      ExpectSolutionsIdentical(reference.plain, fast.lazy_parallel,
                               level_label);
    }
  }
}

// ---------------------------------------------------------------------
// Dispatch plumbing.

TEST(KernelDispatchTest, CoverStateHonorsEnvOverride) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  for (SimdLevel level : SupportedLevels()) {
    ScopedSimdLevelEnv env(std::string(SimdLevelName(level)).c_str());
    CoverState state(&g, Variant::kIndependent);
    EXPECT_EQ(state.simd_level(), level) << SimdLevelName(level);
  }
}

TEST(KernelDispatchTest, UnsupportedEnvOverrideFallsBackAndStaysCorrect) {
  // Request the highest level by name on every build: where it is not
  // supported the state must clamp, and either way it must agree with
  // the scalar oracle.
  PreferenceGraph g = MakeSeededGraph(2, Variant::kNormalized);
  ScopedSimdLevelEnv env("avx2");
  CoverState state(&g, Variant::kNormalized);
  EXPECT_LE(state.simd_level(), MaxSupportedSimdLevel());
  CoverState oracle(&g, Variant::kNormalized, SimdLevel::kScalar);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_TRUE(BitsEqual(oracle.GainOf(v), state.GainOf(v))) << v;
  }
}

TEST(KernelDispatchTest, ClampKeepsScalarAndWordVerbatim) {
  for (size_t n : {size_t{0}, size_t{100}, size_t{1} << 32}) {
    EXPECT_EQ(ClampKernelLevel(SimdLevel::kScalar, n), SimdLevel::kScalar);
    EXPECT_EQ(ClampKernelLevel(SimdLevel::kWord, n), SimdLevel::kWord);
  }
}

TEST(KernelDispatchTest, ClampDemotesAvx2OnHugeInstances) {
  // The AVX2 gathers use signed 32-bit indices; at >= 2^31 nodes the
  // kernel level must degrade to word regardless of CPU support.
  EXPECT_EQ(ClampKernelLevel(SimdLevel::kAvx2, size_t{1} << 31),
            SimdLevel::kWord);
  EXPECT_EQ(ClampKernelLevel(SimdLevel::kAvx2, 100),
            MaxSupportedSimdLevel());
}

TEST(KernelDispatchTest, StaticGainTableMatchesReferenceProducts) {
  PreferenceGraph g = MakeSeededGraph(5, Variant::kNormalized);
  std::vector<double> table = BuildStaticGainTable(g);
  ASSERT_EQ(table.size(), g.NumEdges());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const auto in = g.InNeighbors(v);
    const size_t base = g.InEdgeOffset(v);
    for (size_t i = 0; i < in.size(); ++i) {
      ASSERT_TRUE(BitsEqual(g.NodeWeight(in.nodes[i]) * in.weights[i],
                            table[base + i]))
          << "edge " << base + i;
    }
  }
}

}  // namespace
}  // namespace prefcover
