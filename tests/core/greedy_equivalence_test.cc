// Differential test harness for the four executions of Algorithm 1.
//
// The contract under test: SolveGreedy, SolveGreedyParallel,
// SolveGreedyLazy and SolveGreedyLazyParallel select byte-identical
// retained sequences and covers on every instance — for any thread count
// and any CELF batch size, with and without force_include /
// force_exclude / stop_at_cover. ~50 seeded random graphs (Zipf node
// weights, both variants, varying k/n) are swept against thread counts
// {1, 2, 8} and batch sizes {1, 4, 64}.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

constexpr size_t kNumSeeds = 50;
constexpr size_t kThreadCounts[] = {1, 2, 8};
constexpr size_t kBatchSizes[] = {1, 4, 64};

struct DiffInstance {
  PreferenceGraph graph;
  size_t k = 0;
  GreedyOptions options;
  std::string label;
};

// Derives a deterministic instance from the seed: graph shape, variant,
// budget and constraint mix all vary with it.
DiffInstance MakeInstance(uint64_t seed) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
  UniformGraphParams params;
  params.num_nodes = static_cast<uint32_t>(40 + (seed * 13) % 160);
  params.out_degree = static_cast<uint32_t>(3 + seed % 6);
  params.popularity_skew = 0.4 + 0.4 * static_cast<double>(seed % 4);
  Variant variant = seed % 2 == 0 ? Variant::kIndependent
                                  : Variant::kNormalized;
  params.normalized_out_weights = variant == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(g.ok()) << g.status().ToString();

  DiffInstance instance{std::move(g).value(), 0, {}, {}};
  const size_t n = instance.graph.NumNodes();
  instance.k = std::max<size_t>(1, n * (5 + (seed * 7) % 40) / 100);
  instance.options.variant = variant;
  instance.label = "seed=" + std::to_string(seed) +
                   " n=" + std::to_string(n) +
                   " k=" + std::to_string(instance.k);

  // Every third instance carries constraints; every third of those also
  // stops early at a coverage threshold.
  if (seed % 3 != 0) {
    const size_t forced = std::min<size_t>(instance.k / 2, 1 + seed % 4);
    const size_t banned = 2 + seed % 5;
    std::vector<uint32_t> draw = rng.SampleWithoutReplacement(
        static_cast<uint32_t>(n), static_cast<uint32_t>(forced + banned));
    instance.options.force_include.assign(draw.begin(),
                                          draw.begin() +
                                              static_cast<ptrdiff_t>(forced));
    instance.options.force_exclude.assign(
        draw.begin() + static_cast<ptrdiff_t>(forced), draw.end());
    instance.label += " constrained";
  }
  if (seed % 3 == 2) {
    instance.options.stop_at_cover = 0.3 + 0.1 * static_cast<double>(seed % 5);
    instance.label += " stop_at_cover";
  }
  return instance;
}

void ExpectIdentical(const Solution& reference, const Solution& other,
                     const std::string& label) {
  // Byte-identical sequences: same items in the same order, and the same
  // incremental covers bit for bit (all executions apply the identical
  // AddNode sequence, so no float tolerance is needed or granted).
  EXPECT_EQ(reference.items, other.items)
      << label << " [" << other.algorithm << "]";
  EXPECT_EQ(reference.cover_after_prefix, other.cover_after_prefix)
      << label << " [" << other.algorithm << "]";
  EXPECT_EQ(reference.cover, other.cover)
      << label << " [" << other.algorithm << "]";
  EXPECT_EQ(reference.item_contributions, other.item_contributions)
      << label << " [" << other.algorithm << "]";
}

TEST(GreedyDifferentialTest, AllExecutionsAgreeOnSeededRandomGraphs) {
  ThreadPool pool1(1), pool2(2), pool8(8);
  ThreadPool* pools[] = {&pool1, &pool2, &pool8};

  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    DiffInstance instance = MakeInstance(seed);
    const std::string& label = instance.label;

    auto plain = SolveGreedy(instance.graph, instance.k, instance.options);
    ASSERT_TRUE(plain.ok()) << label << ": " << plain.status().ToString();
    ASSERT_TRUE(plain->Validate(instance.graph).ok()) << label;

    auto lazy = SolveGreedyLazy(instance.graph, instance.k,
                                instance.options);
    ASSERT_TRUE(lazy.ok()) << label;
    ExpectIdentical(*plain, *lazy, label);

    for (size_t t = 0; t < 3; ++t) {
      ThreadPool* pool = pools[t];
      auto parallel = SolveGreedyParallel(instance.graph, instance.k, pool,
                                          instance.options);
      ASSERT_TRUE(parallel.ok())
          << label << " threads=" << kThreadCounts[t];
      ExpectIdentical(*plain, *parallel,
                      label + " threads=" +
                          std::to_string(kThreadCounts[t]));

      for (size_t batch : kBatchSizes) {
        GreedyOptions options = instance.options;
        options.batch_size = batch;
        auto lazy_parallel = SolveGreedyLazyParallel(
            instance.graph, instance.k, pool, options);
        ASSERT_TRUE(lazy_parallel.ok())
            << label << " threads=" << kThreadCounts[t]
            << " batch=" << batch;
        ExpectIdentical(*plain, *lazy_parallel,
                        label + " threads=" +
                            std::to_string(kThreadCounts[t]) +
                            " batch=" + std::to_string(batch));
      }
    }

    // Constraint semantics hold on every instance that carries them.
    for (size_t i = 0; i < instance.options.force_include.size(); ++i) {
      ASSERT_LT(i, plain->items.size()) << label;
      EXPECT_EQ(plain->items[i], instance.options.force_include[i]) << label;
    }
    for (NodeId banned : instance.options.force_exclude) {
      EXPECT_EQ(std::count(plain->items.begin(), plain->items.end(), banned),
                0)
          << label;
    }
  }
}

TEST(GreedyDifferentialTest, LazyParallelWithNullPoolMatchesPlain) {
  DiffInstance instance = MakeInstance(11);
  auto plain = SolveGreedy(instance.graph, instance.k, instance.options);
  auto lazy_parallel = SolveGreedyLazyParallel(instance.graph, instance.k,
                                               nullptr, instance.options);
  ASSERT_TRUE(plain.ok() && lazy_parallel.ok());
  ExpectIdentical(*plain, *lazy_parallel, instance.label + " null-pool");
}

TEST(GreedyDifferentialTest, OversizedBatchMatchesPlain) {
  // A batch larger than the candidate pool refreshes everything at once —
  // degenerate but must still select the identical sequence.
  DiffInstance instance = MakeInstance(7);
  GreedyOptions options = instance.options;
  options.batch_size = 100000;
  ThreadPool pool(4);
  auto plain = SolveGreedy(instance.graph, instance.k, instance.options);
  auto lazy_parallel = SolveGreedyLazyParallel(instance.graph, instance.k,
                                               &pool, options);
  ASSERT_TRUE(plain.ok() && lazy_parallel.ok());
  ExpectIdentical(*plain, *lazy_parallel, instance.label + " huge-batch");
}

TEST(GreedyDifferentialTest, ThresholdSeedCapacitySweepMatchesPlain) {
  // The CELF heap seed keeps only the top-seed_heap_capacity candidates
  // and pulls the rest back in through exact threshold refills. Tiny
  // capacities force refills constantly (capacity 1 refills on every
  // heap drain); the selected sequence must stay byte-identical to plain
  // greedy for every value.
  ThreadPool pool(4);
  const size_t kCapacities[] = {1, 2, 7, 64};
  for (uint64_t seed = 0; seed < kNumSeeds; seed += 5) {
    DiffInstance instance = MakeInstance(seed);
    auto plain = SolveGreedy(instance.graph, instance.k, instance.options);
    ASSERT_TRUE(plain.ok()) << instance.label;

    for (size_t cap : kCapacities) {
      GreedyOptions options = instance.options;
      options.seed_heap_capacity = cap;
      const std::string label =
          instance.label + " seed_cap=" + std::to_string(cap);

      auto lazy = SolveGreedyLazy(instance.graph, instance.k, options);
      ASSERT_TRUE(lazy.ok()) << label;
      ExpectIdentical(*plain, *lazy, label);

      options.batch_size = 4;
      auto lazy_parallel = SolveGreedyLazyParallel(instance.graph,
                                                   instance.k, &pool,
                                                   options);
      ASSERT_TRUE(lazy_parallel.ok()) << label;
      ExpectIdentical(*plain, *lazy_parallel, label);

      // Capacity 1 drains the kept pool on every selection, so any run
      // with at least two searched rounds must have refilled — proving
      // the sweep actually exercises the refill path.
      if (cap == 1 && lazy->stats.iterations >= 2) {
        EXPECT_GT(lazy->stats.seed_refills, 0u) << label;
        EXPECT_GT(lazy_parallel->stats.seed_refills, 0u) << label;
      }
      // Full-capacity seeds never truncate, so they never refill.
      if (cap >= instance.graph.NumNodes()) {
        EXPECT_EQ(lazy->stats.seed_refills, 0u) << label;
      }
    }
  }
}

TEST(GreedyDifferentialTest, DefaultSeedCapacityCoversSmallInstances) {
  // Small instances (n <= 1024) fit entirely inside the default seed, so
  // the threshold machinery must stay dormant: no refills at all.
  DiffInstance instance = MakeInstance(6);  // unconstrained
  auto lazy = SolveGreedyLazy(instance.graph, instance.k, instance.options);
  ASSERT_TRUE(lazy.ok());
  EXPECT_EQ(lazy->stats.seed_refills, 0u);
}

TEST(GreedyDifferentialTest, SolverStatsArePopulatedAndConsistent) {
  DiffInstance instance = MakeInstance(4);  // a constrained instance
  ThreadPool pool(2);
  GreedyOptions options = instance.options;
  options.batch_size = 4;

  auto plain = SolveGreedy(instance.graph, instance.k, options);
  auto parallel =
      SolveGreedyParallel(instance.graph, instance.k, &pool, options);
  auto lazy = SolveGreedyLazy(instance.graph, instance.k, options);
  auto lazy_parallel = SolveGreedyLazyParallel(instance.graph, instance.k,
                                               &pool, options);
  ASSERT_TRUE(plain.ok() && parallel.ok() && lazy.ok() &&
              lazy_parallel.ok());

  const uint64_t forced = options.force_include.size();
  for (const Solution* sol :
       {&*plain, &*parallel, &*lazy, &*lazy_parallel}) {
    EXPECT_EQ(sol->stats.iterations, sol->items.size() - forced)
        << sol->algorithm;
    EXPECT_GT(sol->stats.gain_evaluations, 0u) << sol->algorithm;
    EXPECT_GE(sol->stats.total_iteration_seconds, 0.0) << sol->algorithm;
    EXPECT_GE(sol->stats.total_iteration_seconds,
              sol->stats.max_iteration_seconds)
        << sol->algorithm;
  }

  // Plain and parallel evaluate the same candidate set each round.
  EXPECT_EQ(parallel->stats.gain_evaluations, plain->stats.gain_evaluations);
  EXPECT_EQ(parallel->stats.threads, 2u);

  // The lazy executions prune: never more evaluations than the full scan,
  // and their heap telemetry is filled in.
  EXPECT_LE(lazy->stats.gain_evaluations, plain->stats.gain_evaluations);
  EXPECT_LE(lazy_parallel->stats.gain_evaluations,
            plain->stats.gain_evaluations);
  EXPECT_GT(lazy->stats.heap_pops, 0u);
  EXPECT_GT(lazy_parallel->stats.heap_pops, 0u);
  EXPECT_GE(lazy->stats.StaleRatio(), 0.0);
  EXPECT_LE(lazy->stats.StaleRatio(), 1.0);
  EXPECT_EQ(lazy_parallel->stats.batch_size, 4u);
  EXPECT_EQ(lazy_parallel->stats.threads, 2u);
  EXPECT_GT(lazy_parallel->stats.parallel_batches, 0u);
  EXPECT_GT(lazy_parallel->stats.PoolUtilization(), 0.0);
  EXPECT_LE(lazy_parallel->stats.PoolUtilization(), 1.0);

  EXPECT_EQ(lazy_parallel->algorithm, "greedy-lazy-parallel");
}

}  // namespace
}  // namespace prefcover
