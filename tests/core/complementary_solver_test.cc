#include "core/complementary_solver.h"

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

TEST(ComplementarySolverTest, GreedyFindsMinimalPrefixOnExample) {
  PreferenceGraph g = MakePaperExampleGraph();
  // Greedy order is B (0.66), D (0.873), ...
  auto r1 = SolveCoverageThreshold(g, 0.6, Variant::kNormalized,
                                   ThresholdAlgorithm::kGreedy);
  ASSERT_TRUE(r1.ok());
  EXPECT_TRUE(r1->reached);
  EXPECT_EQ(r1->set_size, 1u);
  EXPECT_EQ(r1->solution.items, std::vector<NodeId>{1});

  auto r2 = SolveCoverageThreshold(g, 0.8, Variant::kNormalized,
                                   ThresholdAlgorithm::kGreedy);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->reached);
  EXPECT_EQ(r2->set_size, 2u);
  EXPECT_NEAR(r2->solution.cover, 0.873, 1e-9);
}

TEST(ComplementarySolverTest, ZeroThresholdNeedsNothing) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto r = SolveCoverageThreshold(g, 0.0, Variant::kIndependent,
                                  ThresholdAlgorithm::kGreedy);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->reached);
  EXPECT_EQ(r->set_size, 0u);
}

TEST(ComplementarySolverTest, FullCoverageThreshold) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto r = SolveCoverageThreshold(g, 1.0, Variant::kNormalized,
                                  ThresholdAlgorithm::kGreedy);
  ASSERT_TRUE(r.ok());
  // Retaining everything reaches cover 1 (within fp tolerance the solver
  // treats >= threshold).
  EXPECT_EQ(r->set_size, r->reached ? r->set_size : g.NumNodes());
  EXPECT_GE(r->solution.cover, 1.0 - 1e-9);
}

TEST(ComplementarySolverTest, UnreachableThresholdReportsNotReached) {
  // Two isolated nodes, only one can be kept... threshold 1.0 with cover
  // capped below 1 when one node can never be covered: build a graph where
  // even all nodes cover 1, so instead test with an impossible epsilon
  // above achievable cover using a subset: use threshold 1.0 but retain
  // everything is achievable, so craft unreachable via zero-weight node?
  // Simplest: a graph whose total achievable cover with all nodes is 1,
  // but we can create genuinely unreachable thresholds only above 1, which
  // the API rejects. Instead verify the rejection path.
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(SolveCoverageThreshold(g, 1.5, Variant::kIndependent,
                                     ThresholdAlgorithm::kGreedy)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SolveCoverageThreshold(g, -0.1, Variant::kIndependent,
                                     ThresholdAlgorithm::kGreedy)
                  .status()
                  .IsInvalidArgument());
}

TEST(ComplementarySolverTest, BaselinesNeedLargerSetsOnExample) {
  PreferenceGraph g = MakePaperExampleGraph();
  const double threshold = 0.85;
  auto greedy = SolveCoverageThreshold(g, threshold, Variant::kNormalized,
                                       ThresholdAlgorithm::kGreedy);
  auto topw = SolveCoverageThreshold(g, threshold, Variant::kNormalized,
                                     ThresholdAlgorithm::kTopKWeight);
  auto topc = SolveCoverageThreshold(g, threshold, Variant::kNormalized,
                                     ThresholdAlgorithm::kTopKCoverage);
  ASSERT_TRUE(greedy.ok() && topw.ok() && topc.ok());
  EXPECT_EQ(greedy->set_size, 2u);  // {B, D} = 0.873
  EXPECT_GE(topw->set_size, greedy->set_size);
  EXPECT_GE(topc->set_size, greedy->set_size);
}

TEST(ComplementarySolverTest, GreedyNeverLargerThanBaselinesOnRandomGraphs) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    Rng rng(seed);
    ClusteredGraphParams params;
    params.num_nodes = 150;
    params.num_clusters = 15;
    auto g = GenerateClusteredGraph(params, &rng);
    ASSERT_TRUE(g.ok());
    for (double threshold : {0.5, 0.7, 0.9}) {
      auto greedy = SolveCoverageThreshold(
          *g, threshold, Variant::kIndependent, ThresholdAlgorithm::kGreedy);
      auto topw = SolveCoverageThreshold(*g, threshold,
                                         Variant::kIndependent,
                                         ThresholdAlgorithm::kTopKWeight);
      auto topc = SolveCoverageThreshold(*g, threshold,
                                         Variant::kIndependent,
                                         ThresholdAlgorithm::kTopKCoverage);
      ASSERT_TRUE(greedy.ok() && topw.ok() && topc.ok());
      ASSERT_TRUE(greedy->reached);
      EXPECT_LE(greedy->set_size, topw->set_size)
          << "seed " << seed << " threshold " << threshold;
      EXPECT_LE(greedy->set_size, topc->set_size)
          << "seed " << seed << " threshold " << threshold;
    }
  }
}

TEST(ComplementarySolverTest, SolutionCoverConsistentWithItems) {
  Rng rng(13);
  UniformGraphParams params;
  params.num_nodes = 80;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto r = SolveCoverageThreshold(*g, 0.75, Variant::kIndependent,
                                  ThresholdAlgorithm::kGreedy);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->reached);
  EXPECT_GE(r->solution.cover, 0.75);
  EXPECT_EQ(r->solution.items.size(), r->set_size);
  EXPECT_TRUE(r->solution.Validate(*g).ok());
  // Minimality within the greedy order: one fewer item falls short.
  if (r->set_size > 0) {
    EXPECT_LT(r->solution.PrefixCover(r->set_size - 1), 0.75);
  }
}

TEST(ComplementarySolverTest, ThresholdRunsMatchBudgetRunsViaPrefixes) {
  // The direct threshold solver must agree with "solve for k = n, then cut
  // at the smallest qualifying prefix" (Section 3.2's claim).
  Rng rng(29);
  UniformGraphParams params;
  params.num_nodes = 60;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  GreedyOptions options;
  options.variant = Variant::kIndependent;
  auto full = SolveGreedy(*g, g->NumNodes(), options);
  ASSERT_TRUE(full.ok());
  for (double threshold : {0.4, 0.6, 0.8}) {
    auto direct = SolveCoverageThreshold(
        *g, threshold, Variant::kIndependent, ThresholdAlgorithm::kGreedy);
    ASSERT_TRUE(direct.ok());
    size_t expected = full->SmallestPrefixReaching(threshold);
    EXPECT_EQ(direct->set_size, expected) << "threshold " << threshold;
    EXPECT_EQ(direct->solution.items, full->PrefixItems(expected));
  }
}

}  // namespace
}  // namespace prefcover
