#include "core/revenue_cover.h"

#include <algorithm>
#include <limits>
#include <set>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

RevenueCoverOptions UnitOptions(const PreferenceGraph& graph,
                                double capacity) {
  RevenueCoverOptions options;
  options.revenues.assign(graph.NumNodes(), 1.0);
  options.costs.assign(graph.NumNodes(), 1.0);
  options.capacity = capacity;
  return options;
}

TEST(RevenueCoverTest, UnitEconomicsReduceToPlainGreedyCover) {
  // With r = c = 1 and capacity k, the expected revenue equals the plain
  // cover and the selected set achieves the same objective as Algorithm 1.
  PreferenceGraph g = MakePaperExampleGraph();
  auto budgeted = SolveRevenueCover(g, UnitOptions(g, 2.0));
  ASSERT_TRUE(budgeted.ok()) << budgeted.status().ToString();
  auto plain = SolveGreedy(g, 2);
  ASSERT_TRUE(plain.ok());
  EXPECT_NEAR(budgeted->expected_revenue, plain->cover, 1e-9);
  EXPECT_EQ(budgeted->items, plain->items);  // {B, D}
  EXPECT_DOUBLE_EQ(budgeted->total_cost, 2.0);
  EXPECT_NEAR(budgeted->revenue_upper_bound, 1.0, 1e-12);
}

TEST(RevenueCoverTest, RevenueSkewChangesTheSelection) {
  // Make requests for E extremely valuable: the solver must now protect
  // E's demand even though its probability mass is small.
  PreferenceGraph g = MakePaperExampleGraph();
  RevenueCoverOptions options = UnitOptions(g, 1.0);
  options.revenues[4] = 100.0;  // E
  auto sol = SolveRevenueCover(g, options);
  ASSERT_TRUE(sol.ok());
  ASSERT_EQ(sol->items.size(), 1u);
  // With k=1 the best revenue item is E itself (17 * 100 dominates).
  EXPECT_EQ(sol->items[0], 4u);
}

TEST(RevenueCoverTest, CostsSteerAwayFromExpensiveItems) {
  PreferenceGraph g = MakePaperExampleGraph();
  RevenueCoverOptions options = UnitOptions(g, 2.0);
  options.costs[1] = 10.0;  // B no longer affordable
  auto sol = SolveRevenueCover(g, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(std::count(sol->items.begin(), sol->items.end(), 1u), 0);
  EXPECT_LE(sol->total_cost, 2.0 + 1e-12);
}

TEST(RevenueCoverTest, SingletonGuardBeatsCostBenefitTrap) {
  // Classic trap: a cheap item with tiny value has the best gain/cost
  // ratio and exhausts the budget, missing the expensive item worth far
  // more. The guard must rescue the solution.
  GraphBuilder b;
  b.AddNode(0.01);  // the cheap low-value trap item
  NodeId pricey = b.AddNode(0.99);
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  RevenueCoverOptions options;
  options.revenues = {1.0, 1.0};
  options.costs = {0.1, 1.0};
  options.capacity = 1.0;
  auto sol = SolveRevenueCover(*g, options);
  ASSERT_TRUE(sol.ok());
  // gain/cost: cheap = 0.01/0.1 = 0.1; pricey = 0.99/1.0 = 0.99 — here
  // cost-benefit already wins; tighten the trap so the ratio flips.
  options.costs = {0.001, 1.0};
  sol = SolveRevenueCover(*g, options);
  ASSERT_TRUE(sol.ok());
  // cheap ratio = 10 >> pricey 0.99, greedy takes cheap first (0.001
  // budget) and can still afford pricey? capacity 1.0 - 0.001 < 1.0, so
  // no. Expected: the guard returns {pricey}.
  EXPECT_EQ(sol->items, std::vector<NodeId>{pricey});
  EXPECT_FALSE(sol->greedy_won);
  EXPECT_NEAR(sol->expected_revenue, 0.99, 1e-12);
}

TEST(RevenueCoverTest, CapacityBindsTotalCost) {
  Rng rng(11);
  UniformGraphParams params;
  params.num_nodes = 120;
  params.out_degree = 4;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  RevenueCoverOptions options;
  options.revenues.resize(120);
  options.costs.resize(120);
  for (int i = 0; i < 120; ++i) {
    options.revenues[static_cast<size_t>(i)] = rng.NextDouble(0.5, 5.0);
    options.costs[static_cast<size_t>(i)] = rng.NextDouble(0.5, 3.0);
  }
  options.capacity = 20.0;
  auto sol = SolveRevenueCover(*g, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_LE(sol->total_cost, options.capacity + 1e-9);
  EXPECT_GT(sol->expected_revenue, 0.0);
  EXPECT_LE(sol->expected_revenue, sol->revenue_upper_bound + 1e-9);
  std::set<NodeId> unique(sol->items.begin(), sol->items.end());
  EXPECT_EQ(unique.size(), sol->items.size());
}

TEST(RevenueCoverTest, MoreCapacityNeverHurts) {
  Rng rng(12);
  UniformGraphParams params;
  params.num_nodes = 80;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  RevenueCoverOptions options;
  options.revenues.assign(80, 1.0);
  options.costs.resize(80);
  for (int i = 0; i < 80; ++i) {
    options.costs[static_cast<size_t>(i)] = rng.NextDouble(0.5, 2.0);
  }
  double previous = 0.0;
  for (double capacity : {2.0, 5.0, 10.0, 25.0, 60.0}) {
    options.capacity = capacity;
    auto sol = SolveRevenueCover(*g, options);
    ASSERT_TRUE(sol.ok());
    EXPECT_GE(sol->expected_revenue, previous - 1e-9)
        << "capacity " << capacity;
    previous = sol->expected_revenue;
  }
}

TEST(RevenueCoverTest, EvaluateExpectedRevenueMatchesSolver) {
  PreferenceGraph g = MakePaperExampleGraph();
  RevenueCoverOptions options = UnitOptions(g, 2.0);
  options.revenues = {2.0, 1.0, 1.0, 3.0, 1.0};
  auto sol = SolveRevenueCover(g, options);
  ASSERT_TRUE(sol.ok());
  auto eval = EvaluateExpectedRevenue(g, sol->items, options.revenues,
                                      Variant::kIndependent);
  ASSERT_TRUE(eval.ok());
  EXPECT_NEAR(*eval, sol->expected_revenue, 1e-9);
}

TEST(RevenueCoverTest, ValidationErrors) {
  PreferenceGraph g = MakePaperExampleGraph();
  RevenueCoverOptions options;
  options.capacity = 1.0;
  options.revenues.assign(3, 1.0);  // wrong size
  options.costs.assign(5, 1.0);
  EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument());
  options.revenues.assign(5, 1.0);
  options.revenues[2] = 0.0;
  EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument());
  options.revenues[2] = 1.0;
  options.costs[1] = -2.0;
  EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument());
  options.costs[1] = 1.0;
  options.capacity = 0.0;
  EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument());
}

// Every field of RevenueCoverOptions, every way it can be malformed:
// wrong length, zero, negative, NaN and infinity must each surface as
// InvalidArgument — never a crash, never a silently wrong solve.
TEST(RevenueCoverTest, EveryFieldMalformedCorpus) {
  PreferenceGraph g = MakePaperExampleGraph();
  const double kBadValues[] = {0.0, -1.0,
                               std::numeric_limits<double>::quiet_NaN(),
                               std::numeric_limits<double>::infinity(),
                               -std::numeric_limits<double>::infinity()};
  for (double bad : kBadValues) {
    RevenueCoverOptions options = UnitOptions(g, 2.0);
    options.revenues[3] = bad;
    EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument())
        << "revenue " << bad;
  }
  for (double bad : kBadValues) {
    RevenueCoverOptions options = UnitOptions(g, 2.0);
    options.costs[0] = bad;
    EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument())
        << "cost " << bad;
  }
  for (double bad : kBadValues) {
    RevenueCoverOptions options = UnitOptions(g, 2.0);
    options.capacity = bad;
    EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument())
        << "capacity " << bad;
  }
  for (size_t wrong : {0u, 4u, 6u}) {
    RevenueCoverOptions options = UnitOptions(g, 2.0);
    options.revenues.assign(wrong, 1.0);
    EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument())
        << "revenues length " << wrong;
  }
  for (size_t wrong : {0u, 4u, 6u}) {
    RevenueCoverOptions options = UnitOptions(g, 2.0);
    options.costs.assign(wrong, 1.0);
    EXPECT_TRUE(SolveRevenueCover(g, options).status().IsInvalidArgument())
        << "costs length " << wrong;
  }
}

TEST(RevenueCoverTest, NormalizedVariantSupported) {
  PreferenceGraph g = MakePaperExampleGraph();
  RevenueCoverOptions options = UnitOptions(g, 2.0);
  options.variant = Variant::kNormalized;
  auto sol = SolveRevenueCover(g, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_NEAR(sol->expected_revenue, 0.873, 1e-9);
}

TEST(RevenueCoverTest, NothingAffordableYieldsEmptySolution) {
  PreferenceGraph g = MakePaperExampleGraph();
  RevenueCoverOptions options = UnitOptions(g, 0.5);  // all costs are 1
  auto sol = SolveRevenueCover(g, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_TRUE(sol->items.empty());
  EXPECT_DOUBLE_EQ(sol->expected_revenue, 0.0);
}

}  // namespace
}  // namespace prefcover
