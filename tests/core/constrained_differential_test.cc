// Brute-force differential lockdown of the constrained solver: on 40
// seeded small instances x 2 variants x {budget-only, quota-only,
// budget+quota}, the cost-ratio greedy must (a) return a feasible
// solution whenever the exhaustive enumeration finds one, (b) agree with
// it on infeasibility, (c) stay within the proven (1-1/e)/2 factor of
// the optimal constrained cover, and (d) produce byte-identical output
// at every supported SIMD level (scalar is the oracle).
//
// Instances stay at n <= 14 (2^14 subsets) with exactly-representable
// quarter-step costs so budget feasibility carries no rounding noise.

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force_solver.h"
#include "core/constrained_solver.h"
#include "graph/graph_generators.h"
#include "util/random.h"
#include "util/simd_dispatch.h"

namespace prefcover {
namespace {

constexpr uint64_t kNumSeeds = 40;
// Khuller-Moss-Naor: ratio greedy + best singleton is a (1-1/e)/2
// approximation of the budgeted optimum. Quota instances are locked to
// the same factor empirically (seeds are pinned, so this cannot flake).
constexpr double kGuarantee = 0.3160602794142788;  // (1 - 1/e) / 2

class ScopedSimdLevelEnv {
 public:
  explicit ScopedSimdLevelEnv(const char* value) {
    const char* old = std::getenv("PREFCOVER_SIMD_LEVEL");
    if (old != nullptr) saved_ = old;
    ::setenv("PREFCOVER_SIMD_LEVEL", value, 1);
    ReinitActiveSimdLevelForTest();
  }
  ~ScopedSimdLevelEnv() {
    if (!saved_.empty()) {
      ::setenv("PREFCOVER_SIMD_LEVEL", saved_.c_str(), 1);
    } else {
      ::unsetenv("PREFCOVER_SIMD_LEVEL");
    }
    ReinitActiveSimdLevelForTest();
  }

 private:
  std::string saved_;
};

std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar, SimdLevel::kWord};
  if (MaxSupportedSimdLevel() == SimdLevel::kAvx2) {
    levels.push_back(SimdLevel::kAvx2);
  }
  return levels;
}

PreferenceGraph MakeTinyGraph(uint64_t seed, Variant variant) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 3);
  UniformGraphParams params;
  params.num_nodes = static_cast<uint32_t>(8 + seed % 7);  // 8..14
  params.out_degree = static_cast<uint32_t>(2 + seed % 3);
  params.popularity_skew = 0.3 * static_cast<double>(seed % 4);
  params.normalized_out_weights = variant == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

std::vector<double> QuarterStepCosts(size_t n, Rng* rng) {
  std::vector<double> costs(n);
  for (double& c : costs) {
    c = 0.25 * static_cast<double>(1 + rng->NextUint64() % 16);
  }
  return costs;
}

enum class Combo { kBudgetOnly, kQuotaOnly, kBudgetAndQuota };

const char* ComboName(Combo combo) {
  switch (combo) {
    case Combo::kBudgetOnly:
      return "budget";
    case Combo::kQuotaOnly:
      return "quota";
    case Combo::kBudgetAndQuota:
      return "budget+quota";
  }
  return "?";
}

ConstraintSpec MakeSpec(const PreferenceGraph& graph, uint64_t seed,
                        Combo combo) {
  Rng rng(seed * 77 + static_cast<uint64_t>(combo));
  const size_t n = graph.NumNodes();
  ConstraintSpec spec;
  if (combo != Combo::kQuotaOnly) {
    spec.costs = QuarterStepCosts(n, &rng);
    double total = 0.0;
    for (double c : spec.costs) total += c;
    // 20%..65% of the catalog cost, quarter-aligned so sums compare
    // exactly against it.
    spec.budget =
        0.25 *
        static_cast<double>(static_cast<uint64_t>(
            total * (0.2 + 0.15 * static_cast<double>(seed % 4)) / 0.25));
  }
  if (combo != Combo::kBudgetOnly) {
    const uint32_t num_categories =
        static_cast<uint32_t>(2 + rng.NextUint64() % 2);
    spec.categories.resize(n);
    for (size_t v = 0; v < n; ++v) {
      spec.categories[v] = static_cast<uint32_t>(
          (v * 2654435761u + seed) % num_categories);
    }
    spec.quotas.resize(num_categories);
    for (auto& q : spec.quotas) {
      q.min_items = static_cast<uint32_t>(rng.NextUint64() % 2);
      if (rng.NextUint64() % 2 == 0) {
        q.max_items = static_cast<uint32_t>(1 + rng.NextUint64() % 4);
      }
      if (q.max_items < q.min_items) q.max_items = q.min_items;
    }
  }
  return spec;
}

void ExpectFeasible(const ConstraintSpec& spec,
                    const ConstrainedSolution& solved,
                    const std::string& label) {
  double total_cost = 0.0;
  for (NodeId v : solved.solution.items) total_cost += spec.CostOf(v);
  if (spec.HasBudget()) {
    EXPECT_LE(total_cost, spec.budget) << label;
  }
  if (spec.HasQuotas()) {
    std::vector<uint32_t> counts(spec.quotas.size(), 0);
    for (NodeId v : solved.solution.items) ++counts[spec.categories[v]];
    for (size_t c = 0; c < counts.size(); ++c) {
      EXPECT_GE(counts[c], spec.quotas[c].min_items)
          << label << " category " << c;
      EXPECT_LE(counts[c], spec.quotas[c].max_items)
          << label << " category " << c;
    }
  }
}

TEST(ConstrainedDifferential, GreedyFeasibleAndWithinFactorOfBruteForce) {
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
      PreferenceGraph g = MakeTinyGraph(seed, variant);
      for (Combo combo : {Combo::kBudgetOnly, Combo::kQuotaOnly,
                          Combo::kBudgetAndQuota}) {
        const ConstraintSpec spec = MakeSpec(g, seed, combo);
        const std::string label =
            "seed=" + std::to_string(seed) + " variant=" +
            std::string(VariantName(variant)) + " combo=" +
            ComboName(combo);

        ConstrainedCoverOptions options;
        options.variant = variant;
        auto greedy = SolveConstrainedCover(g, spec, options);

        BruteForceOptions bf_options;
        bf_options.variant = variant;
        auto optimal =
            SolveBruteForceConstrained(g, /*max_items=*/0, spec, bf_options);

        if (!greedy.ok()) {
          // Both sides must agree that the instance is infeasible.
          EXPECT_TRUE(greedy.status().IsFailedPrecondition()) << label;
          EXPECT_TRUE(optimal.status().IsFailedPrecondition())
              << label << ": greedy says infeasible, brute force says "
              << optimal.status().ToString();
          continue;
        }
        ASSERT_TRUE(optimal.ok())
            << label << ": " << optimal.status().ToString();
        ExpectFeasible(spec, *greedy, label);
        EXPECT_LE(greedy->solution.cover, optimal->cover + 1e-12) << label;
        EXPECT_GE(greedy->solution.cover,
                  kGuarantee * optimal->cover - 1e-12)
            << label << ": greedy " << greedy->solution.cover
            << " vs optimal " << optimal->cover;
      }
    }
  }
}

TEST(ConstrainedDifferential, ByteIdenticalAcrossSimdLevels) {
  for (uint64_t seed = 0; seed < kNumSeeds; ++seed) {
    for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
      PreferenceGraph g = MakeTinyGraph(seed, variant);
      for (Combo combo : {Combo::kBudgetOnly, Combo::kQuotaOnly,
                          Combo::kBudgetAndQuota}) {
        const ConstraintSpec spec = MakeSpec(g, seed, combo);
        ConstrainedCoverOptions options;
        options.variant = variant;

        Result<ConstrainedSolution> reference = Status::Internal("unset");
        {
          ScopedSimdLevelEnv env("scalar");
          reference = SolveConstrainedCover(g, spec, options);
        }
        for (SimdLevel level : SupportedLevels()) {
          if (level == SimdLevel::kScalar) continue;
          ScopedSimdLevelEnv env(
              std::string(SimdLevelName(level)).c_str());
          auto other = SolveConstrainedCover(g, spec, options);
          const std::string label =
              "seed=" + std::to_string(seed) + " variant=" +
              std::string(VariantName(variant)) + " combo=" +
              ComboName(combo) + " level=" +
              std::string(SimdLevelName(level));
          ASSERT_EQ(reference.ok(), other.ok()) << label;
          if (!reference.ok()) continue;
          EXPECT_EQ(reference->solution.items, other->solution.items)
              << label;
          EXPECT_EQ(reference->solution.cover, other->solution.cover)
              << label;
          EXPECT_EQ(reference->solution.cover_after_prefix,
                    other->solution.cover_after_prefix)
              << label;
          EXPECT_EQ(reference->total_cost, other->total_cost) << label;
          EXPECT_EQ(reference->greedy_won, other->greedy_won) << label;
        }
      }
    }
  }
}

}  // namespace
}  // namespace prefcover
