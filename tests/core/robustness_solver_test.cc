// Robustness properties of the greedy family: cooperative cancellation
// (explicit and deadline) always yields a valid nonempty greedy prefix,
// and checkpoint/resume re-joins the deterministic selection order so a
// resumed solve is identical to an uninterrupted one — for every
// execution and both variants.

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/checkpoint.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "obs/metrics.h"
#include "util/cancellation.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

enum class Execution { kPlain, kParallel, kLazy, kLazyParallel };

const Execution kAllExecutions[] = {Execution::kPlain, Execution::kParallel,
                                    Execution::kLazy,
                                    Execution::kLazyParallel};
const Variant kBothVariants[] = {Variant::kIndependent,
                                 Variant::kNormalized};

const char* ExecutionName(Execution execution) {
  switch (execution) {
    case Execution::kPlain:
      return "plain";
    case Execution::kParallel:
      return "parallel";
    case Execution::kLazy:
      return "lazy";
    case Execution::kLazyParallel:
      return "lazy_parallel";
  }
  return "?";
}

Result<Solution> RunExecution(Execution execution, const PreferenceGraph& graph,
                     size_t k, const GreedyOptions& options) {
  ThreadPool pool(4);
  switch (execution) {
    case Execution::kPlain:
      return SolveGreedy(graph, k, options);
    case Execution::kParallel:
      return SolveGreedyParallel(graph, k, &pool, options);
    case Execution::kLazy:
      return SolveGreedyLazy(graph, k, options);
    case Execution::kLazyParallel:
      return SolveGreedyLazyParallel(graph, k, &pool, options);
  }
  return Status::Internal("unreachable");
}

PreferenceGraph MakeGraph(uint32_t n, bool normalized, uint64_t seed = 11) {
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = n;
  params.out_degree = 5;
  params.normalized_out_weights = normalized;
  auto g = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

uint64_t CancelledCount() {
  return obs::MetricsRegistry::Global()
      .GetCounter(solver_metric::kCancelled)
      ->Value();
}

TEST(CancellableSolveTest, UntruncatedRunHasCleanStats) {
  PreferenceGraph graph = MakeGraph(80, false);
  CancelToken token;
  token.SetTimeout(3600.0);  // armed, never fires
  GreedyOptions options;
  options.cancel = &token;
  const uint64_t cancelled_before = CancelledCount();
  auto solution = SolveGreedyLazy(graph, 10, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_EQ(solution->items.size(), 10u);
  EXPECT_FALSE(solution->stats.truncated);
  EXPECT_EQ(CancelledCount(), cancelled_before);
}

TEST(CancellableSolveTest,
     PreCancelledSolveReturnsExactlyTheFirstSelection) {
  // Even a token that is already tripped when the solve starts yields one
  // valid selection — never an error, never an empty solution. The one
  // item must be the same one an uninterrupted run selects first.
  for (Variant variant : kBothVariants) {
    PreferenceGraph graph =
        MakeGraph(80, variant == Variant::kNormalized);
    GreedyOptions reference_options;
    reference_options.variant = variant;
    auto reference = SolveGreedy(graph, 10, reference_options);
    ASSERT_TRUE(reference.ok());

    for (Execution execution : kAllExecutions) {
      SCOPED_TRACE(std::string(ExecutionName(execution)) + "/" +
                   std::string(VariantName(variant)));
      CancelToken token;
      token.Cancel();
      GreedyOptions options;
      options.variant = variant;
      options.cancel = &token;
      const uint64_t cancelled_before = CancelledCount();
      auto solution = RunExecution(execution, graph, 10, options);
      ASSERT_TRUE(solution.ok()) << solution.status().ToString();
      ASSERT_EQ(solution->items.size(), 1u);
      EXPECT_EQ(solution->items[0], reference->items[0]);
      EXPECT_TRUE(solution->stats.truncated);
      EXPECT_EQ(CancelledCount(), cancelled_before + 1);
    }
  }
}

TEST(CancellableSolveTest, ExpiredDeadlineTruncatesToAGreedyPrefix) {
  // A deadline in the past behaves exactly like a pre-tripped token.
  PreferenceGraph graph = MakeGraph(80, false);
  auto reference = SolveGreedy(graph, 10);
  ASSERT_TRUE(reference.ok());
  CancelToken token;
  token.SetTimeout(-1.0);
  GreedyOptions options;
  options.cancel = &token;
  auto solution = SolveGreedy(graph, 10, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->items.size(), 1u);
  EXPECT_EQ(solution->items[0], reference->items[0]);
  EXPECT_TRUE(solution->stats.truncated);
}

TEST(CancellableSolveTest, TightDeadlineMidSolveYieldsValidPrefix) {
  // A 1ms budget on a problem that takes much longer: the solve must come
  // back promptly with some nonempty prefix of the deterministic
  // selection order, not an error and not a hang.
  PreferenceGraph graph = MakeGraph(20'000, false);
  const size_t k = 2'000;
  auto reference = SolveGreedyLazy(graph, k);
  ASSERT_TRUE(reference.ok());

  CancelToken token;
  token.SetTimeout(0.001);
  GreedyOptions options;
  options.cancel = &token;
  auto solution = SolveGreedy(graph, k, options);
  ASSERT_TRUE(solution.ok());
  EXPECT_TRUE(solution->stats.truncated);
  ASSERT_GE(solution->items.size(), 1u);
  ASSERT_LT(solution->items.size(), k);
  for (size_t i = 0; i < solution->items.size(); ++i) {
    EXPECT_EQ(solution->items[i], reference->items[i]) << "position " << i;
  }
}

TEST(CheckpointResumeTest, ResumePrefixRejoinsDeterministicOrder) {
  // Cutting the reference solve at any point and resuming from that
  // prefix must reproduce the identical final solution, in every
  // execution and both variants — the property that makes kill-resume
  // byte-identical.
  const size_t k = 12;
  for (Variant variant : kBothVariants) {
    PreferenceGraph graph =
        MakeGraph(60, variant == Variant::kNormalized);
    GreedyOptions reference_options;
    reference_options.variant = variant;
    auto reference = SolveGreedy(graph, k, reference_options);
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(reference->items.size(), k);

    for (Execution execution : kAllExecutions) {
      for (size_t cut : {size_t{1}, size_t{5}, k - 1, k}) {
        SCOPED_TRACE(std::string(ExecutionName(execution)) + "/" +
                     std::string(VariantName(variant)) + "/cut=" +
                     std::to_string(cut));
        GreedyOptions options;
        options.variant = variant;
        options.checkpoint.resume_prefix = std::vector<NodeId>(
            reference->items.begin(),
            reference->items.begin() + static_cast<long>(cut));
        auto resumed = RunExecution(execution, graph, k, options);
        ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
        EXPECT_EQ(resumed->items, reference->items);
        EXPECT_DOUBLE_EQ(resumed->cover, reference->cover);
        EXPECT_FALSE(resumed->stats.truncated);
      }
    }
  }
}

TEST(CheckpointResumeTest, PeriodicCheckpointFeedsAFaithfulResume) {
  // End-to-end through the real file: solve with checkpointing on, read
  // the last checkpoint back, validate it, resume from it, and land on
  // the identical solution.
  PreferenceGraph graph = MakeGraph(60, false);
  const size_t k = 12;
  std::string path =
      ::testing::TempDir() + "/robustness_solver_test_periodic.ckpt";
  std::remove(path.c_str());

  GreedyOptions options;
  options.checkpoint.path = path;
  options.checkpoint.every_rounds = 5;
  auto first = SolveGreedyLazy(graph, k, options);
  ASSERT_TRUE(first.ok());

  auto ckpt = ReadCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  // every_rounds=5 with k=12: the last periodic write was at round 10.
  EXPECT_EQ(ckpt->prefix.size(), 10u);
  EXPECT_EQ(ckpt->k, k);

  GreedyOptions resume_options;
  auto prefix =
      ValidateCheckpointForResume(*ckpt, graph, k, resume_options);
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  resume_options.checkpoint.resume_prefix = *prefix;
  auto resumed = SolveGreedy(graph, k, resume_options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->items, first->items);
}

TEST(CheckpointResumeTest, TruncatedSolveCheckpointsItsFinalPrefix) {
  // A cancelled solve force-writes its prefix so a later --resume loses
  // nothing, even between periodic writes.
  PreferenceGraph graph = MakeGraph(60, false);
  const size_t k = 12;
  std::string path =
      ::testing::TempDir() + "/robustness_solver_test_truncated.ckpt";
  std::remove(path.c_str());

  CancelToken token;
  token.Cancel();
  GreedyOptions options;
  options.cancel = &token;
  options.checkpoint.path = path;
  options.checkpoint.every_rounds = 100;  // periodic writes never fire
  auto solution = SolveGreedyLazy(graph, k, options);
  ASSERT_TRUE(solution.ok());
  ASSERT_EQ(solution->items.size(), 1u);

  auto ckpt = ReadCheckpoint(path);
  ASSERT_TRUE(ckpt.ok()) << ckpt.status().ToString();
  EXPECT_EQ(ckpt->prefix, solution->items);
}

TEST(CheckpointResumeTest, InvalidResumePrefixesRejected) {
  PreferenceGraph graph = MakeGraph(60, false);
  const size_t k = 5;

  GreedyOptions out_of_range;
  out_of_range.checkpoint.resume_prefix = {
      static_cast<NodeId>(graph.NumNodes())};
  EXPECT_TRUE(
      SolveGreedy(graph, k, out_of_range).status().IsInvalidArgument());

  GreedyOptions duplicated;
  duplicated.checkpoint.resume_prefix = {3, 3};
  EXPECT_TRUE(
      SolveGreedy(graph, k, duplicated).status().IsInvalidArgument());

  GreedyOptions over_budget;
  over_budget.checkpoint.resume_prefix = {0, 1, 2, 3, 4, 5};
  EXPECT_TRUE(
      SolveGreedy(graph, k, over_budget).status().IsInvalidArgument());

  GreedyOptions excluded;
  excluded.force_exclude = {3};
  excluded.checkpoint.resume_prefix = {3};
  EXPECT_TRUE(
      SolveGreedy(graph, k, excluded).status().IsInvalidArgument());
}

TEST(CheckpointResumeTest, ResumeAcrossExecutionsIsLegal) {
  // The options hash excludes execution knobs, so a checkpoint written by
  // one execution resumes under another (that is the operational point:
  // restart on a machine with a different core count).
  PreferenceGraph graph = MakeGraph(60, false);
  const size_t k = 12;
  std::string path =
      ::testing::TempDir() + "/robustness_solver_test_cross.ckpt";
  std::remove(path.c_str());

  GreedyOptions options;
  options.checkpoint.path = path;
  options.checkpoint.every_rounds = 4;
  ThreadPool pool(4);
  auto first = SolveGreedyLazyParallel(graph, k, &pool, options);
  ASSERT_TRUE(first.ok());

  auto ckpt = ReadCheckpoint(path);
  ASSERT_TRUE(ckpt.ok());
  GreedyOptions plain_options;
  plain_options.batch_size = 7;  // execution knobs may change freely
  auto prefix =
      ValidateCheckpointForResume(*ckpt, graph, k, plain_options);
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  plain_options.checkpoint.resume_prefix = *prefix;
  auto resumed = SolveGreedy(graph, k, plain_options);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->items, first->items);
}

}  // namespace
}  // namespace prefcover
