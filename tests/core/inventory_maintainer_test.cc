#include "core/inventory_maintainer.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "util/random.h"

namespace prefcover {
namespace {

// A churning catalog with enough structure for meaningful covers.
DynamicPreferenceGraph MakeCatalog(uint32_t items, Rng* rng) {
  DynamicPreferenceGraph g;
  std::vector<StableId> ids;
  for (uint32_t i = 0; i < items; ++i) {
    ids.push_back(g.AddItem(rng->NextDouble(0.1, 10.0)));
  }
  for (uint32_t i = 0; i < items; ++i) {
    uint32_t degree = 2 + static_cast<uint32_t>(rng->NextBounded(4));
    for (uint32_t d = 0; d < degree; ++d) {
      StableId to = ids[rng->NextBounded(items)];
      if (to == ids[i]) continue;
      EXPECT_TRUE(
          g.UpsertEdge(ids[i], to, rng->NextDouble(0.1, 0.9)).ok());
    }
  }
  return g;
}

// Cover of the maintainer's current set, freshly greedy-solved baseline,
// on the current snapshot.
double FreshGreedyCover(const DynamicPreferenceGraph& g, size_t k,
                        Variant variant) {
  auto snap = g.Snapshot();
  EXPECT_TRUE(snap.ok());
  GreedyOptions options;
  options.variant = variant;
  auto sol = SolveGreedyLazy(*snap, std::min(k, snap->NumNodes()), options);
  EXPECT_TRUE(sol.ok());
  return sol->cover;
}

TEST(MaintainerTest, FirstMaintainSolves) {
  Rng rng(1);
  DynamicPreferenceGraph g = MakeCatalog(100, &rng);
  MaintainerOptions options;
  options.k = 20;
  InventoryMaintainer maintainer(&g, options);
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kResolved);
  EXPECT_EQ(maintainer.retained().size(), 20u);
  EXPECT_NEAR(maintainer.current_cover(),
              FreshGreedyCover(g, 20, Variant::kIndependent), 1e-12);
}

TEST(MaintainerTest, NoChangeIsNoop) {
  Rng rng(2);
  DynamicPreferenceGraph g = MakeCatalog(50, &rng);
  MaintainerOptions options;
  options.k = 10;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kNone);
  EXPECT_EQ(maintainer.full_resolves(), 1u);
}

TEST(MaintainerTest, SmallWeightDriftOnlyEvaluates) {
  Rng rng(3);
  DynamicPreferenceGraph g = MakeCatalog(100, &rng);
  MaintainerOptions options;
  options.k = 20;
  options.resolve_drift_tolerance = 0.5;  // very tolerant
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());

  // Nudge one non-retained item's weight slightly.
  StableId some_item = 0;
  while (std::find(maintainer.retained().begin(),
                   maintainer.retained().end(),
                   some_item) != maintainer.retained().end()) {
    ++some_item;
  }
  ASSERT_TRUE(g.SetItemWeight(some_item, g.ItemWeight(some_item) * 1.01)
                  .ok());
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kEvaluated);
  EXPECT_EQ(maintainer.full_resolves(), 1u);  // no second solve
}

TEST(MaintainerTest, RemovedRetainedItemTriggersRepair) {
  Rng rng(4);
  DynamicPreferenceGraph g = MakeCatalog(100, &rng);
  MaintainerOptions options;
  options.k = 20;
  options.resolve_drift_tolerance = 1.0;  // never full-resolve on drift
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());

  StableId victim = maintainer.retained()[0];
  ASSERT_TRUE(g.RemoveItem(victim).ok());
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kRepaired);
  EXPECT_EQ(maintainer.retained().size(), 20u);  // refilled
  EXPECT_EQ(std::count(maintainer.retained().begin(),
                       maintainer.retained().end(), victim),
            0);
  EXPECT_EQ(maintainer.repairs(), 1u);
}

TEST(MaintainerTest, LargeDriftTriggersResolve) {
  Rng rng(5);
  DynamicPreferenceGraph g = MakeCatalog(100, &rng);
  MaintainerOptions options;
  options.k = 10;
  options.resolve_drift_tolerance = 0.01;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());

  // Crush the weight of every retained item: the old set's cover share
  // collapses, forcing a re-solve.
  for (StableId id : maintainer.retained()) {
    ASSERT_TRUE(g.SetItemWeight(id, 1e-6).ok());
  }
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kResolved);
  EXPECT_EQ(maintainer.full_resolves(), 2u);
  EXPECT_NEAR(maintainer.current_cover(),
              FreshGreedyCover(g, 10, Variant::kIndependent), 1e-12);
}

TEST(MaintainerTest, ForcedResolveCadence) {
  Rng rng(6);
  DynamicPreferenceGraph g = MakeCatalog(60, &rng);
  MaintainerOptions options;
  options.k = 10;
  options.resolve_drift_tolerance = 1.0;
  options.force_resolve_every = 3;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());
  int resolved = 0;
  for (int step = 0; step < 9; ++step) {
    ASSERT_TRUE(g.SetItemWeight(static_cast<StableId>(step % 60),
                                rng.NextDouble(0.1, 10.0))
                    .ok());
    auto action = maintainer.Maintain();
    ASSERT_TRUE(action.ok());
    if (*action == MaintenanceAction::kResolved) ++resolved;
  }
  EXPECT_EQ(resolved, 3);  // every third changed step
}

TEST(MaintainerTest, RepairedSetQualityNearFreshGreedy) {
  // After a long random churn handled only by repairs, the maintained
  // cover should remain within the drift tolerance of a fresh greedy
  // solve — that is the contract the tolerance expresses.
  Rng rng(7);
  DynamicPreferenceGraph g = MakeCatalog(150, &rng);
  MaintainerOptions options;
  options.k = 30;
  options.resolve_drift_tolerance = 0.05;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());

  for (int step = 0; step < 60; ++step) {
    uint64_t pick = rng.NextBounded(10);
    if (pick < 6) {
      StableId item = static_cast<StableId>(rng.NextBounded(150));
      if (g.HasItem(item)) {
        ASSERT_TRUE(
            g.SetItemWeight(item, rng.NextDouble(0.1, 10.0)).ok());
      }
    } else if (pick < 8) {
      StableId from = static_cast<StableId>(rng.NextBounded(150));
      StableId to = static_cast<StableId>(rng.NextBounded(150));
      if (g.HasItem(from) && g.HasItem(to) && from != to) {
        ASSERT_TRUE(
            g.UpsertEdge(from, to, rng.NextDouble(0.1, 0.9)).ok());
      }
    } else {
      StableId item = static_cast<StableId>(rng.NextBounded(150));
      if (g.HasItem(item) && g.NumItems() > 50) {
        ASSERT_TRUE(g.RemoveItem(item).ok());
      }
    }
    ASSERT_TRUE(maintainer.Maintain().ok());
  }
  double fresh = FreshGreedyCover(g, 30, Variant::kIndependent);
  EXPECT_GE(maintainer.current_cover(),
            fresh - options.resolve_drift_tolerance - 1e-9);
  // The set is always valid: distinct live items, right size.
  std::set<StableId> unique(maintainer.retained().begin(),
                            maintainer.retained().end());
  EXPECT_EQ(unique.size(), maintainer.retained().size());
  EXPECT_EQ(unique.size(), std::min<size_t>(30, g.NumItems()));
  for (StableId id : unique) EXPECT_TRUE(g.HasItem(id));
}

TEST(MaintainerTest, NormalizedVariantSupported) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(3.0, "A");
  StableId b = g.AddItem(2.0, "B");
  StableId c = g.AddItem(1.0, "C");
  ASSERT_TRUE(g.UpsertEdge(a, b, 0.6).ok());
  ASSERT_TRUE(g.UpsertEdge(c, b, 0.9).ok());
  MaintainerOptions options;
  options.variant = Variant::kNormalized;
  options.k = 1;
  InventoryMaintainer maintainer(&g, options);
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  // B covers itself (2/6) + 0.6 of A (3/6) + 0.9 of C (1/6) = best single.
  EXPECT_EQ(maintainer.retained(), std::vector<StableId>{b});
}

TEST(MaintainerTest, BudgetLargerThanCatalogIsCapped) {
  DynamicPreferenceGraph g;
  for (int i = 0; i < 5; ++i) g.AddItem(1.0);
  MaintainerOptions options;
  options.k = 10;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());
  EXPECT_EQ(maintainer.retained().size(), 5u);
  EXPECT_NEAR(maintainer.current_cover(), 1.0, 1e-12);
}

TEST(MaintainerTest, CatalogShrinkingBelowBudgetRepairs) {
  Rng rng(21);
  DynamicPreferenceGraph g = MakeCatalog(12, &rng);
  MaintainerOptions options;
  options.k = 10;
  options.resolve_drift_tolerance = 1.0;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());
  // Remove catalog items until fewer than k remain.
  for (StableId id = 0; id < 5; ++id) {
    ASSERT_TRUE(g.RemoveItem(id).ok());
  }
  ASSERT_TRUE(maintainer.Maintain().ok());
  EXPECT_EQ(maintainer.retained().size(), 7u);  // all live items
  for (StableId id : maintainer.retained()) {
    EXPECT_TRUE(g.HasItem(id));
  }
}

TEST(MaintainerTest, ExplicitResolveResetsBaseline) {
  Rng rng(22);
  DynamicPreferenceGraph g = MakeCatalog(50, &rng);
  MaintainerOptions options;
  options.k = 10;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Resolve().ok());
  double first = maintainer.last_solved_cover();
  ASSERT_TRUE(g.SetItemWeight(0, 20.0).ok());  // big shift
  ASSERT_TRUE(maintainer.Resolve().ok());
  EXPECT_EQ(maintainer.full_resolves(), 2u);
  EXPECT_NE(maintainer.last_solved_cover(), first);
  // Next Maintain with no further change is a no-op.
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kNone);
}

TEST(MaintainerTest, EdgeUpdatesAreObserved) {
  // Adding a strong alternative edge should raise the evaluated cover of
  // the unchanged retained set.
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(5.0, "A");
  StableId b = g.AddItem(5.0, "B");
  MaintainerOptions options;
  options.k = 1;
  options.resolve_drift_tolerance = 1.0;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());
  EXPECT_EQ(maintainer.retained(), std::vector<StableId>{a});
  EXPECT_NEAR(maintainer.current_cover(), 0.5, 1e-12);
  ASSERT_TRUE(g.UpsertEdge(b, a, 0.8).ok());  // A now covers B at 0.8
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kEvaluated);
  EXPECT_NEAR(maintainer.current_cover(), 0.5 + 0.5 * 0.8, 1e-12);
}

// After a burst of node and edge removals, a forced re-solve must land on
// exactly the cover a from-scratch greedy run achieves on the mutated
// catalog — maintenance never leaves money on the table relative to a
// fresh solve at the same budget.
TEST(MaintainerTest, RemovalsThenResolveMatchesFreshSolve) {
  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    Rng rng(variant == Variant::kNormalized ? 31 : 13);
    // Out-weight sums stay <= 1 so the catalog is valid under BOTH
    // variants (MakeCatalog's random degrees violate Normalized).
    DynamicPreferenceGraph g;
    std::vector<StableId> ids;
    for (uint32_t i = 0; i < 80; ++i) {
      ids.push_back(g.AddItem(rng.NextDouble(0.1, 10.0)));
    }
    for (uint32_t i = 0; i < 80; ++i) {
      ASSERT_TRUE(
          g.UpsertEdge(ids[i], ids[(i + 13) % 80], 0.45).ok());
      ASSERT_TRUE(
          g.UpsertEdge(ids[i], ids[(i + 29) % 80], 0.35).ok());
    }
    MaintainerOptions options;
    options.variant = variant;
    options.k = 15;
    InventoryMaintainer maintainer(&g, options);
    ASSERT_TRUE(maintainer.Resolve().ok());

    // Remove a third of the catalog — including retained items — plus a
    // sweep of edges.
    std::vector<StableId> retained = maintainer.retained();
    for (size_t i = 0; i < retained.size(); i += 2) {
      ASSERT_TRUE(g.RemoveItem(retained[i]).ok());
    }
    for (StableId id = 1; id < 80; id += 4) {
      if (g.HasItem(id)) {
        ASSERT_TRUE(g.RemoveItem(id).ok());
      }
    }
    for (StableId from = 0; from < 80; ++from) {
      for (StableId to = 0; to < 80; ++to) {
        if (g.EdgeProbability(from, to) > 0.0 && (from + to) % 7 == 0) {
          ASSERT_TRUE(g.RemoveEdge(from, to).ok());
        }
      }
    }

    ASSERT_TRUE(maintainer.Resolve().ok());
    EXPECT_EQ(maintainer.retained().size(), 15u);
    for (StableId id : maintainer.retained()) {
      EXPECT_TRUE(g.HasItem(id)) << "retained a removed item";
    }
    EXPECT_NEAR(maintainer.current_cover(),
                FreshGreedyCover(g, 15, variant), 1e-12)
        << VariantName(variant);
  }
}

// Same, through the Maintain() path: removing retained items triggers a
// repair, and the repaired set must stay valid (alive, right size) with a
// cover no better than fresh greedy and within the adequacy bound the
// repair policy promises.
TEST(MaintainerTest, RemovalsThenMaintainKeepsSetValid) {
  Rng rng(47);
  DynamicPreferenceGraph g = MakeCatalog(100, &rng);
  MaintainerOptions options;
  options.k = 20;
  options.resolve_drift_tolerance = 1.0;  // force the repair path
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());

  std::vector<StableId> victims(maintainer.retained().begin(),
                                maintainer.retained().begin() + 5);
  for (StableId id : victims) ASSERT_TRUE(g.RemoveItem(id).ok());

  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kRepaired);
  EXPECT_EQ(maintainer.retained().size(), 20u);
  std::set<StableId> alive(maintainer.retained().begin(),
                           maintainer.retained().end());
  EXPECT_EQ(alive.size(), 20u) << "duplicate retained ids";
  for (StableId id : alive) EXPECT_TRUE(g.HasItem(id));
  for (StableId id : victims) EXPECT_EQ(alive.count(id), 0u);
  double fresh = FreshGreedyCover(g, 20, Variant::kIndependent);
  EXPECT_LE(maintainer.current_cover(), fresh + 1e-12);
  EXPECT_GE(maintainer.current_cover(), 0.5 * fresh)
      << "repair fell far below fresh greedy";
}

// Renormalization edge cases flowing through maintenance: zero-weight
// items may join the catalog (weight renormalizes around them), and
// removals that strand would-be-dangling edges must not corrupt the
// maintained set.
TEST(MaintainerTest, ZeroWeightAndDanglingEdgeChurn) {
  DynamicPreferenceGraph g;
  StableId a = g.AddItem(4.0, "A");
  StableId b = g.AddItem(4.0, "B");
  StableId c = g.AddItem(2.0, "C");
  ASSERT_TRUE(g.UpsertEdge(b, a, 0.5).ok());
  ASSERT_TRUE(g.UpsertEdge(c, a, 1.0).ok());

  MaintainerOptions options;
  options.k = 1;
  options.resolve_drift_tolerance = 1.0;
  InventoryMaintainer maintainer(&g, options);
  ASSERT_TRUE(maintainer.Maintain().ok());
  // A covers itself (0.4), half of B (0.2) and all of C (0.2): clear win.
  EXPECT_EQ(maintainer.retained(), std::vector<StableId>{a});
  EXPECT_NEAR(maintainer.current_cover(), 0.8, 1e-12);

  // A zero-weight arrival renormalizes nothing (weights are shares of
  // demand; zero demand adds zero) but is a graph change to observe.
  StableId z = g.AddItem(0.0, "Z");
  ASSERT_TRUE(g.UpsertEdge(z, a, 1.0).ok());
  auto action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kEvaluated);
  EXPECT_NEAR(maintainer.current_cover(), 0.8, 1e-12);

  // Removing the retained item strands B's and C's edges toward it; the
  // repair must pick the next-best live item without tripping on them.
  ASSERT_TRUE(g.RemoveItem(a).ok());
  action = maintainer.Maintain();
  ASSERT_TRUE(action.ok());
  EXPECT_EQ(*action, MaintenanceAction::kRepaired);
  // B now holds 4/6 of demand and covers nothing else; C holds 2/6.
  EXPECT_EQ(maintainer.retained(), std::vector<StableId>{b});
  EXPECT_NEAR(maintainer.current_cover(), 4.0 / 6.0, 1e-12);
}

}  // namespace
}  // namespace prefcover
