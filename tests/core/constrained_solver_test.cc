// Unit and property battery for the constrained-cover solver family:
// every ConstraintSpec field's shape validation, degenerate constraints
// (zero budget, infeasible quotas, a single affordable item), a fuzzed
// feasibility property (whatever the costs/quotas, the returned solution
// satisfies them), byte-identity of the unit-cost unconstrained solve
// with SolveGreedy, the (1-1/e)/2 singleton guard, and the Pareto
// frontier's non-domination/monotonicity contract.

#include "core/constrained_solver.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// Deterministic instance shapes shared with the greedy equivalence
// suite: 40-200 nodes, varying degree and popularity skew.
PreferenceGraph MakeSeededGraph(uint64_t seed, Variant variant) {
  Rng rng(seed * 0x9E3779B97F4A7C15ULL + 7);
  UniformGraphParams params;
  params.num_nodes = static_cast<uint32_t>(40 + (seed * 13) % 160);
  params.out_degree = static_cast<uint32_t>(3 + seed % 6);
  params.popularity_skew = 0.4 + 0.4 * static_cast<double>(seed % 4);
  params.normalized_out_weights = variant == Variant::kNormalized;
  auto g = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(g.ok()) << g.status().ToString();
  return std::move(g).value();
}

// Exactly-representable random costs in {0.25, 0.5, ..., 4.0} so cost
// sums carry no rounding noise into budget-feasibility checks.
std::vector<double> FuzzCosts(size_t n, Rng* rng) {
  std::vector<double> costs(n);
  for (double& c : costs) {
    c = 0.25 * static_cast<double>(1 + rng->NextUint64() % 16);
  }
  return costs;
}

std::vector<uint32_t> RoundRobinCategories(size_t n,
                                           uint32_t num_categories) {
  std::vector<uint32_t> categories(n);
  for (size_t v = 0; v < n; ++v) {
    categories[v] = static_cast<uint32_t>(v % num_categories);
  }
  return categories;
}

// Asserts that `solved` satisfies every constraint in `spec` and that
// its accounting fields agree with a from-scratch evaluation.
void ExpectFeasible(const PreferenceGraph& graph, const ConstraintSpec& spec,
                    size_t k, const ConstrainedSolution& solved,
                    Variant variant, const std::string& label) {
  const Solution& sol = solved.solution;
  EXPECT_LE(sol.items.size(), k == 0 ? graph.NumNodes() : k) << label;
  std::vector<bool> seen(graph.NumNodes(), false);
  double total_cost = 0.0;
  for (NodeId v : sol.items) {
    ASSERT_LT(v, graph.NumNodes()) << label;
    EXPECT_FALSE(seen[v]) << label << " duplicate item " << v;
    seen[v] = true;
    total_cost += spec.CostOf(v);
  }
  EXPECT_EQ(total_cost, solved.total_cost) << label;
  if (spec.HasBudget()) {
    EXPECT_LE(solved.total_cost, spec.budget) << label;
  }
  if (spec.HasQuotas()) {
    std::vector<uint32_t> counts(spec.quotas.size(), 0);
    for (NodeId v : sol.items) ++counts[spec.categories[v]];
    ASSERT_EQ(counts.size(), solved.category_counts.size()) << label;
    for (size_t c = 0; c < counts.size(); ++c) {
      EXPECT_EQ(counts[c], solved.category_counts[c]) << label;
      EXPECT_GE(counts[c], spec.quotas[c].min_items)
          << label << " category " << c;
      EXPECT_LE(counts[c], spec.quotas[c].max_items)
          << label << " category " << c;
    }
  }
  auto expected_cover = EvaluateCover(graph, sol.items, variant);
  ASSERT_TRUE(expected_cover.ok()) << label;
  // Incremental kernel accumulation vs from-scratch evaluation: same
  // value up to a few ulps of summation-order noise.
  EXPECT_NEAR(sol.cover, *expected_cover, 1e-9) << label;
  ASSERT_EQ(sol.cover_after_prefix.size(), sol.items.size()) << label;
  if (!sol.items.empty()) {
    EXPECT_EQ(sol.cover, sol.cover_after_prefix.back()) << label;
  }
}

// --- spec shape validation, every field ---------------------------------

TEST(ConstraintSpecValidation, DefaultSpecIsValid) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  EXPECT_TRUE(ValidateConstraintSpec(g, ConstraintSpec()).ok());
}

TEST(ConstraintSpecValidation, CostsLengthMismatch) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  ConstraintSpec spec;
  spec.costs.assign(g.NumNodes() + 1, 1.0);
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument());
  spec.costs.assign(g.NumNodes() - 1, 1.0);
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument());
}

TEST(ConstraintSpecValidation, CostsMustBeFiniteAndPositive) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  for (double bad : {0.0, -1.0, kInf, -kInf, kNaN}) {
    ConstraintSpec spec;
    spec.costs.assign(g.NumNodes(), 1.0);
    spec.costs[g.NumNodes() / 2] = bad;
    EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument())
        << "cost " << bad;
  }
}

TEST(ConstraintSpecValidation, BudgetMustNotBeNaNOrNegative) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  ConstraintSpec spec;
  spec.budget = kNaN;
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument());
  spec.budget = -1.0;
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument());
  spec.budget = 0.0;  // degenerate but valid
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).ok());
}

TEST(ConstraintSpecValidation, CategoriesAndQuotasMustComeTogether) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), 3);
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument())
      << "categories without quotas";
  spec.categories.clear();
  spec.quotas.resize(3);
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument())
      << "quotas without categories";
}

TEST(ConstraintSpecValidation, CategoriesLengthMismatch) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes() - 1, 3);
  spec.quotas.resize(3);
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument());
}

TEST(ConstraintSpecValidation, CategoryIdOutOfRange) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), 3);
  spec.quotas.resize(3);
  spec.categories[0] = 3;  // quotas has ids 0..2
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument());
}

TEST(ConstraintSpecValidation, QuotaMinAboveMax) {
  PreferenceGraph g = MakeSeededGraph(1, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), 2);
  spec.quotas.resize(2);
  spec.quotas[1].min_items = 3;
  spec.quotas[1].max_items = 2;
  EXPECT_TRUE(ValidateConstraintSpec(g, spec).IsInvalidArgument());
}

// --- degenerate constraints ---------------------------------------------

TEST(ConstrainedSolver, ZeroBudgetYieldsEmptySolution) {
  PreferenceGraph g = MakeSeededGraph(2, Variant::kIndependent);
  ConstraintSpec spec;
  spec.budget = 0.0;
  auto solved = SolveConstrainedCover(g, spec);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_TRUE(solved->solution.items.empty());
  EXPECT_EQ(solved->total_cost, 0.0);
  EXPECT_EQ(solved->solution.cover, 0.0);
}

TEST(ConstrainedSolver, NothingAffordableYieldsEmptySolution) {
  PreferenceGraph g = MakeSeededGraph(2, Variant::kIndependent);
  ConstraintSpec spec;
  spec.costs.assign(g.NumNodes(), 2.0);
  spec.budget = 1.0;
  auto solved = SolveConstrainedCover(g, spec);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_TRUE(solved->solution.items.empty());
}

TEST(ConstrainedSolver, SingleAffordableItemIsSelected) {
  PreferenceGraph g = MakeSeededGraph(3, Variant::kIndependent);
  const NodeId affordable = static_cast<NodeId>(g.NumNodes() / 2);
  ConstraintSpec spec;
  spec.costs.assign(g.NumNodes(), 10.0);
  spec.costs[affordable] = 1.0;
  spec.budget = 1.5;
  auto solved = SolveConstrainedCover(g, spec);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  ASSERT_EQ(solved->solution.items.size(), 1u);
  EXPECT_EQ(solved->solution.items[0], affordable);
  EXPECT_EQ(solved->total_cost, 1.0);
}

TEST(ConstrainedSolver, QuotaMinAboveCategorySizeIsFailedPrecondition) {
  PreferenceGraph g = MakeSeededGraph(4, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), 4);
  spec.quotas.resize(4);
  spec.quotas[2].min_items = static_cast<uint32_t>(g.NumNodes());
  auto solved = SolveConstrainedCover(g, spec);
  EXPECT_TRUE(solved.status().IsFailedPrecondition())
      << solved.status().ToString();
}

TEST(ConstrainedSolver, QuotaMinimaAboveItemBudgetIsFailedPrecondition) {
  PreferenceGraph g = MakeSeededGraph(4, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), 4);
  spec.quotas.resize(4);
  for (auto& q : spec.quotas) q.min_items = 2;  // 8 minima, k = 4
  ConstrainedCoverOptions options;
  options.max_items = 4;
  auto solved = SolveConstrainedCover(g, spec, options);
  EXPECT_TRUE(solved.status().IsFailedPrecondition())
      << solved.status().ToString();
}

TEST(ConstrainedSolver, QuotaMinimaAboveBudgetIsFailedPrecondition) {
  PreferenceGraph g = MakeSeededGraph(4, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), 2);
  spec.quotas.resize(2);
  spec.quotas[0].min_items = 3;
  spec.quotas[1].min_items = 3;
  spec.costs.assign(g.NumNodes(), 1.0);
  spec.budget = 5.0;  // cheapest completion costs 6
  auto solved = SolveConstrainedCover(g, spec);
  EXPECT_TRUE(solved.status().IsFailedPrecondition())
      << solved.status().ToString();
}

// --- fuzzed feasibility property ----------------------------------------

TEST(ConstrainedSolverProperty, SolutionsAlwaysFeasible) {
  for (uint64_t seed = 0; seed < 30; ++seed) {
    for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
      PreferenceGraph g = MakeSeededGraph(seed, variant);
      Rng rng(seed * 1000 + 17);
      const size_t n = g.NumNodes();

      ConstraintSpec spec;
      spec.costs = FuzzCosts(n, &rng);
      double total = 0.0;
      for (double c : spec.costs) total += c;
      // Budgets from starved to generous across seeds.
      spec.budget = total * (0.05 + 0.3 * static_cast<double>(seed % 4));
      const uint32_t num_categories =
          static_cast<uint32_t>(2 + rng.NextUint64() % 4);
      spec.categories = RoundRobinCategories(n, num_categories);
      spec.quotas.resize(num_categories);
      for (auto& q : spec.quotas) {
        // min 0-1 keeps minima cheap enough to stay feasible under the
        // starved budgets; max occasionally binding.
        q.min_items = static_cast<uint32_t>(rng.NextUint64() % 2);
        if (rng.NextUint64() % 2 == 0) {
          q.max_items = static_cast<uint32_t>(1 + rng.NextUint64() % 8);
        }
      }
      for (auto& q : spec.quotas) {
        q.max_items = std::max(q.max_items, q.min_items);
      }
      ConstrainedCoverOptions options;
      options.variant = variant;
      options.max_items = 4 + seed % 24;

      const std::string label = "seed=" + std::to_string(seed) +
                                " variant=" +
                                std::string(VariantName(variant));
      auto solved = SolveConstrainedCover(g, spec, options);
      if (solved.status().IsFailedPrecondition()) {
        // The fuzzed minima can exceed k or the budget; that must be a
        // clean error, never an infeasible "solution".
        continue;
      }
      ASSERT_TRUE(solved.ok()) << label << ": " << solved.status().ToString();
      ExpectFeasible(g, spec, options.max_items, *solved, variant, label);
    }
  }
}

// --- unit costs + no constraints == plain greedy, byte for byte ---------

TEST(ConstrainedSolver, UnitCostsUnconstrainedMatchesGreedyByteIdentically) {
  for (uint64_t seed = 0; seed < 20; ++seed) {
    for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
      PreferenceGraph g = MakeSeededGraph(seed, variant);
      const size_t k = 1 + seed % 24;
      GreedyOptions greedy_options;
      greedy_options.variant = variant;
      auto greedy = SolveGreedy(g, k, greedy_options);
      ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();

      ConstrainedCoverOptions options;
      options.variant = variant;
      options.max_items = k;
      auto solved = SolveConstrainedCover(g, ConstraintSpec(), options);
      ASSERT_TRUE(solved.ok()) << solved.status().ToString();

      const std::string label = "seed=" + std::to_string(seed);
      EXPECT_EQ(greedy->items, solved->solution.items) << label;
      EXPECT_EQ(greedy->cover, solved->solution.cover) << label;
      EXPECT_EQ(greedy->cover_after_prefix,
                solved->solution.cover_after_prefix)
          << label;
      EXPECT_EQ(greedy->item_contributions,
                solved->solution.item_contributions)
          << label;
      EXPECT_TRUE(solved->greedy_won) << label;
    }
  }
}

TEST(ConstrainedSolver, UnitCostByteIdentityHoldsAtScale) {
  Rng rng(99);
  UniformGraphParams params;
  params.num_nodes = 20'000;
  params.out_degree = 6;
  params.popularity_skew = 0.9;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  constexpr size_t kItems = 400;

  auto greedy = SolveGreedy(*g, kItems);
  ASSERT_TRUE(greedy.ok()) << greedy.status().ToString();
  ConstrainedCoverOptions options;
  options.max_items = kItems;
  auto solved = SolveConstrainedCover(*g, ConstraintSpec(), options);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_EQ(greedy->items, solved->solution.items);
  EXPECT_EQ(greedy->cover, solved->solution.cover);
  EXPECT_EQ(greedy->cover_after_prefix, solved->solution.cover_after_prefix);
}

// --- the (1-1/e)/2 singleton guard --------------------------------------

// The classic budgeted-greedy trap: a cheap low-gain item with the best
// ratio exhausts the budget's headroom for the expensive high-gain one.
// The ratio greedy alone returns the crumb; the singleton guard must
// return the feast.
TEST(ConstrainedSolver, SingletonGuardBeatsRatioGreedyTrap) {
  GraphBuilder b;
  const NodeId feast = b.AddNode(0.998, "feast");
  b.AddNode(0.002, "crumb");
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok()) << g.status().ToString();

  ConstraintSpec spec;
  spec.costs = {1.0, 0.001};  // ratio(crumb) ~ 2.0 > ratio(feast) ~ 1.0
  spec.budget = 1.0;
  auto solved = SolveConstrainedCover(*g, spec);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  ASSERT_EQ(solved->solution.items.size(), 1u);
  EXPECT_EQ(solved->solution.items[0], feast);
  EXPECT_FALSE(solved->greedy_won);
  EXPECT_EQ(solved->total_cost, 1.0);
}

// --- quota mechanics -----------------------------------------------------

TEST(ConstrainedSolver, MaximumQuotaCapsACategory) {
  PreferenceGraph g = MakeSeededGraph(5, Variant::kIndependent);
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), 2);
  spec.quotas.resize(2);
  spec.quotas[0].max_items = 1;
  ConstrainedCoverOptions options;
  options.max_items = 10;
  auto solved = SolveConstrainedCover(g, spec, options);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_LE(solved->category_counts[0], 1u);
  ExpectFeasible(g, spec, options.max_items, *solved,
                 Variant::kIndependent, "max-quota");
}

TEST(ConstrainedSolver, MinimumQuotasAreFilledFirst) {
  PreferenceGraph g = MakeSeededGraph(6, Variant::kIndependent);
  const uint32_t num_categories = 4;
  ConstraintSpec spec;
  spec.categories = RoundRobinCategories(g.NumNodes(), num_categories);
  spec.quotas.resize(num_categories);
  spec.quotas[3].min_items = 3;
  ConstrainedCoverOptions options;
  options.max_items = 5;
  auto solved = SolveConstrainedCover(g, spec, options);
  ASSERT_TRUE(solved.ok()) << solved.status().ToString();
  EXPECT_GE(solved->category_counts[3], 3u);
  // The quota fill runs before free selection: the first items already
  // satisfy the minimum.
  uint32_t in_category = 0;
  for (size_t i = 0; i < 3; ++i) {
    if (spec.categories[solved->solution.items[i]] == 3) ++in_category;
  }
  EXPECT_EQ(in_category, 3u);
}

// --- Pareto frontier -----------------------------------------------------

TEST(ParetoFrontier, NonDominatedAndMonotone) {
  for (uint64_t seed : {7u, 8u, 9u}) {
    PreferenceGraph g = MakeSeededGraph(seed, Variant::kIndependent);
    Rng rng(seed);
    ParetoSweepOptions options;
    options.costs = FuzzCosts(g.NumNodes(), &rng);
    options.num_points = 12;
    auto frontier = SolveParetoFrontier(g, options);
    ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
    ASSERT_FALSE(frontier->empty());
    for (size_t i = 1; i < frontier->size(); ++i) {
      const ParetoPoint& prev = (*frontier)[i - 1];
      const ParetoPoint& next = (*frontier)[i];
      EXPECT_LE(prev.total_cost, next.total_cost) << "seed " << seed;
      EXPECT_LT(prev.cover, next.cover) << "seed " << seed;
      EXPECT_LE(prev.budget, next.budget) << "seed " << seed;
    }
    for (const ParetoPoint& point : *frontier) {
      EXPECT_LE(point.total_cost, point.budget);
    }
  }
}

TEST(ParetoFrontier, PointsMatchDirectSolves) {
  PreferenceGraph g = MakeSeededGraph(10, Variant::kIndependent);
  Rng rng(10);
  ParetoSweepOptions options;
  options.costs = FuzzCosts(g.NumNodes(), &rng);
  options.budgets = {2.0, 8.0, 32.0};
  auto frontier = SolveParetoFrontier(g, options);
  ASSERT_TRUE(frontier.ok()) << frontier.status().ToString();
  for (const ParetoPoint& point : *frontier) {
    ConstraintSpec spec;
    spec.costs = options.costs;
    spec.budget = point.budget;
    auto solved = SolveConstrainedCover(g, spec);
    ASSERT_TRUE(solved.ok()) << solved.status().ToString();
    EXPECT_EQ(point.items, solved->solution.items);
    EXPECT_EQ(point.cover, solved->solution.cover);
    EXPECT_EQ(point.total_cost, solved->total_cost);
  }
}

TEST(ParetoFrontier, RejectsMalformedSchedules) {
  PreferenceGraph g = MakeSeededGraph(11, Variant::kIndependent);
  ParetoSweepOptions options;
  options.budgets = {1.0, -2.0};
  EXPECT_TRUE(
      SolveParetoFrontier(g, options).status().IsInvalidArgument());
  options.budgets = {1.0, kInf};
  EXPECT_TRUE(
      SolveParetoFrontier(g, options).status().IsInvalidArgument());
  options.budgets.clear();
  options.num_points = 0;
  EXPECT_TRUE(
      SolveParetoFrontier(g, options).status().IsInvalidArgument());
}

}  // namespace
}  // namespace prefcover
