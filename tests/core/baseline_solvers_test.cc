#include "core/baseline_solvers.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "graph/graph_generators.h"

namespace prefcover {
namespace {

constexpr NodeId kA = 0, kB = 1;

TEST(TopKWeightTest, PicksBestSellers) {
  // Example 1.1: the naive top-2 by weight is {A, B} (B ties with C at
  // 0.22; smaller id wins), covering 77%.
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveTopKWeight(g, 2, Variant::kNormalized);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items, (std::vector<NodeId>{kA, kB}));
  EXPECT_NEAR(sol->cover, 0.77, 1e-9);
  EXPECT_TRUE(sol->Validate(g).ok());
}

TEST(TopKWeightTest, OrderedByWeightDescending) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveTopKWeight(g, 5, Variant::kIndependent);
  ASSERT_TRUE(sol.ok());
  for (size_t i = 1; i < sol->items.size(); ++i) {
    EXPECT_GE(g.NodeWeight(sol->items[i - 1]),
              g.NodeWeight(sol->items[i]));
  }
}

TEST(StandaloneCoverageTest, PaperExampleValues) {
  PreferenceGraph g = MakePaperExampleGraph();
  // C({B}) = 0.22 + 0.33*(2/3) + 0.22*1 = 0.66.
  EXPECT_NEAR(StandaloneCoverage(g, kB), 0.66, 1e-9);
  // C({A}) = 0.33 (no in-edges).
  EXPECT_NEAR(StandaloneCoverage(g, kA), 0.33, 1e-9);
  // C({D}) = 0.06 + 0.17*0.9 = 0.213.
  EXPECT_NEAR(StandaloneCoverage(g, 3), 0.213, 1e-9);
}

TEST(TopKCoverageTest, PicksByStandaloneCoverage) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveTopKCoverage(g, 2, Variant::kNormalized);
  ASSERT_TRUE(sol.ok());
  // Standalone coverages: B=0.66, C=0.554, A=0.33, D=0.213, E=0.17.
  EXPECT_EQ(sol->items, (std::vector<NodeId>{kB, 2}));
  EXPECT_TRUE(sol->Validate(g).ok());
  // TopK-C misses the optimum because B and C cover overlapping requests —
  // exactly the overlap-blindness the paper attributes to this baseline.
  EXPECT_LT(sol->cover, 0.873);
}

TEST(TopKCoverageTest, OverlapBlindnessLeavesGapToGreedy) {
  // On the paper's example, TopK-C picks {B, C} whose standalone covers
  // overlap almost entirely (each covers the other): 0.774 — barely above
  // the naive TopK-W's 0.77 and far below the greedy/optimal 0.873. This
  // is the overlap-blindness the paper attributes to this baseline.
  PreferenceGraph g = MakePaperExampleGraph();
  auto by_c = SolveTopKCoverage(g, 2, Variant::kNormalized);
  auto by_w = SolveTopKWeight(g, 2, Variant::kNormalized);
  ASSERT_TRUE(by_c.ok() && by_w.ok());
  EXPECT_NEAR(by_c->cover, 0.774, 1e-9);
  EXPECT_NEAR(by_w->cover, 0.77, 1e-9);
  EXPECT_LT(by_c->cover, 0.873 - 0.09);
}

TEST(RandomSolverTest, ProducesValidDistinctItems) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(17);
  auto sol = SolveRandom(g, 3, Variant::kIndependent, &rng);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items.size(), 3u);
  std::set<NodeId> unique(sol->items.begin(), sol->items.end());
  EXPECT_EQ(unique.size(), 3u);
  EXPECT_TRUE(sol->Validate(g).ok());
}

TEST(RandomSolverTest, DeterministicInSeed) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng1(5), rng2(5);
  auto a = SolveRandom(g, 2, Variant::kIndependent, &rng1);
  auto b = SolveRandom(g, 2, Variant::kIndependent, &rng2);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->items, b->items);
}

TEST(RandomBestOfTest, NeverWorseThanSingleDraw) {
  Rng rng(23);
  UniformGraphParams params;
  params.num_nodes = 50;
  params.out_degree = 4;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  Rng solver_rng(99);
  auto best10 = SolveRandomBestOf(*g, 10, Variant::kIndependent,
                                  &solver_rng, 10);
  ASSERT_TRUE(best10.ok());
  // Re-draw 10 singles with the same stream start; the best-of result must
  // equal the max of them.
  Rng replay(99);
  double best_single = 0.0;
  for (int t = 0; t < 10; ++t) {
    auto single = SolveRandom(*g, 10, Variant::kIndependent, &replay);
    ASSERT_TRUE(single.ok());
    best_single = std::max(best_single, single->cover);
  }
  EXPECT_NEAR(best10->cover, best_single, 1e-12);
  EXPECT_EQ(best10->algorithm, "random-best-of-10");
}

TEST(RandomBestOfTest, ZeroTrialsRejected) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(1);
  EXPECT_TRUE(SolveRandomBestOf(g, 1, Variant::kIndependent, &rng, 0)
                  .status()
                  .IsInvalidArgument());
}

TEST(BaselineOrderingTest, GreedyDominatesBaselinesOnRandomGraphs) {
  // The paper's qualitative result (Figure 4c): Greedy >= TopK-C and
  // Greedy >= TopK-W and Greedy >= Random on every instance (greedy
  // dominance is not a theorem, but holds overwhelmingly; we assert with a
  // small epsilon over several seeds).
  for (uint64_t seed : {101u, 102u, 103u, 104u}) {
    Rng rng(seed);
    ClusteredGraphParams params;
    params.num_nodes = 200;
    params.num_clusters = 20;
    auto g = GenerateClusteredGraph(params, &rng);
    ASSERT_TRUE(g.ok());
    const size_t k = 30;
    auto greedy = SolveGreedy(*g, k);
    auto topw = SolveTopKWeight(*g, k, Variant::kIndependent);
    auto topc = SolveTopKCoverage(*g, k, Variant::kIndependent);
    Rng rrng(seed);
    auto random = SolveRandomBestOf(*g, k, Variant::kIndependent, &rrng, 10);
    ASSERT_TRUE(greedy.ok() && topw.ok() && topc.ok() && random.ok());
    EXPECT_GE(greedy->cover, topw->cover - 1e-9) << "seed " << seed;
    EXPECT_GE(greedy->cover, topc->cover - 1e-9) << "seed " << seed;
    EXPECT_GE(greedy->cover, random->cover - 1e-9) << "seed " << seed;
  }
}

TEST(BaselineSolversTest, BudgetValidation) {
  PreferenceGraph g = MakePaperExampleGraph();
  Rng rng(1);
  EXPECT_FALSE(SolveTopKWeight(g, 6, Variant::kIndependent).ok());
  EXPECT_FALSE(SolveTopKCoverage(g, 6, Variant::kIndependent).ok());
  EXPECT_FALSE(SolveRandom(g, 6, Variant::kIndependent, &rng).ok());
}

}  // namespace
}  // namespace prefcover
