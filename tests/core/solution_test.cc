// Direct tests of the Solution object's integrity checks and helpers.

#include "core/solution.h"

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"

namespace prefcover {
namespace {

Solution ValidSolution(const PreferenceGraph& g) {
  auto sol = SolveGreedy(g, 2);
  EXPECT_TRUE(sol.ok());
  return std::move(sol).value();
}

TEST(SolutionValidateTest, AcceptsSolverOutput) {
  PreferenceGraph g = MakePaperExampleGraph();
  Solution sol = ValidSolution(g);
  EXPECT_TRUE(sol.Validate(g).ok());
}

TEST(SolutionValidateTest, RejectsOutOfRangeItem) {
  PreferenceGraph g = MakePaperExampleGraph();
  Solution sol = ValidSolution(g);
  sol.items[0] = 99;
  EXPECT_TRUE(sol.Validate(g).IsInternal());
}

TEST(SolutionValidateTest, RejectsDuplicateItems) {
  PreferenceGraph g = MakePaperExampleGraph();
  Solution sol = ValidSolution(g);
  sol.items[1] = sol.items[0];
  EXPECT_TRUE(sol.Validate(g).IsInternal());
}

TEST(SolutionValidateTest, RejectsCoverMismatch) {
  PreferenceGraph g = MakePaperExampleGraph();
  Solution sol = ValidSolution(g);
  sol.cover += 0.01;
  EXPECT_TRUE(sol.Validate(g).IsInternal());
}

TEST(SolutionValidateTest, RejectsPrefixLengthMismatch) {
  PreferenceGraph g = MakePaperExampleGraph();
  Solution sol = ValidSolution(g);
  sol.cover_after_prefix.pop_back();
  EXPECT_TRUE(sol.Validate(g).IsInternal());
}

TEST(SolutionValidateTest, RejectsInconsistentFinalPrefix) {
  PreferenceGraph g = MakePaperExampleGraph();
  Solution sol = ValidSolution(g);
  // Shift the final prefix cover but keep `cover` consistent with the
  // exact evaluation: only the prefix/final consistency check can fire.
  sol.cover_after_prefix.back() += 0.005;
  sol.cover_after_prefix.front() = sol.cover_after_prefix.back();
  EXPECT_TRUE(sol.Validate(g).IsInternal());
}

TEST(SolutionHelpersTest, PrefixQueries) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 4);
  ASSERT_TRUE(sol.ok());
  EXPECT_DOUBLE_EQ(sol->PrefixCover(0), 0.0);
  EXPECT_DOUBLE_EQ(sol->PrefixCover(4), sol->cover);
  EXPECT_TRUE(sol->PrefixItems(0).empty());
  EXPECT_EQ(sol->PrefixItems(2).size(), 2u);
  EXPECT_EQ(sol->PrefixItems(2)[0], sol->items[0]);
}

TEST(SolutionHelpersTest, ItemCoverageOfRetainedIsOne) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto sol = SolveGreedy(g, 3);
  ASSERT_TRUE(sol.ok());
  for (NodeId v : sol->items) {
    EXPECT_DOUBLE_EQ(sol->ItemCoverage(g, v), 1.0);
  }
}

}  // namespace
}  // namespace prefcover
