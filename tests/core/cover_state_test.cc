// Property tests: the incremental CoverState (Algorithms 2-5) must agree
// exactly with the from-scratch oracle in cover_function.h, on every prefix
// of every insertion order, for both variants.

#include "core/cover_state.h"

#include <thread>
#include <tuple>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

class CoverStatePropertyTest
    : public ::testing::TestWithParam<std::tuple<Variant, uint64_t>> {
 protected:
  Variant variant() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }

  PreferenceGraph MakeRandomGraph(Rng* rng) {
    UniformGraphParams params;
    params.num_nodes = 80;
    params.out_degree = 6;
    params.normalized_out_weights = variant() == Variant::kNormalized;
    auto g = GenerateUniformGraph(params, rng);
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
};

TEST_P(CoverStatePropertyTest, IncrementalCoverMatchesOracleOnEveryPrefix) {
  Rng rng(seed());
  PreferenceGraph g = MakeRandomGraph(&rng);
  CoverState state(&g, variant());
  Bitset retained(g.NumNodes());

  std::vector<NodeId> order(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) order[v] = v;
  rng.Shuffle(&order);

  for (NodeId v : order) {
    state.AddNode(v);
    retained.Set(v);
    double exact = EvaluateCover(g, retained, variant());
    ASSERT_NEAR(state.cover(), exact, 1e-9)
        << "after adding " << state.NumRetained() << " nodes";
  }
  EXPECT_NEAR(state.cover(), 1.0, 1e-9);
}

TEST_P(CoverStatePropertyTest, GainEqualsCoverDelta) {
  Rng rng(seed() + 1000);
  PreferenceGraph g = MakeRandomGraph(&rng);
  CoverState state(&g, variant());

  std::vector<NodeId> order(g.NumNodes());
  for (NodeId v = 0; v < g.NumNodes(); ++v) order[v] = v;
  rng.Shuffle(&order);

  for (size_t i = 0; i < 30; ++i) {
    NodeId v = order[i];
    double before = state.cover();
    double predicted_gain = state.GainOf(v);
    state.AddNode(v);
    ASSERT_NEAR(state.cover() - before, predicted_gain, 1e-9)
        << "node " << v << " step " << i;
  }
}

TEST_P(CoverStatePropertyTest, ItemContributionsMatchOracle) {
  Rng rng(seed() + 2000);
  PreferenceGraph g = MakeRandomGraph(&rng);
  CoverState state(&g, variant());
  Bitset retained(g.NumNodes());
  for (NodeId v = 0; v < 25; ++v) {
    state.AddNode(v);
    retained.Set(v);
  }
  std::vector<double> exact =
      ComputeItemCoverContributions(g, retained, variant());
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    ASSERT_NEAR(state.item_contributions()[v], exact[v], 1e-9)
        << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, CoverStatePropertyTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Values(1, 2, 3, 4, 5)),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(CoverStateTest, InitialStateIsEmpty) {
  PreferenceGraph g = MakePaperExampleGraph();
  CoverState state(&g, Variant::kIndependent);
  EXPECT_DOUBLE_EQ(state.cover(), 0.0);
  EXPECT_EQ(state.NumRetained(), 0u);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_FALSE(state.IsRetained(v));
    EXPECT_DOUBLE_EQ(state.item_contributions()[v], 0.0);
  }
}

TEST(CoverStateTest, PaperExampleGains) {
  // Example 3.2's first iteration: gain(B) = 66%.
  PreferenceGraph g = MakePaperExampleGraph();
  CoverState state(&g, Variant::kNormalized);
  EXPECT_NEAR(state.GainOf(1), 0.66, 1e-9);   // B
  EXPECT_NEAR(state.GainOf(0), 0.33, 1e-9);   // A (no in-edges)
  EXPECT_NEAR(state.GainOf(3), 0.213, 1e-9);  // D = 0.06 + 0.9*0.17
  EXPECT_NEAR(state.GainOf(4), 0.17, 1e-9);   // E

  // Second iteration (Example 3.2): after B, the marginal gain of A drops
  // to 11% (the 1/3 of W(A) not accepting B) and C's own coverage drops to
  // 0 (everyone wanting C takes B); C's remaining gain is covering others
  // via in-edges A->C (0.33*0.2) and D->C (0.06*0.8). D stays at 21.3%.
  state.AddNode(1);
  EXPECT_NEAR(state.GainOf(0), 0.11, 1e-9);
  EXPECT_NEAR(state.GainOf(3), 0.213, 1e-9);
  EXPECT_NEAR(state.GainOf(2), 0.33 * 0.2 + 0.06 * 0.8, 1e-9);
  state.AddNode(3);
  EXPECT_NEAR(state.cover(), 0.873, 1e-9);
}

TEST(CoverStateTest, ItemCoverageAfterPaperSolution) {
  PreferenceGraph g = MakePaperExampleGraph();
  CoverState state(&g, Variant::kNormalized);
  state.AddNode(1);  // B
  state.AddNode(3);  // D
  EXPECT_NEAR(state.ItemCoverage(0), 2.0 / 3.0, 1e-12);  // A: 67%
  EXPECT_DOUBLE_EQ(state.ItemCoverage(1), 1.0);
  EXPECT_DOUBLE_EQ(state.ItemCoverage(2), 1.0);           // C: 100%
  EXPECT_DOUBLE_EQ(state.ItemCoverage(4), 0.9);           // E: 90%
}

TEST(CoverStateTest, ItemCoverageOfZeroWeightNode) {
  GraphBuilder b;
  NodeId v = b.AddNode(1.0);
  NodeId z = b.AddNode(0.0);
  ASSERT_TRUE(b.AddEdge(v, z, 0.5).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  CoverState state(&*g, Variant::kIndependent);
  EXPECT_DOUBLE_EQ(state.ItemCoverage(z), 0.0);  // unretained, zero weight
  state.AddNode(z);
  EXPECT_DOUBLE_EQ(state.ItemCoverage(z), 1.0);
}

TEST(CoverStateTest, ResetRestoresEmptyState) {
  PreferenceGraph g = MakePaperExampleGraph();
  CoverState state(&g, Variant::kIndependent);
  state.AddNode(1);
  state.AddNode(3);
  state.Reset();
  EXPECT_DOUBLE_EQ(state.cover(), 0.0);
  EXPECT_EQ(state.NumRetained(), 0u);
  EXPECT_FALSE(state.IsRetained(1));
  // State behaves identically after reset.
  EXPECT_NEAR(state.GainOf(1), 0.66, 1e-9);
}

TEST(CoverStateTest, SelfLoopDoesNotInflateGain) {
  // A self-loop (as produced by the VC reduction) must not be counted as
  // an in-neighbor gain of its own node.
  GraphBuilder b;
  NodeId v = b.AddNode(0.6);
  NodeId u = b.AddNode(0.4);
  ASSERT_TRUE(b.AddEdge(v, v, 0.5).ok());
  ASSERT_TRUE(b.AddEdge(v, u, 0.5).ok());
  GraphValidationOptions options;
  options.allow_self_loops = true;
  auto g = b.Finalize(options);
  ASSERT_TRUE(g.ok());
  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    CoverState state(&*g, variant);
    EXPECT_NEAR(state.GainOf(v), 0.6, 1e-12) << VariantName(variant);
    state.AddNode(v);
    double exact = EvaluateCover(*g, state.retained(), variant);
    EXPECT_NEAR(state.cover(), exact, 1e-12);
  }
}

TEST(CoverStateTest, GainIsThreadSafeForConcurrentReads) {
  Rng rng(77);
  UniformGraphParams params;
  params.num_nodes = 500;
  params.out_degree = 8;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  CoverState state(&*g, Variant::kIndependent);
  for (NodeId v = 0; v < 50; ++v) state.AddNode(v);

  // Serial reference.
  std::vector<double> expected(g->NumNodes());
  for (NodeId v = 50; v < g->NumNodes(); ++v) expected[v] = state.GainOf(v);

  std::vector<double> observed(g->NumNodes(), 0.0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (NodeId v = 50 + static_cast<NodeId>(t);
           v < g->NumNodes(); v += 4) {
        observed[v] = state.GainOf(v);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (NodeId v = 50; v < g->NumNodes(); ++v) {
    EXPECT_DOUBLE_EQ(observed[v], expected[v]) << "node " << v;
  }
}

}  // namespace
}  // namespace prefcover
