#include "core/solver_stats.h"

#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace prefcover {
namespace {

TEST(SolverStatsTest, EmptyRunReportsZerosEverywhere) {
  SolverStats stats;
  EXPECT_EQ(stats.iterations, 0u);
  EXPECT_DOUBLE_EQ(stats.StaleRatio(), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgIterationSeconds(), 0.0);
  EXPECT_DOUBLE_EQ(stats.PoolUtilization(), 0.0);
  // ToString must not divide by zero either.
  EXPECT_FALSE(stats.ToString().empty());
}

TEST(SolverStatsTest, SerialRunHasNoPoolOrHeapActivity) {
  SolverStats stats;
  stats.iterations = 10;
  stats.gain_evaluations = 1000;
  stats.total_iteration_seconds = 0.5;
  stats.threads = 1;
  // Serial plain greedy: no heap, no parallel dispatch.
  EXPECT_DOUBLE_EQ(stats.StaleRatio(), 0.0);
  EXPECT_DOUBLE_EQ(stats.AvgIterationSeconds(), 0.05);
  EXPECT_DOUBLE_EQ(stats.PoolUtilization(), 0.0);
}

TEST(SolverStatsTest, StaleRatioIsFractionOfPops) {
  SolverStats stats;
  stats.heap_pops = 200;
  stats.stale_refreshes = 50;
  EXPECT_DOUBLE_EQ(stats.StaleRatio(), 0.25);
}

TEST(SolverStatsTest, ZeroThreadsDoesNotDivideByZero) {
  SolverStats stats;
  stats.parallel_batches = 4;
  stats.parallel_items = 100;
  stats.threads = 0;
  EXPECT_DOUBLE_EQ(stats.PoolUtilization(), 0.0);
}

TEST(SolverStatsTest, SaturatedPoolClampsUtilizationToOne) {
  SolverStats stats;
  stats.threads = 4;
  stats.parallel_batches = 10;
  // 100 items per dispatch on 4 threads: over-subscribed, clamps to 1.
  stats.parallel_items = 1000;
  EXPECT_DOUBLE_EQ(stats.PoolUtilization(), 1.0);
}

TEST(SolverStatsTest, PartialUtilizationIsItemsPerSlot) {
  SolverStats stats;
  stats.threads = 8;
  stats.parallel_batches = 10;
  stats.parallel_items = 40;  // 4 items per dispatch on 8 threads
  EXPECT_DOUBLE_EQ(stats.PoolUtilization(), 0.5);
}

TEST(SolverStatsTest, LoadCountersReadsRunScopedRegistry) {
  obs::MetricsRegistry run;
  run.GetCounter(solver_metric::kIterations)->Increment(7);
  run.GetCounter(solver_metric::kGainEvaluations)->Increment(420);
  run.GetCounter(solver_metric::kHeapPops)->Increment(55);
  run.GetCounter(solver_metric::kStaleRefreshes)->Increment(11);
  run.GetCounter(solver_metric::kParallelBatches)->Increment(3);
  run.GetCounter(solver_metric::kParallelItems)->Increment(12);

  SolverStats stats;
  stats.threads = 4;
  stats.total_iteration_seconds = 1.4;
  stats.LoadCounters(run.Snapshot());

  EXPECT_EQ(stats.iterations, 7u);
  EXPECT_EQ(stats.gain_evaluations, 420u);
  EXPECT_EQ(stats.heap_pops, 55u);
  EXPECT_EQ(stats.stale_refreshes, 11u);
  EXPECT_EQ(stats.parallel_batches, 3u);
  EXPECT_EQ(stats.parallel_items, 12u);
  // Timing/threads fields are untouched by LoadCounters.
  EXPECT_EQ(stats.threads, 4u);
  EXPECT_DOUBLE_EQ(stats.total_iteration_seconds, 1.4);
  EXPECT_DOUBLE_EQ(stats.AvgIterationSeconds(), 0.2);
  EXPECT_DOUBLE_EQ(stats.StaleRatio(), 0.2);
  EXPECT_DOUBLE_EQ(stats.PoolUtilization(), 1.0);
}

TEST(SolverStatsTest, LoadCountersTreatsMissingNamesAsZero) {
  obs::MetricsRegistry run;
  run.GetCounter(solver_metric::kIterations)->Increment(2);
  SolverStats stats;
  stats.LoadCounters(run.Snapshot());
  EXPECT_EQ(stats.iterations, 2u);
  EXPECT_EQ(stats.gain_evaluations, 0u);
  EXPECT_EQ(stats.heap_pops, 0u);
  EXPECT_EQ(stats.parallel_batches, 0u);
}

}  // namespace
}  // namespace prefcover
