// Tests for the Max Vertex Cover module and the NPC_k <-> VC_k reductions
// of Theorem 3.1, validated as executable properties:
//   forward:  covered weight in the reduced VC instance == C(S) for all S;
//   backward: covered weight == N * C(S) with the reported scale N;
//   composition: reducing the backward result forward recovers the
//   original instance's covers.

#include "core/vc_reduction.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "graph/graph_builder.h"
#include "core/greedy_solver.h"
#include "core/max_vertex_cover.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

VertexCoverInstance MakeSmallVcInstance() {
  VertexCoverInstance instance(5);
  EXPECT_TRUE(instance.AddEdge(0, 1, 2.0).ok());
  EXPECT_TRUE(instance.AddEdge(1, 2, 1.0).ok());
  EXPECT_TRUE(instance.AddEdge(2, 3, 3.0).ok());
  EXPECT_TRUE(instance.AddEdge(3, 4, 1.5).ok());
  EXPECT_TRUE(instance.AddEdge(0, 4, 0.5).ok());
  EXPECT_TRUE(instance.AddEdge(2, 2, 1.0).ok());  // self-loop
  return instance;
}

TEST(VertexCoverInstanceTest, CoveredWeight) {
  VertexCoverInstance instance = MakeSmallVcInstance();
  EXPECT_DOUBLE_EQ(instance.TotalWeight(), 9.0);
  EXPECT_DOUBLE_EQ(instance.CoveredWeight({}), 0.0);
  // Node 2 covers edges {1,2}, {2,3} and the self-loop {2,2}.
  EXPECT_DOUBLE_EQ(instance.CoveredWeight({2}), 5.0);
  EXPECT_DOUBLE_EQ(instance.CoveredWeight({0, 1, 2, 3, 4}), 9.0);
  // Parallel edges count separately.
  VertexCoverInstance parallel(2);
  ASSERT_TRUE(parallel.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(parallel.AddEdge(1, 0, 2.0).ok());
  EXPECT_DOUBLE_EQ(parallel.CoveredWeight({0}), 3.0);
}

TEST(VertexCoverInstanceTest, RejectsBadEdges) {
  VertexCoverInstance instance(2);
  EXPECT_TRUE(instance.AddEdge(0, 5, 1.0).IsInvalidArgument());
  EXPECT_TRUE(instance.AddEdge(0, 1, 0.0).IsInvalidArgument());
  EXPECT_TRUE(instance.AddEdge(0, 1, -1.0).IsInvalidArgument());
}

TEST(VertexCoverGreedyTest, MatchesBruteForceWeightOnSmallInstances) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    Rng rng(seed);
    VertexCoverInstance instance(9);
    for (int e = 0; e < 14; ++e) {
      NodeId u = static_cast<NodeId>(rng.NextBounded(9));
      NodeId v = static_cast<NodeId>(rng.NextBounded(9));
      ASSERT_TRUE(instance.AddEdge(u, v, rng.NextDouble(0.1, 2.0)).ok());
    }
    for (size_t k : {1u, 3u, 5u}) {
      auto greedy = SolveVertexCoverGreedy(instance, k);
      auto optimal = SolveVertexCoverBruteForce(instance, k);
      ASSERT_TRUE(greedy.ok() && optimal.ok());
      double greedy_w = instance.CoveredWeight(*greedy);
      double optimal_w = instance.CoveredWeight(*optimal);
      EXPECT_LE(greedy_w, optimal_w + 1e-12);
      // Feige-Langberg guarantee.
      double guarantee = std::max(1.0 - 1.0 / std::exp(1.0),
                                  1.0 - (1.0 - static_cast<double>(k) / 9.0) *
                                            (1.0 - static_cast<double>(k) / 9.0));
      EXPECT_GE(greedy_w, guarantee * optimal_w - 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(VertexCoverGreedyTest, BudgetValidation) {
  VertexCoverInstance instance(3);
  EXPECT_TRUE(SolveVertexCoverGreedy(instance, 4).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SolveVertexCoverBruteForce(instance, 4).status()
                  .IsInvalidArgument());
}

class NpcToVcTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NpcToVcTest, CoversAgreeForRandomSets) {
  Rng rng(GetParam());
  UniformGraphParams params;
  params.num_nodes = 50;
  params.out_degree = 5;
  params.normalized_out_weights = true;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto instance = ReduceNpcToVc(*g);
  ASSERT_TRUE(instance.ok()) << instance.status().ToString();

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<NodeId> set;
    Bitset retained(g->NumNodes());
    for (NodeId v = 0; v < g->NumNodes(); ++v) {
      if (rng.NextBernoulli(0.3)) {
        set.push_back(v);
        retained.Set(v);
      }
    }
    double npc_cover = EvaluateCover(*g, retained, Variant::kNormalized);
    double vc_weight = instance->CoveredWeight(set);
    ASSERT_NEAR(npc_cover, vc_weight, 1e-9) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NpcToVcTest, ::testing::Values(41, 42, 43));

TEST(NpcToVcTest, PaperExampleReduction) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto instance = ReduceNpcToVc(g);
  ASSERT_TRUE(instance.ok());
  // Total edge weight equals total node weight (each node's outgoing edges
  // plus its completion loop carry exactly W(v)).
  EXPECT_NEAR(instance->TotalWeight(), 1.0, 1e-9);
  // The optimum {B, D} covers 0.873 there too.
  EXPECT_NEAR(instance->CoveredWeight({1, 3}), 0.873, 1e-9);
}

TEST(NpcToVcTest, RejectsNonAdmissibleGraph) {
  GraphBuilder b;
  NodeId a = b.AddNode(0.5);
  NodeId c = b.AddNode(0.25);
  NodeId d = b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(a, c, 0.9).ok());
  ASSERT_TRUE(b.AddEdge(a, d, 0.9).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ReduceNpcToVc(*g).status().IsFailedPrecondition());
}

class VcToNpcTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VcToNpcTest, CoversScaleByN) {
  Rng rng(GetParam());
  VertexCoverInstance instance(20);
  for (int e = 0; e < 40; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(20));
    NodeId v = static_cast<NodeId>(rng.NextBounded(20));
    ASSERT_TRUE(instance.AddEdge(u, v, rng.NextDouble(0.1, 3.0)).ok());
  }
  double scale = 0.0;
  auto g = ReduceVcToNpc(instance, &scale);
  ASSERT_TRUE(g.ok()) << g.status().ToString();
  EXPECT_GT(scale, 0.0);
  EXPECT_NEAR(g->TotalNodeWeight(), 1.0, 1e-9);

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<NodeId> set;
    Bitset retained(g->NumNodes());
    for (NodeId v = 0; v < g->NumNodes(); ++v) {
      if (rng.NextBernoulli(0.35)) {
        set.push_back(v);
        retained.Set(v);
      }
    }
    double npc_cover = EvaluateCover(*g, retained, Variant::kNormalized);
    double vc_weight = instance.CoveredWeight(set);
    ASSERT_NEAR(vc_weight, scale * npc_cover, 1e-9) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VcToNpcTest, ::testing::Values(51, 52, 53));

TEST(VcToNpcTest, RoundTripPreservesCovers) {
  // VC -> NPC -> VC must yield an instance with identical covered weights
  // (the proof's composition argument).
  Rng rng(61);
  VertexCoverInstance original(12);
  for (int e = 0; e < 20; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(12));
    NodeId v = static_cast<NodeId>(rng.NextBounded(12));
    ASSERT_TRUE(original.AddEdge(u, v, rng.NextDouble(0.2, 2.0)).ok());
  }
  double scale = 0.0;
  auto npc = ReduceVcToNpc(original, &scale);
  ASSERT_TRUE(npc.ok());
  auto back = ReduceNpcToVc(*npc);
  ASSERT_TRUE(back.ok());
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<NodeId> set;
    for (NodeId v = 0; v < 12; ++v) {
      if (rng.NextBernoulli(0.4)) set.push_back(v);
    }
    ASSERT_NEAR(original.CoveredWeight(set),
                scale * back->CoveredWeight(set), 1e-9)
        << "trial " << trial;
  }
}

TEST(VcToNpcTest, GreedyThroughReductionMatchesDirectGreedyCover) {
  // Solving NPC_k directly on the reduced graph and solving VC_k greedily
  // must produce solutions of equal objective value (the adapted greedy
  // "would have chosen the same nodes", Section 3.2).
  Rng rng(71);
  VertexCoverInstance instance(25);
  for (int e = 0; e < 60; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(25));
    NodeId v = static_cast<NodeId>(rng.NextBounded(25));
    ASSERT_TRUE(instance.AddEdge(u, v, rng.NextDouble(0.1, 2.0)).ok());
  }
  double scale = 0.0;
  auto g = ReduceVcToNpc(instance, &scale);
  ASSERT_TRUE(g.ok());
  for (size_t k : {3u, 8u, 15u}) {
    GreedyOptions options;
    options.variant = Variant::kNormalized;
    auto npc_sol = SolveGreedy(*g, k, options);
    auto vc_sol = SolveVertexCoverGreedy(instance, k);
    ASSERT_TRUE(npc_sol.ok() && vc_sol.ok());
    EXPECT_NEAR(scale * npc_sol->cover, instance.CoveredWeight(*vc_sol),
                1e-9)
        << "k=" << k;
  }
}

TEST(VcToNpcTest, EmptyInstanceRejected) {
  VertexCoverInstance instance(3);
  double scale = 0.0;
  EXPECT_TRUE(ReduceVcToNpc(instance, &scale).status().IsInvalidArgument());
}

}  // namespace
}  // namespace prefcover
