// Tests for DS_k and the Theorem 4.1 reduction DS_k -> IPC_k.

#include "core/max_dominating_set.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "core/greedy_solver.h"
#include "util/random.h"

namespace prefcover {
namespace {

DominatingSetInstance RandomInstance(size_t n, size_t edges, Rng* rng) {
  DominatingSetInstance instance(n);
  size_t added = 0;
  while (added < edges) {
    NodeId u = static_cast<NodeId>(rng->NextBounded(n));
    NodeId v = static_cast<NodeId>(rng->NextBounded(n));
    if (u == v) continue;
    EXPECT_TRUE(instance.AddEdge(u, v).ok());
    ++added;
  }
  return instance;
}

TEST(DominatingSetTest, DominatedCountSemantics) {
  DominatingSetInstance instance(5);
  ASSERT_TRUE(instance.AddEdge(0, 1).ok());
  ASSERT_TRUE(instance.AddEdge(0, 2).ok());
  ASSERT_TRUE(instance.AddEdge(3, 4).ok());
  EXPECT_EQ(instance.DominatedCount({}), 0u);
  EXPECT_EQ(instance.DominatedCount({0}), 3u);  // 0, 1, 2
  EXPECT_EQ(instance.DominatedCount({0, 3}), 5u);
  EXPECT_EQ(instance.DominatedCount({1}), 1u);  // edges are directed
  // Incoming edges do not dominate the source.
  EXPECT_EQ(instance.DominatedCount({4}), 1u);
}

TEST(DominatingSetTest, RejectsBadEdges) {
  DominatingSetInstance instance(3);
  EXPECT_TRUE(instance.AddEdge(0, 0).IsInvalidArgument());
  EXPECT_TRUE(instance.AddEdge(0, 9).IsInvalidArgument());
}

TEST(DominatingSetGreedyTest, CoversStarInOneStep) {
  DominatingSetInstance instance(6);
  for (NodeId v = 1; v < 6; ++v) {
    ASSERT_TRUE(instance.AddEdge(0, v).ok());
  }
  auto set = SolveDominatingSetGreedy(instance, 1);
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(*set, std::vector<NodeId>{0});
  EXPECT_EQ(instance.DominatedCount(*set), 6u);
}

TEST(DominatingSetGreedyTest, MeetsGuaranteeAgainstBruteForce) {
  for (uint64_t seed : {1u, 2u, 3u, 4u}) {
    Rng rng(seed);
    DominatingSetInstance instance = RandomInstance(11, 20, &rng);
    for (size_t k : {1u, 3u, 5u}) {
      auto greedy = SolveDominatingSetGreedy(instance, k);
      auto optimal = SolveDominatingSetBruteForce(instance, k);
      ASSERT_TRUE(greedy.ok() && optimal.ok());
      double g = static_cast<double>(instance.DominatedCount(*greedy));
      double o = static_cast<double>(instance.DominatedCount(*optimal));
      EXPECT_LE(g, o + 1e-12);
      EXPECT_GE(g, (1.0 - 1.0 / std::exp(1.0)) * o - 1e-9)
          << "seed " << seed << " k " << k;
    }
  }
}

TEST(DominatingSetGreedyTest, BudgetValidation) {
  DominatingSetInstance instance(3);
  EXPECT_TRUE(SolveDominatingSetGreedy(instance, 4)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(SolveDominatingSetBruteForce(instance, 4)
                  .status()
                  .IsInvalidArgument());
}

class DsToIpcTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DsToIpcTest, DominatedCountEqualsNTimesCover) {
  Rng rng(GetParam());
  const size_t n = 40;
  DominatingSetInstance instance = RandomInstance(n, 90, &rng);
  auto graph = ReduceDsToIpc(instance);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  ASSERT_EQ(graph->NumNodes(), n);

  for (int trial = 0; trial < 25; ++trial) {
    std::vector<NodeId> set;
    for (NodeId v = 0; v < n; ++v) {
      if (rng.NextBernoulli(0.3)) set.push_back(v);
    }
    auto cover = EvaluateCover(*graph, set, Variant::kIndependent);
    ASSERT_TRUE(cover.ok());
    EXPECT_NEAR(static_cast<double>(instance.DominatedCount(set)),
                static_cast<double>(n) * *cover, 1e-6)
        << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsToIpcTest, ::testing::Values(7, 8, 9));

TEST(DsToIpcTest, GreedySolutionsAgreeThroughTheReduction) {
  // Greedy IPC on the reduced graph dominates exactly as many vertices as
  // greedy DS_k on the original (identical tie-breaking makes the sets
  // themselves equal too).
  Rng rng(11);
  DominatingSetInstance instance = RandomInstance(30, 70, &rng);
  auto graph = ReduceDsToIpc(instance);
  ASSERT_TRUE(graph.ok());
  for (size_t k : {2u, 5u, 10u}) {
    auto ds = SolveDominatingSetGreedy(instance, k);
    auto ipc = SolveGreedy(*graph, k);
    ASSERT_TRUE(ds.ok() && ipc.ok());
    EXPECT_EQ(*ds, ipc->items) << "k=" << k;
    EXPECT_NEAR(static_cast<double>(instance.DominatedCount(*ds)),
                30.0 * ipc->cover, 1e-6);
  }
}

TEST(DsToIpcTest, DuplicateEdgesCollapse) {
  DominatingSetInstance instance(3);
  ASSERT_TRUE(instance.AddEdge(0, 1).ok());
  ASSERT_TRUE(instance.AddEdge(0, 1).ok());  // parallel
  auto graph = ReduceDsToIpc(instance);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(graph->EdgeWeight(1, 0), 1.0);  // reversed
}

TEST(DsToIpcTest, EmptyInstanceRejected) {
  DominatingSetInstance instance(0);
  EXPECT_TRUE(ReduceDsToIpc(instance).status().IsInvalidArgument());
}

}  // namespace
}  // namespace prefcover
