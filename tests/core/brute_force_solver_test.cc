#include "core/brute_force_solver.h"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "graph/graph_builder.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

TEST(BinomialCoefficientTest, KnownValues) {
  EXPECT_EQ(BinomialCoefficient(0, 0), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 0), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 5), 1u);
  EXPECT_EQ(BinomialCoefficient(5, 2), 10u);
  EXPECT_EQ(BinomialCoefficient(10, 3), 120u);
  EXPECT_EQ(BinomialCoefficient(30, 15), 155117520u);  // the paper's "155M"
  EXPECT_EQ(BinomialCoefficient(3, 7), 0u);
}

TEST(BinomialCoefficientTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(BinomialCoefficient(1000, 500),
            std::numeric_limits<uint64_t>::max());
}

TEST(BruteForceTest, FindsPaperOptimum) {
  PreferenceGraph g = MakePaperExampleGraph();
  for (Variant variant : {Variant::kIndependent, Variant::kNormalized}) {
    BruteForceOptions options;
    options.variant = variant;
    auto sol = SolveBruteForce(g, 2, options);
    ASSERT_TRUE(sol.ok());
    EXPECT_EQ(sol->items, (std::vector<NodeId>{1, 3}));  // {B, D}
    EXPECT_NEAR(sol->cover, 0.873, 1e-9);
    EXPECT_TRUE(sol->Validate(g).ok());
  }
}

TEST(BruteForceTest, KZeroAndKEqualsN) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto empty = SolveBruteForce(g, 0);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->items.empty());
  EXPECT_DOUBLE_EQ(empty->cover, 0.0);

  auto full = SolveBruteForce(g, 5);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->items.size(), 5u);
  EXPECT_NEAR(full->cover, 1.0, 1e-9);
}

TEST(BruteForceTest, SubsetGuardTrips) {
  Rng rng(1);
  UniformGraphParams params;
  params.num_nodes = 40;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  BruteForceOptions options;
  options.max_subsets = 1000;
  EXPECT_TRUE(SolveBruteForce(*g, 20, options)
                  .status()
                  .IsFailedPrecondition());
}

TEST(BruteForceTest, GuardDisabledWithZero) {
  PreferenceGraph g = MakePaperExampleGraph();
  BruteForceOptions options;
  options.max_subsets = 0;
  EXPECT_TRUE(SolveBruteForce(g, 2, options).ok());
}

TEST(BruteForceTest, MatchesExhaustiveCheckOnRandomGraphs) {
  // Independent verification: compare against a direct scan over all
  // subsets enumerated a different way (bitmask order).
  for (uint64_t seed : {3u, 4u}) {
    for (Variant variant :
         {Variant::kIndependent, Variant::kNormalized}) {
      Rng rng(seed);
      UniformGraphParams params;
      params.num_nodes = 10;
      params.out_degree = 3;
      params.normalized_out_weights = variant == Variant::kNormalized;
      auto g = GenerateUniformGraph(params, &rng);
      ASSERT_TRUE(g.ok());
      const size_t k = 4;
      double best = -1.0;
      for (uint32_t mask = 0; mask < (1u << 10); ++mask) {
        if (__builtin_popcount(mask) != static_cast<int>(k)) continue;
        Bitset retained(10);
        for (NodeId v = 0; v < 10; ++v) {
          if (mask & (1u << v)) retained.Set(v);
        }
        best = std::max(best, EvaluateCover(*g, retained, variant));
      }
      BruteForceOptions options;
      options.variant = variant;
      auto sol = SolveBruteForce(*g, k, options);
      ASSERT_TRUE(sol.ok());
      EXPECT_NEAR(sol->cover, best, 1e-12)
          << "seed " << seed << " " << VariantName(variant);
    }
  }
}

TEST(BruteForceTest, ReturnsLexicographicallySmallestOptimum) {
  // A graph with two symmetric optimal singletons; ids 0 and 1 both cover
  // 0.5. The solver must return {0}.
  GraphBuilder b;
  b.AddNode(0.5);
  b.AddNode(0.5);
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  auto sol = SolveBruteForce(*g, 1);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items, std::vector<NodeId>{0});
}

TEST(BruteForceTest, KTooLargeRejected) {
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(SolveBruteForce(g, 9).status().IsInvalidArgument());
}

}  // namespace
}  // namespace prefcover
