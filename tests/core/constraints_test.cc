// Tests for force_include / force_exclude constraints on the greedy
// solver family.

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/greedy_solver.h"
#include "graph/graph_generators.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace prefcover {
namespace {

constexpr NodeId kA = 0, kB = 1, kD = 3, kE = 4;

TEST(ConstraintsTest, ForceIncludeSelectedFirst) {
  PreferenceGraph g = MakePaperExampleGraph();
  GreedyOptions options;
  options.force_include = {kE};
  auto sol = SolveGreedy(g, 2, options);
  ASSERT_TRUE(sol.ok()) << sol.status().ToString();
  ASSERT_EQ(sol->items.size(), 2u);
  EXPECT_EQ(sol->items[0], kE);
  // With E forced (covering E fully), the best second pick is B.
  EXPECT_EQ(sol->items[1], kB);
  EXPECT_TRUE(sol->Validate(g).ok());
}

TEST(ConstraintsTest, ForceExcludeNeverSelected) {
  PreferenceGraph g = MakePaperExampleGraph();
  GreedyOptions options;
  options.force_exclude = {kB};  // the unconstrained first pick
  auto sol = SolveGreedy(g, 2, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(std::count(sol->items.begin(), sol->items.end(), kB), 0);
  // Unconstrained greedy reaches 0.873; the constrained one cannot.
  EXPECT_LT(sol->cover, 0.873);
  EXPECT_TRUE(sol->Validate(g).ok());
}

TEST(ConstraintsTest, ExcludedItemStillCoverable) {
  // C is excluded from selection but B covers it completely.
  PreferenceGraph g = MakePaperExampleGraph();
  GreedyOptions options;
  options.force_exclude = {2};  // C
  auto sol = SolveGreedy(g, 2, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items, (std::vector<NodeId>{kB, kD}));  // unchanged
  EXPECT_NEAR(sol->cover, 0.873, 1e-9);
  EXPECT_DOUBLE_EQ(sol->ItemCoverage(g, 2), 1.0);
}

// Runs one options instance through all four greedy entry points and
// asserts they reject (or accept) it identically — same status code, same
// message — so no solver can drift into private validation behavior.
void ExpectUniformValidation(const PreferenceGraph& g, size_t k,
                             const GreedyOptions& options,
                             bool expect_invalid) {
  ThreadPool pool(2);
  auto plain = SolveGreedy(g, k, options);
  auto lazy = SolveGreedyLazy(g, k, options);
  auto parallel = SolveGreedyParallel(g, k, &pool, options);
  auto lazy_parallel = SolveGreedyLazyParallel(g, k, &pool, options);
  EXPECT_EQ(plain.status().IsInvalidArgument(), expect_invalid);
  EXPECT_EQ(lazy.status().ToString(), plain.status().ToString());
  EXPECT_EQ(parallel.status().ToString(), plain.status().ToString());
  EXPECT_EQ(lazy_parallel.status().ToString(), plain.status().ToString());
  // The standalone validator agrees with what the solvers enforced.
  EXPECT_EQ(ValidateGreedyOptions(g, k, options).IsInvalidArgument(),
            expect_invalid);
}

TEST(ConstraintsTest, ValidationErrorsUniformAcrossAllFourExecutions) {
  PreferenceGraph g = MakePaperExampleGraph();
  {
    GreedyOptions options;
    options.force_include = {99};
    ExpectUniformValidation(g, 2, options, true);
  }
  {
    GreedyOptions options;
    options.force_exclude = {99};
    ExpectUniformValidation(g, 2, options, true);
  }
  {
    GreedyOptions options;
    options.force_include = {kA, kB, kD};  // more than k = 2
    ExpectUniformValidation(g, 2, options, true);
  }
  {
    GreedyOptions options;
    options.force_include = {kA};
    options.force_exclude = {kA};
    ExpectUniformValidation(g, 2, options, true);
  }
  {
    GreedyOptions options;
    options.force_include = {kA, kA};  // duplicate
    ExpectUniformValidation(g, 2, options, true);
  }
  {
    GreedyOptions options;
    options.force_exclude = {kB, kB};  // duplicate
    ExpectUniformValidation(g, 2, options, true);
  }
  {
    GreedyOptions options;
    options.stop_at_cover = std::nan("");
    ExpectUniformValidation(g, 2, options, true);
  }
  {
    // A fully-loaded valid instance is accepted by all four.
    GreedyOptions options;
    options.force_include = {kE};
    options.force_exclude = {kA};
    options.stop_at_cover = 0.9;
    ExpectUniformValidation(g, 2, options, false);
  }
}

TEST(ConstraintsTest, AllFourExecutionsAgreeUnderConstraints) {
  Rng rng(31);
  UniformGraphParams params;
  params.num_nodes = 120;
  params.out_degree = 5;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  GreedyOptions options;
  options.force_include = {7, 33};
  options.force_exclude = {0, 1, 2, 50, 90};
  const size_t k = 20;
  auto plain = SolveGreedy(*g, k, options);
  auto lazy = SolveGreedyLazy(*g, k, options);
  ThreadPool pool(3);
  auto parallel = SolveGreedyParallel(*g, k, &pool, options);
  auto lazy_parallel = SolveGreedyLazyParallel(*g, k, &pool, options);
  ASSERT_TRUE(plain.ok() && lazy.ok() && parallel.ok() &&
              lazy_parallel.ok());
  EXPECT_EQ(plain->items, lazy->items);
  EXPECT_EQ(plain->items, parallel->items);
  EXPECT_EQ(plain->items, lazy_parallel->items);
  EXPECT_EQ(plain->items[0], 7u);
  EXPECT_EQ(plain->items[1], 33u);
  for (NodeId banned : options.force_exclude) {
    EXPECT_EQ(std::count(plain->items.begin(), plain->items.end(), banned),
              0);
  }
}

TEST(ConstraintsTest, ForcedItemsCountTowardBudget) {
  PreferenceGraph g = MakePaperExampleGraph();
  GreedyOptions options;
  options.force_include = {kA, kD};
  auto sol = SolveGreedy(g, 2, options);
  ASSERT_TRUE(sol.ok());
  EXPECT_EQ(sol->items, (std::vector<NodeId>{kA, kD}));  // budget spent
}

TEST(ConstraintsTest, ConstrainedNeverBeatsUnconstrained) {
  Rng rng(32);
  UniformGraphParams params;
  params.num_nodes = 80;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  auto free = SolveGreedy(*g, 15);
  ASSERT_TRUE(free.ok());
  for (int trial = 0; trial < 5; ++trial) {
    GreedyOptions options;
    // Exclude a few of the unconstrained picks.
    options.force_exclude = {free->items[0], free->items[3]};
    options.force_include = {
        static_cast<NodeId>(rng.NextBounded(80))};
    if (std::count(options.force_exclude.begin(),
                   options.force_exclude.end(),
                   options.force_include[0]) > 0) {
      continue;
    }
    auto constrained = SolveGreedy(*g, 15, options);
    ASSERT_TRUE(constrained.ok());
    // Greedy is not optimal, so tiny inversions are conceivable, but the
    // forced-away-from-optimum runs should not beat the free run by any
    // meaningful margin.
    EXPECT_LE(constrained->cover, free->cover + 0.01) << "trial " << trial;
  }
}

TEST(ConstraintsTest, StopAtCoverCountsForcedItems) {
  PreferenceGraph g = MakePaperExampleGraph();
  GreedyOptions options;
  options.variant = Variant::kNormalized;
  options.force_include = {kB};  // covers 0.66 on its own
  options.stop_at_cover = 0.5;
  auto sol = SolveGreedy(g, 3, options);
  ASSERT_TRUE(sol.ok());
  // The forced pick already clears the threshold; nothing else is added.
  EXPECT_EQ(sol->items, std::vector<NodeId>{kB});
}

}  // namespace
}  // namespace prefcover
