#include "core/cover_function.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/graph_generators.h"

namespace prefcover {
namespace {

constexpr NodeId kA = 0, kB = 1, kC = 2, kD = 3, kE = 4;

class PaperExampleCoverTest : public ::testing::TestWithParam<Variant> {
 protected:
  PreferenceGraph graph_ = MakePaperExampleGraph();
};

TEST_P(PaperExampleCoverTest, EmptySetCoversNothing) {
  Bitset none(graph_.NumNodes());
  EXPECT_DOUBLE_EQ(EvaluateCover(graph_, none, GetParam()), 0.0);
}

TEST_P(PaperExampleCoverTest, FullSetCoversEverything) {
  Bitset all(graph_.NumNodes());
  for (NodeId v = 0; v < graph_.NumNodes(); ++v) all.Set(v);
  EXPECT_NEAR(EvaluateCover(graph_, all, GetParam()), 1.0, 1e-12);
}

TEST_P(PaperExampleCoverTest, OptimalPairFromExample) {
  // Example 1.1 / 3.2: {B, D} covers 87.3% in both variants (no node has
  // two retained in-neighbors, so the variants agree on this instance).
  auto cover = EvaluateCover(graph_, std::vector<NodeId>{kB, kD}, GetParam());
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(*cover, 0.873, 1e-9);
}

TEST_P(PaperExampleCoverTest, TopSellersPairFromExample) {
  // Example 1.1: the naive top-2 {A, B} covers 77%.
  auto cover = EvaluateCover(graph_, std::vector<NodeId>{kA, kB}, GetParam());
  ASSERT_TRUE(cover.ok());
  EXPECT_NEAR(*cover, 0.77, 1e-9);
}

TEST_P(PaperExampleCoverTest, ItemCoverageMatchesFigureTwo) {
  // Figure 2: with {B, D} retained, coverage of A is 67%, C 100%, E 90%.
  Bitset retained(graph_.NumNodes());
  retained.Set(kB);
  retained.Set(kD);
  Variant variant = GetParam();
  EXPECT_NEAR(CoverOfItem(graph_, retained, kA, variant), 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(CoverOfItem(graph_, retained, kC, variant), 1.0);
  EXPECT_DOUBLE_EQ(CoverOfItem(graph_, retained, kE, variant), 0.9);
  EXPECT_DOUBLE_EQ(CoverOfItem(graph_, retained, kB, variant), 1.0);
  EXPECT_DOUBLE_EQ(CoverOfItem(graph_, retained, kD, variant), 1.0);
}

TEST_P(PaperExampleCoverTest, ContributionsSumToCover) {
  Bitset retained(graph_.NumNodes());
  retained.Set(kB);
  retained.Set(kD);
  Variant variant = GetParam();
  std::vector<double> contrib =
      ComputeItemCoverContributions(graph_, retained, variant);
  double sum = 0.0;
  for (double c : contrib) sum += c;
  EXPECT_NEAR(sum, EvaluateCover(graph_, retained, variant), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(BothVariants, PaperExampleCoverTest,
                         ::testing::Values(Variant::kIndependent,
                                           Variant::kNormalized),
                         [](const auto& param_info) {
                           return std::string(VariantName(param_info.param));
                         });

TEST(CoverFunctionTest, VariantsDifferWithTwoRetainedAlternatives) {
  // v has two alternatives at 0.5 each. Independent: 1-(0.5)^2 = 0.75.
  // Normalized: 0.5+0.5 = 1.0.
  GraphBuilder b;
  NodeId v = b.AddNode(1.0);
  NodeId x = b.AddNode(0.0);
  NodeId y = b.AddNode(0.0);
  ASSERT_TRUE(b.AddEdge(v, x, 0.5).ok());
  ASSERT_TRUE(b.AddEdge(v, y, 0.5).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  Bitset retained(3);
  retained.Set(x);
  retained.Set(y);
  EXPECT_DOUBLE_EQ(CoverOfItem(*g, retained, v, Variant::kIndependent), 0.75);
  EXPECT_DOUBLE_EQ(CoverOfItem(*g, retained, v, Variant::kNormalized), 1.0);
}

TEST(CoverFunctionTest, IndependentNeverExceedsNormalized) {
  // With identical admissible weights, the union-bound structure means the
  // Normalized cover dominates the Independent one pointwise.
  Rng rng(3);
  UniformGraphParams params;
  params.num_nodes = 60;
  params.out_degree = 5;
  params.normalized_out_weights = true;
  auto g = GenerateUniformGraph(params, &rng);
  ASSERT_TRUE(g.ok());
  for (int trial = 0; trial < 20; ++trial) {
    Bitset retained(g->NumNodes());
    for (NodeId v = 0; v < g->NumNodes(); ++v) {
      if (rng.NextBernoulli(0.3)) retained.Set(v);
    }
    double independent =
        EvaluateCover(*g, retained, Variant::kIndependent);
    double normalized = EvaluateCover(*g, retained, Variant::kNormalized);
    EXPECT_LE(independent, normalized + 1e-12) << "trial " << trial;
  }
}

TEST(CoverFunctionTest, RejectsOutOfRangeItem) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto cover = EvaluateCover(g, std::vector<NodeId>{99}, Variant::kIndependent);
  EXPECT_TRUE(cover.status().IsInvalidArgument());
}

TEST(CoverFunctionTest, RejectsDuplicateItems) {
  PreferenceGraph g = MakePaperExampleGraph();
  auto cover = EvaluateCover(g, std::vector<NodeId>{kA, kA}, Variant::kIndependent);
  EXPECT_TRUE(cover.status().IsInvalidArgument());
}

TEST(ValidateInstanceTest, AcceptsAdmissibleInstances) {
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(ValidateInstance(g, 2, Variant::kNormalized).ok());
  EXPECT_TRUE(ValidateInstance(g, 5, Variant::kIndependent).ok());
}

TEST(ValidateInstanceTest, RejectsOversizedBudget) {
  PreferenceGraph g = MakePaperExampleGraph();
  EXPECT_TRUE(ValidateInstance(g, 6, Variant::kIndependent)
                  .IsInvalidArgument());
}

TEST(ValidateInstanceTest, RejectsNormalizedOnNonAdmissibleGraph) {
  // Out-weight sum 1.5 > 1: valid for Independent, forbidden for
  // Normalized (its cover formula would exceed the node weight).
  GraphBuilder b;
  NodeId v = b.AddNode(0.5);
  NodeId x = b.AddNode(0.25);
  NodeId y = b.AddNode(0.25);
  ASSERT_TRUE(b.AddEdge(v, x, 0.8).ok());
  ASSERT_TRUE(b.AddEdge(v, y, 0.7).ok());
  auto g = b.Finalize();
  ASSERT_TRUE(g.ok());
  EXPECT_TRUE(ValidateInstance(*g, 2, Variant::kNormalized)
                  .IsFailedPrecondition());
  EXPECT_TRUE(ValidateInstance(*g, 2, Variant::kIndependent).ok());
}

TEST(CoverFunctionTest, UncoveredItemWithNoRetainedNeighbors) {
  PreferenceGraph g = MakePaperExampleGraph();
  Bitset retained(g.NumNodes());
  retained.Set(kD);
  // A has no edge into D, so A is entirely uncovered.
  EXPECT_DOUBLE_EQ(CoverOfItem(g, retained, kA, Variant::kIndependent), 0.0);
  EXPECT_DOUBLE_EQ(CoverOfItem(g, retained, kA, Variant::kNormalized), 0.0);
}

}  // namespace
}  // namespace prefcover
