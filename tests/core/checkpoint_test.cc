#include "core/checkpoint.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_generators.h"
#include "util/fs.h"
#include "util/random.h"

namespace prefcover {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/checkpoint_test_" + name;
}

PreferenceGraph MakeGraph(uint64_t seed = 7) {
  Rng rng(seed);
  UniformGraphParams params;
  params.num_nodes = 60;
  params.out_degree = 4;
  auto g = GenerateUniformGraph(params, &rng);
  EXPECT_TRUE(g.ok());
  return std::move(g).value();
}

Checkpoint MakeCheckpoint(const PreferenceGraph& graph,
                          const GreedyOptions& options, size_t k,
                          std::vector<NodeId> prefix) {
  Checkpoint ckpt;
  ckpt.graph_digest = GraphDigest(graph);
  ckpt.options_hash = GreedyOptionsHash(options, k);
  ckpt.variant = options.variant;
  ckpt.k = k;
  ckpt.prefix = std::move(prefix);
  return ckpt;
}

TEST(CheckpointIoTest, RoundTrip) {
  PreferenceGraph graph = MakeGraph();
  GreedyOptions options;
  Checkpoint ckpt = MakeCheckpoint(graph, options, 10, {3, 1, 41});
  std::string path = TempPath("roundtrip.ckpt");
  ASSERT_TRUE(WriteCheckpoint(path, ckpt).ok());

  auto read = ReadCheckpoint(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->graph_digest, ckpt.graph_digest);
  EXPECT_EQ(read->options_hash, ckpt.options_hash);
  EXPECT_EQ(read->variant, ckpt.variant);
  EXPECT_EQ(read->k, ckpt.k);
  EXPECT_EQ(read->prefix, ckpt.prefix);
}

TEST(CheckpointIoTest, RoundTripEmptyPrefix) {
  PreferenceGraph graph = MakeGraph();
  GreedyOptions options;
  options.variant = Variant::kNormalized;
  Checkpoint ckpt = MakeCheckpoint(graph, options, 5, {});
  std::string path = TempPath("empty_prefix.ckpt");
  ASSERT_TRUE(WriteCheckpoint(path, ckpt).ok());
  auto read = ReadCheckpoint(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->variant, Variant::kNormalized);
  EXPECT_TRUE(read->prefix.empty());
}

TEST(CheckpointIoTest, MissingFileIsIOError) {
  auto read = ReadCheckpoint(TempPath("never_written.ckpt"));
  EXPECT_TRUE(read.status().IsIOError());
}

TEST(CheckpointIoTest, EveryTruncationRejected) {
  PreferenceGraph graph = MakeGraph();
  Checkpoint ckpt = MakeCheckpoint(graph, GreedyOptions(), 8, {5, 2, 9});
  std::string path = TempPath("trunc_src.ckpt");
  ASSERT_TRUE(WriteCheckpoint(path, ckpt).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());

  std::string cut_path = TempPath("trunc_cut.ckpt");
  for (size_t cut = 0; cut < bytes->size(); ++cut) {
    ASSERT_TRUE(WriteFileAtomic(cut_path, bytes->substr(0, cut)).ok());
    auto read = ReadCheckpoint(cut_path);
    EXPECT_TRUE(read.status().IsCorruption()) << "cut at " << cut;
  }
}

TEST(CheckpointIoTest, EveryByteFlipRejected) {
  PreferenceGraph graph = MakeGraph();
  Checkpoint ckpt = MakeCheckpoint(graph, GreedyOptions(), 8, {5, 2, 9});
  std::string path = TempPath("flip_src.ckpt");
  ASSERT_TRUE(WriteCheckpoint(path, ckpt).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());

  std::string flip_path = TempPath("flip_dst.ckpt");
  for (size_t i = 0; i < bytes->size(); ++i) {
    std::string corrupted = *bytes;
    corrupted[i] = static_cast<char>(corrupted[i] ^ 0x20);
    ASSERT_TRUE(WriteFileAtomic(flip_path, corrupted).ok());
    auto read = ReadCheckpoint(flip_path);
    EXPECT_TRUE(read.status().IsCorruption()) << "flip at byte " << i;
  }
}

TEST(CheckpointIoTest, TrailingGarbageRejected) {
  PreferenceGraph graph = MakeGraph();
  Checkpoint ckpt = MakeCheckpoint(graph, GreedyOptions(), 8, {5});
  std::string path = TempPath("garbage.ckpt");
  ASSERT_TRUE(WriteCheckpoint(path, ckpt).ok());
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(WriteFileAtomic(path, *bytes + "extra").ok());
  EXPECT_TRUE(ReadCheckpoint(path).status().IsCorruption());
}

TEST(CheckpointIoTest, ForeignFileRejected) {
  std::string path = TempPath("foreign.ckpt");
  ASSERT_TRUE(
      WriteFileAtomic(path, "this is not a checkpoint file at all....")
          .ok());
  EXPECT_TRUE(ReadCheckpoint(path).status().IsCorruption());
}

TEST(GraphDigestTest, StableAndSensitive) {
  PreferenceGraph a = MakeGraph(7);
  PreferenceGraph a_again = MakeGraph(7);
  PreferenceGraph b = MakeGraph(8);
  EXPECT_EQ(GraphDigest(a), GraphDigest(a_again));
  EXPECT_NE(GraphDigest(a), GraphDigest(b));
}

TEST(GreedyOptionsHashTest, SensitiveToSelectionOrderInputs) {
  GreedyOptions base;
  const uint64_t h = GreedyOptionsHash(base, 10);
  EXPECT_EQ(GreedyOptionsHash(base, 10), h);

  EXPECT_NE(GreedyOptionsHash(base, 11), h);

  GreedyOptions variant = base;
  variant.variant = Variant::kNormalized;
  EXPECT_NE(GreedyOptionsHash(variant, 10), h);

  GreedyOptions stop = base;
  stop.stop_at_cover = 0.9;
  EXPECT_NE(GreedyOptionsHash(stop, 10), h);

  GreedyOptions include = base;
  include.force_include = {3};
  EXPECT_NE(GreedyOptionsHash(include, 10), h);

  GreedyOptions exclude = base;
  exclude.force_exclude = {3};
  EXPECT_NE(GreedyOptionsHash(exclude, 10), h);
  // include={3} and exclude={3} must not collide with each other either.
  EXPECT_NE(GreedyOptionsHash(exclude, 10),
            GreedyOptionsHash(include, 10));
}

TEST(GreedyOptionsHashTest, InsensitiveToExecutionKnobs) {
  // batch_size, cancellation and checkpoint wiring do not affect the
  // selected sequence, so a resume may legally change them.
  GreedyOptions base;
  const uint64_t h = GreedyOptionsHash(base, 10);

  GreedyOptions batched = base;
  batched.batch_size = 64;
  EXPECT_EQ(GreedyOptionsHash(batched, 10), h);

  CancelToken token;
  GreedyOptions cancellable = base;
  cancellable.cancel = &token;
  EXPECT_EQ(GreedyOptionsHash(cancellable, 10), h);

  GreedyOptions checkpointed = base;
  checkpointed.checkpoint.path = "/tmp/somewhere.ckpt";
  checkpointed.checkpoint.every_rounds = 3;
  EXPECT_EQ(GreedyOptionsHash(checkpointed, 10), h);
}

class ValidateCheckpointTest : public ::testing::Test {
 protected:
  ValidateCheckpointTest() : graph_(MakeGraph()) {}

  PreferenceGraph graph_;
  GreedyOptions options_;
  const size_t k_ = 10;
};

TEST_F(ValidateCheckpointTest, MatchingCheckpointReturnsPrefix) {
  Checkpoint ckpt = MakeCheckpoint(graph_, options_, k_, {4, 17, 2});
  auto prefix = ValidateCheckpointForResume(ckpt, graph_, k_, options_);
  ASSERT_TRUE(prefix.ok()) << prefix.status().ToString();
  EXPECT_EQ(*prefix, (std::vector<NodeId>{4, 17, 2}));
}

TEST_F(ValidateCheckpointTest, WrongGraphRejected) {
  PreferenceGraph other = MakeGraph(99);
  Checkpoint ckpt = MakeCheckpoint(other, options_, k_, {4});
  auto prefix = ValidateCheckpointForResume(ckpt, graph_, k_, options_);
  EXPECT_TRUE(prefix.status().IsFailedPrecondition());
}

TEST_F(ValidateCheckpointTest, WrongOptionsRejected) {
  GreedyOptions other = options_;
  other.force_exclude = {1};
  Checkpoint ckpt = MakeCheckpoint(graph_, other, k_, {4});
  auto prefix = ValidateCheckpointForResume(ckpt, graph_, k_, options_);
  EXPECT_TRUE(prefix.status().IsFailedPrecondition());
}

TEST_F(ValidateCheckpointTest, WrongBudgetRejected) {
  Checkpoint ckpt = MakeCheckpoint(graph_, options_, k_, {4});
  auto prefix = ValidateCheckpointForResume(ckpt, graph_, k_ + 1, options_);
  EXPECT_TRUE(prefix.status().IsFailedPrecondition());
}

TEST_F(ValidateCheckpointTest, WrongVariantRejected) {
  Checkpoint ckpt = MakeCheckpoint(graph_, options_, k_, {4});
  GreedyOptions normalized = options_;
  normalized.variant = Variant::kNormalized;
  auto prefix =
      ValidateCheckpointForResume(ckpt, graph_, k_, normalized);
  EXPECT_FALSE(prefix.ok());
}

TEST_F(ValidateCheckpointTest, OutOfRangePrefixRejected) {
  Checkpoint ckpt = MakeCheckpoint(
      graph_, options_, k_,
      {static_cast<NodeId>(graph_.NumNodes())});
  auto prefix = ValidateCheckpointForResume(ckpt, graph_, k_, options_);
  EXPECT_FALSE(prefix.ok());
}

TEST_F(ValidateCheckpointTest, DuplicatePrefixRejected) {
  Checkpoint ckpt = MakeCheckpoint(graph_, options_, k_, {4, 4});
  auto prefix = ValidateCheckpointForResume(ckpt, graph_, k_, options_);
  EXPECT_FALSE(prefix.ok());
}

TEST_F(ValidateCheckpointTest, ExcludedPrefixItemRejected) {
  GreedyOptions excluding = options_;
  excluding.force_exclude = {17};
  Checkpoint ckpt = MakeCheckpoint(graph_, excluding, k_, {4, 17});
  auto prefix =
      ValidateCheckpointForResume(ckpt, graph_, k_, excluding);
  EXPECT_FALSE(prefix.ok());
}

TEST_F(ValidateCheckpointTest, OverBudgetPrefixRejected) {
  std::vector<NodeId> too_long(k_ + 1);
  for (size_t i = 0; i < too_long.size(); ++i) {
    too_long[i] = static_cast<NodeId>(i);
  }
  Checkpoint ckpt =
      MakeCheckpoint(graph_, options_, k_, std::move(too_long));
  auto prefix = ValidateCheckpointForResume(ckpt, graph_, k_, options_);
  EXPECT_FALSE(prefix.ok());
}

}  // namespace
}  // namespace prefcover
