// Property tests for the structural results the greedy guarantees rest on:
// both variants' cover functions are nonnegative, monotone and submodular
// (proved for IPC_k in Theorem 4.1; NPC_k is a weighted coverage function).

#include <tuple>

#include <gtest/gtest.h>

#include "core/cover_function.h"
#include "graph/graph_generators.h"
#include "util/random.h"

namespace prefcover {
namespace {

class SubmodularityTest
    : public ::testing::TestWithParam<std::tuple<Variant, uint64_t>> {
 protected:
  Variant variant() const { return std::get<0>(GetParam()); }
  uint64_t seed() const { return std::get<1>(GetParam()); }

  PreferenceGraph MakeGraph(Rng* rng) {
    UniformGraphParams params;
    params.num_nodes = 40;
    params.out_degree = 6;
    params.normalized_out_weights = variant() == Variant::kNormalized;
    auto g = GenerateUniformGraph(params, rng);
    EXPECT_TRUE(g.ok());
    return std::move(g).value();
  }
};

TEST_P(SubmodularityTest, CoverIsNonnegativeAndAtMostOne) {
  Rng rng(seed());
  PreferenceGraph g = MakeGraph(&rng);
  for (int trial = 0; trial < 30; ++trial) {
    Bitset s(g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (rng.NextBernoulli(rng.NextDouble())) s.Set(v);
    }
    double cover = EvaluateCover(g, s, variant());
    EXPECT_GE(cover, 0.0);
    EXPECT_LE(cover, 1.0 + 1e-9);
  }
}

TEST_P(SubmodularityTest, Monotone) {
  // f(S + v) >= f(S) for random S and every v.
  Rng rng(seed() + 10);
  PreferenceGraph g = MakeGraph(&rng);
  for (int trial = 0; trial < 15; ++trial) {
    Bitset s(g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (rng.NextBernoulli(0.3)) s.Set(v);
    }
    double base = EvaluateCover(g, s, variant());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (s.Test(v)) continue;
      s.Set(v);
      double with_v = EvaluateCover(g, s, variant());
      s.Clear(v);
      ASSERT_GE(with_v, base - 1e-12) << "trial " << trial << " v " << v;
    }
  }
}

TEST_P(SubmodularityTest, DiminishingReturns) {
  // f(S + v) - f(S) >= f(T + v) - f(T) for random nested S subseteq T.
  Rng rng(seed() + 20);
  PreferenceGraph g = MakeGraph(&rng);
  for (int trial = 0; trial < 15; ++trial) {
    Bitset s(g.NumNodes()), t(g.NumNodes());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      double r = rng.NextDouble();
      if (r < 0.2) {  // in both
        s.Set(v);
        t.Set(v);
      } else if (r < 0.5) {  // only in T
        t.Set(v);
      }
    }
    double fs = EvaluateCover(g, s, variant());
    double ft = EvaluateCover(g, t, variant());
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (t.Test(v)) continue;
      s.Set(v);
      t.Set(v);
      double gain_s = EvaluateCover(g, s, variant()) - fs;
      double gain_t = EvaluateCover(g, t, variant()) - ft;
      s.Clear(v);
      t.Clear(v);
      ASSERT_GE(gain_s, gain_t - 1e-12)
          << "trial " << trial << " v " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    VariantsAndSeeds, SubmodularityTest,
    ::testing::Combine(::testing::Values(Variant::kIndependent,
                                         Variant::kNormalized),
                       ::testing::Values(11, 12, 13)),
    [](const auto& param_info) {
      return std::string(VariantName(std::get<0>(param_info.param))) + "_seed" +
             std::to_string(std::get<1>(param_info.param));
    });

}  // namespace
}  // namespace prefcover
